/// \file rules_sites.cpp
/// Analyzer-consistency rules: the per-site aggregates (in-memory
/// AnalysisResult and/or the exported site CSV) must agree with the trace
/// they were derived from — sample mass can't be invented, footprints of
/// sampled sites can't vanish, and call-stack keys must be stable.

#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ecohmem/bom/format.hpp"
#include "ecohmem/check/rule.hpp"

namespace ecohmem::check::rules {

namespace {

class SitesRule : public Rule {
 public:
  SitesRule(std::string_view id, std::string_view description)
      : id_(id), description_(description) {}

  [[nodiscard]] std::string_view id() const final { return id_; }
  [[nodiscard]] std::string_view description() const final { return description_; }

 protected:
  std::string_view id_;
  std::string_view description_;
};

/// Total weighted PEBS mass in a trace, split by channel.
struct SampleTotals {
  double loads = 0.0;
  double stores = 0.0;
};

SampleTotals sample_totals(const trace::Trace& trace) {
  SampleTotals totals;
  for (const auto& event : trace.events) {
    if (const auto* s = std::get_if<trace::SampleEvent>(&event)) {
      (s->is_store ? totals.stores : totals.loads) += s->weight;
    }
  }
  return totals;
}

/// Attributed miss mass can never exceed what the trace sampled. The
/// relative slack absorbs CSV round-trip and summation rounding only.
bool exceeds(double attributed, double total) {
  return attributed > total * (1.0 + 1e-9) + 1e-3;
}

class MissesExceedTraceRule final : public SitesRule {
 public:
  MissesExceedTraceRule()
      : SitesRule("sites-misses-exceed-trace",
                  "per-site miss totals must not exceed the trace's sampled mass") {}

  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.bundle != nullptr && (ctx.sites != nullptr || ctx.analysis != nullptr);
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const SampleTotals totals = sample_totals(ctx.bundle->trace);

    const auto check = [&](double loads, double stores, const std::string& artifact) {
      if (exceeds(loads, totals.loads)) {
        out.push_back(error(std::string(id_), artifact,
                            "site load misses sum to " + std::to_string(loads) +
                                " but the trace only sampled " + std::to_string(totals.loads) +
                                " weighted load misses"));
      }
      if (exceeds(stores, totals.stores)) {
        out.push_back(error(std::string(id_), artifact,
                            "site store misses sum to " + std::to_string(stores) +
                                " but the trace only sampled " + std::to_string(totals.stores) +
                                " weighted store events"));
      }
    };

    if (ctx.sites != nullptr) {
      double loads = 0.0;
      double stores = 0.0;
      for (const auto& row : ctx.sites->rows) {
        loads += row.load_misses;
        stores += row.store_misses;
      }
      check(loads, stores, ctx.sites_name);
    }
    if (ctx.analysis != nullptr) {
      double loads = 0.0;
      double stores = 0.0;
      for (const auto& site : ctx.analysis->sites) {
        loads += site.load_misses;
        stores += site.store_misses;
      }
      check(loads, stores, ctx.trace_name);
    }
    return out;
  }
};

class ZeroFootprintRule final : public SitesRule {
 public:
  ZeroFootprintRule()
      : SitesRule("sites-zero-footprint",
                  "a site carrying miss mass must have a non-zero footprint") {}

  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.sites != nullptr || ctx.analysis != nullptr;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const auto check = [&](const std::string& label, std::uint64_t allocs, Bytes max_size,
                           double misses, const std::string& artifact) {
      if (max_size > 0) return;
      if (misses > 0.0) {
        out.push_back(error(std::string(id_), artifact,
                            label + ": " + std::to_string(misses) +
                                " weighted misses attributed to a zero-size site (footprint "
                                "accounting is broken)"));
      } else if (allocs > 0) {
        out.push_back(warning(std::string(id_), artifact,
                              label + ": " + std::to_string(allocs) +
                                  " allocations but max_size = 0 (zero-byte allocations only)"));
      }
    };

    if (ctx.sites != nullptr) {
      for (const auto& row : ctx.sites->rows) {
        check("line " + std::to_string(row.line), row.alloc_count, row.max_size,
              row.load_misses + row.store_misses, ctx.sites_name);
      }
    } else if (ctx.analysis != nullptr) {
      for (const auto& site : ctx.analysis->sites) {
        check("site stack " + std::to_string(site.stack), site.alloc_count, site.max_size,
              site.load_misses + site.store_misses, ctx.trace_name);
      }
    }
    return out;
  }
};

class DuplicateStackRule final : public SitesRule {
 public:
  DuplicateStackRule()
      : SitesRule("sites-duplicate-stack",
                  "call-stack keys must be unique across site records") {}

  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.sites != nullptr || ctx.analysis != nullptr;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    if (ctx.sites != nullptr) {
      std::unordered_map<std::string, std::size_t> seen;  // callstack -> first line
      for (const auto& row : ctx.sites->rows) {
        const auto [it, inserted] = seen.try_emplace(row.callstack, row.line);
        if (!inserted) {
          out.push_back(error(std::string(id_), ctx.sites_name,
                              "line " + std::to_string(row.line) + ": call stack '" +
                                  row.callstack + "' duplicates line " +
                                  std::to_string(it->second) +
                                  " (unstable site key: placements would collide)"));
        }
      }
    }
    if (ctx.analysis != nullptr) {
      std::unordered_map<bom::CallStack, trace::StackId, bom::CallStackHash> seen;
      for (const auto& site : ctx.analysis->sites) {
        const auto [it, inserted] = seen.try_emplace(site.callstack, site.stack);
        if (!inserted) {
          out.push_back(error(std::string(id_), ctx.trace_name,
                              "site stack " + std::to_string(site.stack) +
                                  " shares its call stack with site stack " +
                                  std::to_string(it->second) +
                                  " (stack table interning is broken)"));
        }
      }
    }
    return out;
  }
};

class UnknownStackRule final : public SitesRule {
 public:
  UnknownStackRule()
      : SitesRule("sites-unknown-stack",
                  "every exported site must exist in the trace it claims to come from") {}

  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.bundle != nullptr && ctx.sites != nullptr;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const trace::StackTable& stacks = ctx.bundle->trace.stacks;
    std::unordered_set<std::string> known;
    known.reserve(stacks.size());
    for (trace::StackId id = 0; id < stacks.size(); ++id) {
      known.insert(bom::format_bom(stacks.stack(id), ctx.bundle->modules));
    }
    for (const auto& row : ctx.sites->rows) {
      if (!known.contains(row.callstack)) {
        out.push_back(error(std::string(id_), ctx.sites_name,
                            "line " + std::to_string(row.line) + ": call stack '" +
                                row.callstack + "' does not exist in " + ctx.trace_name +
                                " (stale or mismatched site export)"));
      }
    }
    return out;
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> sites_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<MissesExceedTraceRule>());
  rules.push_back(std::make_unique<ZeroFootprintRule>());
  rules.push_back(std::make_unique<DuplicateStackRule>());
  rules.push_back(std::make_unique<UnknownStackRule>());
  return rules;
}

}  // namespace ecohmem::check::rules
