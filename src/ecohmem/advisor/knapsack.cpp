#include "ecohmem/advisor/knapsack.hpp"

#include <algorithm>
#include <numeric>

namespace ecohmem::advisor {

Bytes site_footprint(const analyzer::SiteRecord& site, FootprintMode mode) {
  switch (mode) {
    case FootprintMode::kMaxSize:
      return site.max_size;
    case FootprintMode::kPeakLive:
      return std::max(site.peak_live_bytes, site.max_size);
  }
  return site.max_size;
}

Expected<Placement> place_by_density(const std::vector<analyzer::SiteRecord>& sites,
                                     const AdvisorConfig& config) {
  if (config.tiers.empty()) return unexpected("advisor config has no tiers");

  Placement placement;
  placement.fallback_tier = config.fallback_tier().name;

  std::vector<std::size_t> remaining(sites.size());
  std::iota(remaining.begin(), remaining.end(), std::size_t{0});

  for (const TierPolicy& tier : config.tiers) {
    if (remaining.empty()) break;

    // Value function for *this* knapsack uses this tier's coefficients.
    std::vector<std::size_t> order = remaining;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return sites[a].density(tier.load_coef, tier.store_coef) >
             sites[b].density(tier.load_coef, tier.store_coef);
    });

    Bytes used = 0;
    std::vector<std::size_t> next_remaining;
    next_remaining.reserve(remaining.size());
    for (const std::size_t idx : order) {
      const analyzer::SiteRecord& site = sites[idx];
      const Bytes footprint = site_footprint(site, config.footprint_mode);
      const double density = site.density(tier.load_coef, tier.store_coef);

      // Objects with no observed misses carry no value; leave them for the
      // fallback tier rather than wasting fast-tier capacity.
      const bool worthless = density <= 0.0 && !tier.fallback;

      if (!worthless && used + footprint <= tier.limit) {
        used += footprint;
        PlacementDecision d;
        d.stack = site.stack;
        d.callstack = site.callstack;
        d.tier = tier.name;
        d.footprint = footprint;
        d.density = density;
        placement.decisions.push_back(std::move(d));
      } else {
        next_remaining.push_back(idx);
      }
    }
    remaining = std::move(next_remaining);
  }

  // Anything that did not fit anywhere is listed on the fallback tier so
  // the report is total over profiled sites.
  for (const std::size_t idx : remaining) {
    const analyzer::SiteRecord& site = sites[idx];
    PlacementDecision d;
    d.stack = site.stack;
    d.callstack = site.callstack;
    d.tier = placement.fallback_tier;
    d.footprint = site_footprint(site, config.footprint_mode);
    d.density = 0.0;
    placement.decisions.push_back(std::move(d));
  }

  return placement;
}

Expected<Placement> place_exact_dp(const std::vector<analyzer::SiteRecord>& sites,
                                   const AdvisorConfig& config, std::size_t max_bins) {
  if (config.tiers.empty()) return unexpected("advisor config has no tiers");
  if (max_bins < 2) return unexpected("exact DP needs at least 2 capacity bins");

  Placement placement;
  placement.fallback_tier = config.fallback_tier().name;

  std::vector<std::size_t> remaining(sites.size());
  std::iota(remaining.begin(), remaining.end(), std::size_t{0});

  for (const TierPolicy& tier : config.tiers) {
    if (remaining.empty()) break;

    if (tier.fallback) {
      // The fallback knapsack accepts whatever reaches it (capacity is
      // effectively the whole subsystem).
      for (const std::size_t idx : remaining) {
        const analyzer::SiteRecord& site = sites[idx];
        PlacementDecision d;
        d.stack = site.stack;
        d.callstack = site.callstack;
        d.tier = tier.name;
        d.footprint = site_footprint(site, config.footprint_mode);
        d.density = site.density(tier.load_coef, tier.store_coef);
        placement.decisions.push_back(std::move(d));
      }
      remaining.clear();
      break;
    }

    // Discretize capacity; item weights are rounded *up* so the DP can
    // never overcommit the real budget.
    const Bytes bin =
        std::max<Bytes>(tier.limit / static_cast<Bytes>(max_bins), Bytes{1});
    const auto capacity = static_cast<std::size_t>(tier.limit / bin);

    struct Item {
      std::size_t site_index;
      std::size_t weight;
      double value;
    };
    std::vector<Item> items;
    for (const std::size_t idx : remaining) {
      const analyzer::SiteRecord& site = sites[idx];
      const Bytes footprint = site_footprint(site, config.footprint_mode);
      const double value = tier.load_coef * site.load_misses +
                           tier.store_coef * site.store_misses;
      const auto weight = static_cast<std::size_t>((footprint + bin - 1) / bin);
      if (value <= 0.0 || weight > capacity) continue;
      items.push_back(Item{idx, std::max<std::size_t>(weight, 1), value});
    }

    // Classic 0/1 knapsack DP with parent tracking for reconstruction.
    std::vector<double> best(capacity + 1, 0.0);
    std::vector<std::vector<bool>> taken(items.size(),
                                         std::vector<bool>(capacity + 1, false));
    for (std::size_t i = 0; i < items.size(); ++i) {
      for (std::size_t c = capacity; c >= items[i].weight; --c) {
        const double candidate = best[c - items[i].weight] + items[i].value;
        if (candidate > best[c]) {
          best[c] = candidate;
          taken[i][c] = true;
        }
      }
    }

    std::vector<bool> selected(sites.size(), false);
    std::size_t c = capacity;
    for (std::size_t i = items.size(); i-- > 0;) {
      if (taken[i][c]) {
        selected[items[i].site_index] = true;
        c -= items[i].weight;
      }
    }

    std::vector<std::size_t> next_remaining;
    next_remaining.reserve(remaining.size());
    for (const std::size_t idx : remaining) {
      const analyzer::SiteRecord& site = sites[idx];
      if (selected[idx]) {
        PlacementDecision d;
        d.stack = site.stack;
        d.callstack = site.callstack;
        d.tier = tier.name;
        d.footprint = site_footprint(site, config.footprint_mode);
        d.density = site.density(tier.load_coef, tier.store_coef);
        placement.decisions.push_back(std::move(d));
      } else {
        next_remaining.push_back(idx);
      }
    }
    remaining = std::move(next_remaining);
  }

  for (const std::size_t idx : remaining) {
    const analyzer::SiteRecord& site = sites[idx];
    PlacementDecision d;
    d.stack = site.stack;
    d.callstack = site.callstack;
    d.tier = placement.fallback_tier;
    d.footprint = site_footprint(site, config.footprint_mode);
    placement.decisions.push_back(std::move(d));
  }
  return placement;
}

}  // namespace ecohmem::advisor
