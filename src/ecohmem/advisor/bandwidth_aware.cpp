#include "ecohmem/advisor/bandwidth_aware.hpp"

#include "ecohmem/advisor/knapsack.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace ecohmem::advisor {

std::string to_string(Category c) {
  switch (c) {
    case Category::kNone: return "none";
    case Category::kFitting: return "Fitting";
    case Category::kStreamingD: return "Streaming-D";
    case Category::kThrashing: return "Thrashing";
  }
  return "?";
}

Category categorize(const analyzer::SiteRecord& site, const std::string& tier,
                    const BandwidthAwareOptions& options) {
  const double low = options.t_pmem_low * options.peak_pmem_bw_gbs;
  const double high = options.t_pmem_high * options.peak_pmem_bw_gbs;
  const double alloc_bw = site.alloc_time_system_bw_gbs;

  if (tier == options.dram_tier) {
    if (site.alloc_count < options.t_alloc && alloc_bw < low) return Category::kFitting;
    if (site.alloc_count > options.t_alloc && !site.has_writes && alloc_bw < low) {
      return Category::kStreamingD;
    }
  } else if (tier == options.pmem_tier) {
    if (site.alloc_count > options.t_alloc && alloc_bw > high) return Category::kThrashing;
  }
  return Category::kNone;
}

Expected<BandwidthAwareResult> place_bandwidth_aware(
    const std::vector<analyzer::SiteRecord>& sites, const Placement& base,
    const AdvisorConfig& config, const BandwidthAwareOptions& options) {
  BandwidthAwareResult result;
  result.placement = base;

  // Index decisions by position so retiers go through
  // Placement::set_tier (which keeps the placement's lookup caches
  // coherent) instead of mutating decisions in place.
  std::unordered_map<trace::StackId, std::size_t> decision_of;
  for (std::size_t i = 0; i < result.placement.decisions.size(); ++i) {
    decision_of[result.placement.decisions[i].stack] = i;
  }

  std::unordered_map<trace::StackId, const analyzer::SiteRecord*> site_of;
  for (const auto& s : sites) site_of[s.stack] = &s;

  // --- Step 1: categorization.
  std::vector<const analyzer::SiteRecord*> fitting;
  std::vector<const analyzer::SiteRecord*> thrashing;
  result.categories.reserve(sites.size());
  for (const auto& s : sites) {
    const auto it = decision_of.find(s.stack);
    const std::string& tier = it != decision_of.end()
                                  ? result.placement.decisions[it->second].tier
                                  : base.fallback_tier;
    const Category c = categorize(s, tier, options);
    result.categories.push_back(CategorizedSite{s.stack, c});

    switch (c) {
      case Category::kFitting:
        fitting.push_back(&s);
        break;
      case Category::kThrashing:
        thrashing.push_back(&s);
        break;
      case Category::kStreamingD: {
        // Algorithm 1: all Streaming-D objects move to PMEM directly.
        if (it != decision_of.end()) {
          result.placement.set_tier(it->second, options.pmem_tier);
          ++result.streaming_moved;
        }
        break;
      }
      case Category::kNone:
        break;
    }
  }

  // --- Step 2: Thrashing objects sorted by bandwidth consumption, then
  // by allocation/deallocation time.
  std::sort(thrashing.begin(), thrashing.end(),
            [](const analyzer::SiteRecord* a, const analyzer::SiteRecord* b) {
              if (a->exec_bw_gbs != b->exec_bw_gbs) return a->exec_bw_gbs > b->exec_bw_gbs;
              if (a->first_alloc != b->first_alloc) return a->first_alloc < b->first_alloc;
              return a->last_free < b->last_free;
            });

  // Fitting candidates sorted by footprint so "smallest ... that can
  // accommodate" is the first match.
  std::sort(fitting.begin(), fitting.end(),
            [&](const analyzer::SiteRecord* a, const analyzer::SiteRecord* b) {
              return site_footprint(*a, config.footprint_mode) <
                     site_footprint(*b, config.footprint_mode);
            });

  std::unordered_set<trace::StackId> consumed;
  for (const analyzer::SiteRecord* t : thrashing) {
    const Bytes needed = site_footprint(*t, config.footprint_mode);
    const analyzer::LiveWindow t_span{t->first_alloc, t->last_free};

    const analyzer::SiteRecord* replacement = nullptr;
    for (const analyzer::SiteRecord* f : fitting) {
      if (consumed.contains(f->stack)) continue;
      if (site_footprint(*f, config.footprint_mode) < needed) continue;
      // "can accommodate object for its entire lifetime": the Fitting
      // object must be live over the whole span of the Thrashing one.
      const analyzer::LiveWindow f_span{f->first_alloc, f->last_free};
      if (!f_span.contains(t_span)) continue;
      replacement = f;
      break;
    }
    if (replacement == nullptr) continue;

    consumed.insert(replacement->stack);
    if (auto it = decision_of.find(t->stack); it != decision_of.end()) {
      result.placement.set_tier(it->second, options.dram_tier);
    }
    if (auto it = decision_of.find(replacement->stack); it != decision_of.end()) {
      result.placement.set_tier(it->second, options.pmem_tier);
    }
    ++result.swaps;
  }

  return result;
}

}  // namespace ecohmem::advisor
