#pragma once

/// \file placement.hpp
/// The Advisor's output: an object→tier map keyed by call stack.

#include <string>
#include <vector>

#include "ecohmem/bom/frame.hpp"
#include "ecohmem/common/units.hpp"
#include "ecohmem/trace/events.hpp"

namespace ecohmem::advisor {

/// One placement decision for an allocation site.
struct PlacementDecision {
  trace::StackId stack = trace::kInvalidStack;  ///< id within the profiling trace
  bom::CallStack callstack;                     ///< the matchable identity
  std::string tier;                             ///< assigned memory subsystem
  Bytes footprint = 0;                          ///< capacity charged by the Advisor
  double density = 0.0;                         ///< value at decision time (diagnostics)
};

/// A full placement: decisions plus the fallback subsystem for unlisted
/// objects (§IV-C).
struct Placement {
  std::vector<PlacementDecision> decisions;
  std::string fallback_tier;

  /// Tier assigned to `stack`, or the fallback if unlisted.
  [[nodiscard]] const std::string& tier_of(trace::StackId stack) const {
    for (const auto& d : decisions) {
      if (d.stack == stack) return d.tier;
    }
    return fallback_tier;
  }

  /// Total footprint charged against `tier`.
  [[nodiscard]] Bytes footprint_in(std::string_view tier) const {
    Bytes total = 0;
    for (const auto& d : decisions) {
      if (d.tier == tier) total += d.footprint;
    }
    return total;
  }
};

/// One site whose tier changed between two placements.
struct PlacementMove {
  trace::StackId stack = trace::kInvalidStack;
  bom::CallStack callstack;
  std::string from;
  std::string to;
  Bytes footprint = 0;
};

/// Differences `after` introduces relative to `before` (keyed by stack
/// id; sites present in only one placement are reported against the
/// other's fallback tier). Useful when comparing Advisor configurations
/// or the base vs bandwidth-aware outputs.
[[nodiscard]] std::vector<PlacementMove> diff_placements(const Placement& before,
                                                         const Placement& after);

}  // namespace ecohmem::advisor
