#pragma once

/// \file placement.hpp
/// The Advisor's output: an object→tier map keyed by call stack.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "ecohmem/bom/frame.hpp"
#include "ecohmem/common/units.hpp"
#include "ecohmem/trace/events.hpp"

namespace ecohmem::advisor {

/// One placement decision for an allocation site.
struct PlacementDecision {
  trace::StackId stack = trace::kInvalidStack;  ///< id within the profiling trace
  bom::CallStack callstack;                     ///< the matchable identity
  std::string tier;                             ///< assigned memory subsystem
  Bytes footprint = 0;                          ///< capacity charged by the Advisor
  double density = 0.0;                         ///< value at decision time (diagnostics)
};

/// A full placement: decisions plus the fallback subsystem for unlisted
/// objects (§IV-C).
///
/// `tier_of` and `footprint_in` are called per-allocation during replay,
/// so both answer from a lazily built index (stack→position map plus
/// per-tier footprint totals) instead of scanning `decisions`. The index
/// rebuilds automatically when `decisions` grows or shrinks; code that
/// retiers an existing decision *in place* must go through `set_tier`
/// (which also invalidates the cached totals) — writing
/// `decisions[i].tier` directly leaves `footprint_in` answering from the
/// stale totals until the next structural change.
struct Placement {
  std::vector<PlacementDecision> decisions;
  std::string fallback_tier;

  /// Content hash of the ranking model that ordered this placement
  /// (`--policy learned`); empty for the heuristic policies. Stamped
  /// into the report header as `# model = <hash>` (docs/learned.md).
  std::string model_stamp;

  /// Tier assigned to `stack`, or the fallback if unlisted.
  [[nodiscard]] const std::string& tier_of(trace::StackId stack) const;

  /// Total footprint charged against `tier`.
  [[nodiscard]] Bytes footprint_in(std::string_view tier) const;

  /// Retiers decision `index` and invalidates the cached totals. The
  /// only supported way to change an existing decision's tier.
  void set_tier(std::size_t index, std::string tier);

 private:
  void refresh_index() const;

  /// npos = stale. Mutable lazy cache: the first `tier_of`/`footprint_in`
  /// after a structural change rebuilds it (not thread-safe against
  /// concurrent first queries; warm the index before sharing).
  static constexpr std::size_t kStale = static_cast<std::size_t>(-1);
  mutable std::size_t indexed_size_ = kStale;
  mutable std::vector<std::pair<trace::StackId, std::size_t>> by_stack_;  ///< sorted
  mutable std::vector<std::pair<std::string, Bytes>> tier_totals_;
};

/// One site whose tier changed between two placements.
struct PlacementMove {
  trace::StackId stack = trace::kInvalidStack;
  bom::CallStack callstack;
  std::string from;
  std::string to;
  Bytes footprint = 0;
};

/// Differences `after` introduces relative to `before` (keyed by stack
/// id; sites present in only one placement are reported against the
/// other's fallback tier). Useful when comparing Advisor configurations
/// or the base vs bandwidth-aware outputs.
[[nodiscard]] std::vector<PlacementMove> diff_placements(const Placement& before,
                                                         const Placement& after);

}  // namespace ecohmem::advisor
