#include "ecohmem/advisor/report.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

namespace ecohmem::advisor {

std::string to_string(ReportFormat fmt) {
  return fmt == ReportFormat::kBom ? "bom" : "human-readable";
}

Status write_report(std::ostream& out, const Placement& placement, ReportFormat format,
                    const bom::ModuleTable& modules, const bom::SymbolTable* symbols) {
  out << "# ecoHMEM placement report\n";
  out << "# format = " << to_string(format) << "\n";
  out << "# fallback = " << placement.fallback_tier << "\n";
  // Unknown header keys are ignored by every report consumer, so the
  // model stamp is byte-invisible to pre-learn parsers.
  if (!placement.model_stamp.empty()) {
    out << "# model = " << placement.model_stamp << "\n";
  }

  for (const auto& d : placement.decisions) {
    std::string stack_text;
    if (format == ReportFormat::kBom) {
      stack_text = bom::format_bom(d.callstack, modules);
    } else {
      if (symbols == nullptr) {
        return unexpected("human-readable report requires a symbol table");
      }
      auto hr = symbols->translate(d.callstack);
      if (!hr) return unexpected("cannot symbolize call stack: " + hr.error());
      stack_text = bom::format_human(*hr);
    }
    out << stack_text << " @ " << d.tier << " # size=" << d.footprint << "\n";
  }
  if (!out.good()) return unexpected("report write failed (I/O error)");
  return {};
}

Expected<std::string> report_to_string(const Placement& placement, ReportFormat format,
                                       const bom::ModuleTable& modules,
                                       const bom::SymbolTable* symbols) {
  std::ostringstream out;
  if (Status s = write_report(out, placement, format, modules, symbols); !s) {
    return unexpected(s.error());
  }
  return out.str();
}

Status save_report(const std::string& path, const Placement& placement, ReportFormat format,
                   const bom::ModuleTable& modules, const bom::SymbolTable* symbols) {
  std::ofstream out(path);
  if (!out) return unexpected("cannot open report for writing: " + path);
  return write_report(out, placement, format, modules, symbols);
}

}  // namespace ecohmem::advisor
