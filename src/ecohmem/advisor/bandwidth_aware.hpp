#pragma once

/// \file bandwidth_aware.hpp
/// The memory-bandwidth-aware object placement algorithm (§VII-B).
///
/// Step 1 — Categorization (Table IV). Starting from the base (density)
/// placement:
///   - Fitting:     DRAM object, alloc count < T_ALLOC, allocation-time
///                  PMem bandwidth < T_PMEMLOW. Long-lived; its bandwidth
///                  demand may differ from its allocation region.
///   - Streaming-D: DRAM object with no writes, alloc count > T_ALLOC,
///                  allocation-time bandwidth < T_PMEMLOW. Short-lived,
///                  stays in its allocation region.
///   - Thrashing:   PMem object, alloc count > T_ALLOC, allocation-time
///                  bandwidth > T_PMEMHIGH. High-demand and short-lived.
///
/// Step 2 — Placement (Algorithm 1): move every Streaming-D object to
/// PMEM (releasing DRAM); then, for each Thrashing object in descending
/// bandwidth (ties broken by alloc/dealloc time), find the smallest
/// Fitting object that can accommodate it for its entire lifetime and
/// swap the two.
///
/// Empirical thresholds from the paper: T_ALLOC = 2, T_PMEMLOW = 20% and
/// T_PMEMHIGH = 40% of peak PMem bandwidth.

#include <string>
#include <vector>

#include "ecohmem/advisor/advisor_config.hpp"
#include "ecohmem/advisor/placement.hpp"
#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/common/expected.hpp"

namespace ecohmem::advisor {

struct BandwidthAwareOptions {
  std::uint64_t t_alloc = 2;     ///< T_ALLOC
  double t_pmem_low = 0.20;      ///< T_PMEMLOW, fraction of peak PMem bw
  double t_pmem_high = 0.40;     ///< T_PMEMHIGH, fraction of peak PMem bw
  double peak_pmem_bw_gbs = 26.0;

  std::string dram_tier = "dram";
  std::string pmem_tier = "pmem";
};

/// Object categories of Table IV (kNone = not selected by any criterion).
enum class Category { kNone, kFitting, kStreamingD, kThrashing };

[[nodiscard]] std::string to_string(Category c);

/// Classifies one site given its base-placement tier (Step 1).
[[nodiscard]] Category categorize(const analyzer::SiteRecord& site, const std::string& tier,
                                  const BandwidthAwareOptions& options);

/// Per-site categorization outcome (exposed for tests and for the
/// Table II/III reproduction benchmarks).
struct CategorizedSite {
  trace::StackId stack = trace::kInvalidStack;
  Category category = Category::kNone;
};

/// Applies Algorithm 1 to the base placement, returning the refined
/// placement plus the categorization (for reporting). `sites` must be the
/// same records the base placement was computed from.
struct BandwidthAwareResult {
  Placement placement;
  std::vector<CategorizedSite> categories;
  std::size_t streaming_moved = 0;  ///< Streaming-D objects pushed to PMEM
  std::size_t swaps = 0;            ///< Thrashing<->Fitting exchanges
};

[[nodiscard]] Expected<BandwidthAwareResult> place_bandwidth_aware(
    const std::vector<analyzer::SiteRecord>& sites, const Placement& base,
    const AdvisorConfig& config, const BandwidthAwareOptions& options);

}  // namespace ecohmem::advisor
