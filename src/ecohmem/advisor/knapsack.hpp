#pragma once

/// \file knapsack.hpp
/// The base HMem Advisor algorithm (§IV-B):
///
/// "a greedy relaxation of the 0/1 multiple knapsack problem, where the
///  memory objects have to be distributed among the available memory
///  subsystems (the knapsacks) by solving a knapsack problem for each of
///  them, in descending order of their provided performance. The memory
///  objects' value is the ratio of cache misses divided by object size."
///
/// With the §V extension, the value is
///   (C_load * llc_load_misses + C_store * store_misses) / size
/// with per-tier coefficients C_load/C_store from the Advisor config.
///
/// Objects the greedy pass does not fit anywhere end up unlisted and fall
/// back at runtime; the fallback tier's knapsack accepts everything that
/// reaches it (its limit still bounds capacity accounting).

#include <vector>

#include "ecohmem/advisor/advisor_config.hpp"
#include "ecohmem/advisor/placement.hpp"
#include "ecohmem/analyzer/object_record.hpp"
#include "ecohmem/common/expected.hpp"

namespace ecohmem::advisor {

/// Capacity charged for a site under the configured footprint mode.
[[nodiscard]] Bytes site_footprint(const analyzer::SiteRecord& site, FootprintMode mode);

/// Runs the greedy multiple-knapsack placement over the analyzed sites.
/// Sites with zero misses are assigned to the fallback tier explicitly.
[[nodiscard]] Expected<Placement> place_by_density(
    const std::vector<analyzer::SiteRecord>& sites, const AdvisorConfig& config);

/// Exact-DP variant of the same multiple-knapsack relaxation: each tier's
/// knapsack is solved optimally (0/1 DP over a discretized capacity of at
/// most `max_bins` bins; value = coefficient-weighted misses, weight =
/// footprint) instead of greedily by density. Quantifies what the
/// paper's greedy relaxation leaves on the table (bench_ablations).
[[nodiscard]] Expected<Placement> place_exact_dp(
    const std::vector<analyzer::SiteRecord>& sites, const AdvisorConfig& config,
    std::size_t max_bins = 4096);

}  // namespace ecohmem::advisor
