#pragma once

/// \file report.hpp
/// Advisor report serialization — the file handed to FlexMalloc.
///
/// One line per allocation site (Table I):
///
///   BOM format:            minife.x!0x1a2b0 > libmpi.so!0x44c8 @ dram # size=1989
///   human-readable format: src/Vector.hpp:88 > src/driver.cpp:120 @ dram # size=1989
///
/// plus header comments carrying the format and the fallback tier. The
/// BOM writer needs only the module table; the human-readable writer
/// symbolizes every frame (requiring debug info — the cost §VIII-D
/// measures).

#include <iosfwd>
#include <string>

#include "ecohmem/advisor/placement.hpp"
#include "ecohmem/bom/format.hpp"
#include "ecohmem/bom/module_table.hpp"
#include "ecohmem/bom/symbols.hpp"
#include "ecohmem/common/expected.hpp"

namespace ecohmem::advisor {

enum class ReportFormat { kBom, kHumanReadable };

[[nodiscard]] std::string to_string(ReportFormat fmt);

/// Writes the placement. For kHumanReadable, `symbols` must be able to
/// translate every frame (fails otherwise, like a stripped binary would).
[[nodiscard]] Status write_report(std::ostream& out, const Placement& placement,
                                  ReportFormat format, const bom::ModuleTable& modules,
                                  const bom::SymbolTable* symbols = nullptr);

[[nodiscard]] Expected<std::string> report_to_string(const Placement& placement,
                                                     ReportFormat format,
                                                     const bom::ModuleTable& modules,
                                                     const bom::SymbolTable* symbols = nullptr);

[[nodiscard]] Status save_report(const std::string& path, const Placement& placement,
                                 ReportFormat format, const bom::ModuleTable& modules,
                                 const bom::SymbolTable* symbols = nullptr);

}  // namespace ecohmem::advisor
