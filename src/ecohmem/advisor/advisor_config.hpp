#pragma once

/// \file advisor_config.hpp
/// HMem Advisor configuration: per-tier capacity limits and load/store
/// coefficients (§IV-B, §V).
///
/// Config file grammar (see common/config.hpp):
///
///   [advisor]
///   footprint = peak_live        # or max_size (the original heuristic)
///
///   [memory]
///   name = dram
///   limit = 12GB                 # DRAM limit for dynamic allocations
///   load_coef = 1.0              # weight of LLC load misses
///   store_coef = 1.0             # weight of store misses (0 = Loads-only)
///   order = 0                    # knapsack fill order (0 = first/fastest)
///
///   [memory]
///   name = pmem
///   limit = 3TB
///   order = 1
///   fallback = true
///
/// The per-tier coefficients "represent read latencies" (paper §IV-B):
/// they let the same framework describe systems with different
/// hetero-memory performance gaps.

#include <string>
#include <vector>

#include "ecohmem/common/config.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem::advisor {

/// How a site's capacity charge is computed.
enum class FootprintMode {
  kMaxSize,   ///< largest single allocation (the KNL-era heuristic, §IV-A)
  kPeakLive,  ///< peak simultaneous bytes of the site (default; prevents
              ///< DRAM oversubscription for multi-instance sites)
};

struct TierPolicy {
  std::string name;
  Bytes limit = 0;          ///< capacity budget for dynamic allocations
  double load_coef = 1.0;   ///< C_load in the density value function
  double store_coef = 0.0;  ///< C_store (0 reproduces the Loads-only mode)
  int order = 0;            ///< fill order: ascending
  bool fallback = false;
};

struct AdvisorConfig {
  std::vector<TierPolicy> tiers;  ///< sorted by `order`
  FootprintMode footprint_mode = FootprintMode::kPeakLive;

  /// Parses and validates (unique names, exactly one fallback).
  [[nodiscard]] static Expected<AdvisorConfig> from_config(const Config& config);

  /// Convenience builder for the paper's two-tier node.
  /// `store_coef` = 0 gives the "Loads" configuration of Fig. 6;
  /// a positive value gives "Loads+stores".
  [[nodiscard]] static AdvisorConfig dram_pmem(Bytes dram_limit, double store_coef,
                                               Bytes pmem_limit = Bytes{3} * 1024 * 1024 *
                                                                  1024 * 1024);

  [[nodiscard]] const TierPolicy* find(std::string_view name) const;
  [[nodiscard]] const TierPolicy& fallback_tier() const;

  /// Serializes to the config-file format above.
  [[nodiscard]] std::string to_config_text() const;
};

}  // namespace ecohmem::advisor
