#include "ecohmem/advisor/placement.hpp"

#include <algorithm>
#include <unordered_map>

namespace ecohmem::advisor {

void Placement::refresh_index() const {
  if (indexed_size_ == decisions.size()) return;

  by_stack_.clear();
  by_stack_.reserve(decisions.size());
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    by_stack_.emplace_back(decisions[i].stack, i);
  }
  // stable_sort keeps the earliest position first within a duplicate
  // stack id, so lower_bound resolves duplicates to the same decision
  // the previous first-match linear scan did.
  std::stable_sort(by_stack_.begin(), by_stack_.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  tier_totals_.clear();
  for (const auto& d : decisions) {
    auto it = std::find_if(tier_totals_.begin(), tier_totals_.end(),
                           [&](const auto& t) { return t.first == d.tier; });
    if (it == tier_totals_.end()) {
      tier_totals_.emplace_back(d.tier, d.footprint);
    } else {
      it->second += d.footprint;
    }
  }
  indexed_size_ = decisions.size();
}

const std::string& Placement::tier_of(trace::StackId stack) const {
  refresh_index();
  const auto it = std::lower_bound(
      by_stack_.begin(), by_stack_.end(), stack,
      [](const auto& entry, trace::StackId s) { return entry.first < s; });
  if (it != by_stack_.end() && it->first == stack) return decisions[it->second].tier;
  return fallback_tier;
}

Bytes Placement::footprint_in(std::string_view tier) const {
  refresh_index();
  for (const auto& [name, total] : tier_totals_) {
    if (name == tier) return total;
  }
  return 0;
}

void Placement::set_tier(std::size_t index, std::string tier) {
  decisions[index].tier = std::move(tier);
  indexed_size_ = kStale;
}

std::vector<PlacementMove> diff_placements(const Placement& before, const Placement& after) {
  std::unordered_map<trace::StackId, const PlacementDecision*> old_of;
  for (const auto& d : before.decisions) old_of.emplace(d.stack, &d);

  std::vector<PlacementMove> moves;
  std::unordered_map<trace::StackId, bool> seen;
  for (const auto& d : after.decisions) {
    seen.emplace(d.stack, true);
    const auto it = old_of.find(d.stack);
    const std::string& from = it != old_of.end() ? it->second->tier : before.fallback_tier;
    if (from != d.tier) {
      moves.push_back(PlacementMove{d.stack, d.callstack, from, d.tier, d.footprint});
    }
  }
  // Sites that vanished from `after`: they now fall back.
  for (const auto& d : before.decisions) {
    if (seen.contains(d.stack)) continue;
    if (d.tier != after.fallback_tier) {
      moves.push_back(
          PlacementMove{d.stack, d.callstack, d.tier, after.fallback_tier, d.footprint});
    }
  }
  return moves;
}

}  // namespace ecohmem::advisor
