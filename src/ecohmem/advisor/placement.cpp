#include "ecohmem/advisor/placement.hpp"

#include <unordered_map>

namespace ecohmem::advisor {

std::vector<PlacementMove> diff_placements(const Placement& before, const Placement& after) {
  std::unordered_map<trace::StackId, const PlacementDecision*> old_of;
  for (const auto& d : before.decisions) old_of.emplace(d.stack, &d);

  std::vector<PlacementMove> moves;
  std::unordered_map<trace::StackId, bool> seen;
  for (const auto& d : after.decisions) {
    seen.emplace(d.stack, true);
    const auto it = old_of.find(d.stack);
    const std::string& from = it != old_of.end() ? it->second->tier : before.fallback_tier;
    if (from != d.tier) {
      moves.push_back(PlacementMove{d.stack, d.callstack, from, d.tier, d.footprint});
    }
  }
  // Sites that vanished from `after`: they now fall back.
  for (const auto& d : before.decisions) {
    if (seen.contains(d.stack)) continue;
    if (d.tier != after.fallback_tier) {
      moves.push_back(
          PlacementMove{d.stack, d.callstack, d.tier, after.fallback_tier, d.footprint});
    }
  }
  return moves;
}

}  // namespace ecohmem::advisor
