#include "ecohmem/advisor/advisor_config.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace ecohmem::advisor {

Expected<AdvisorConfig> AdvisorConfig::from_config(const Config& config) {
  AdvisorConfig out;

  if (const ConfigSection* adv = config.first_section("advisor")) {
    auto mode = adv->get_string("footprint", "peak_live");
    if (!mode) return unexpected(mode.error());
    if (*mode == "peak_live") {
      out.footprint_mode = FootprintMode::kPeakLive;
    } else if (*mode == "max_size") {
      out.footprint_mode = FootprintMode::kMaxSize;
    } else {
      return unexpected("[advisor] footprint must be peak_live or max_size, got '" + *mode + "'");
    }
  }

  std::set<std::string> names;
  std::size_t fallback_count = 0;
  for (const ConfigSection* mem : config.sections_named("memory")) {
    TierPolicy t;
    auto name = mem->get_string("name");
    if (!name || name->empty()) return unexpected("[memory] section without name");
    t.name = *name;
    if (!names.insert(t.name).second) return unexpected("duplicate [memory] name: " + t.name);

    auto limit = mem->get_bytes("limit", 0);
    if (!limit) return unexpected(limit.error());
    if (*limit == 0) return unexpected("[memory] '" + t.name + "' needs a positive limit");
    t.limit = *limit;

    auto lc = mem->get_double("load_coef", 1.0);
    auto sc = mem->get_double("store_coef", 0.0);
    auto order = mem->get_double("order", 0.0);
    auto fb = mem->get_bool("fallback", false);
    if (!lc) return unexpected(lc.error());
    if (!sc) return unexpected(sc.error());
    if (!order) return unexpected(order.error());
    if (!fb) return unexpected(fb.error());
    t.load_coef = *lc;
    t.store_coef = *sc;
    t.order = static_cast<int>(*order);
    t.fallback = *fb;
    if (t.fallback) ++fallback_count;
    out.tiers.push_back(std::move(t));
  }

  if (out.tiers.empty()) return unexpected("advisor config needs at least one [memory] section");
  if (fallback_count != 1) return unexpected("advisor config needs exactly one fallback tier");

  std::stable_sort(out.tiers.begin(), out.tiers.end(),
                   [](const TierPolicy& a, const TierPolicy& b) { return a.order < b.order; });
  return out;
}

AdvisorConfig AdvisorConfig::dram_pmem(Bytes dram_limit, double store_coef, Bytes pmem_limit) {
  AdvisorConfig cfg;
  TierPolicy dram;
  dram.name = "dram";
  dram.limit = dram_limit;
  dram.load_coef = 1.0;
  dram.store_coef = store_coef;
  dram.order = 0;
  TierPolicy pmem;
  pmem.name = "pmem";
  pmem.limit = pmem_limit;
  pmem.load_coef = 1.0;
  pmem.store_coef = store_coef;
  pmem.order = 1;
  pmem.fallback = true;
  cfg.tiers = {std::move(dram), std::move(pmem)};
  return cfg;
}

const TierPolicy* AdvisorConfig::find(std::string_view name) const {
  for (const auto& t : tiers) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const TierPolicy& AdvisorConfig::fallback_tier() const {
  for (const auto& t : tiers) {
    if (t.fallback) return t;
  }
  return tiers.back();
}

std::string AdvisorConfig::to_config_text() const {
  std::ostringstream out;
  out << "[advisor]\n"
      << "footprint = "
      << (footprint_mode == FootprintMode::kPeakLive ? "peak_live" : "max_size") << "\n";
  for (const auto& t : tiers) {
    out << "\n[memory]\n"
        << "name = " << t.name << "\n"
        << "limit = " << t.limit << "\n"
        << "load_coef = " << t.load_coef << "\n"
        << "store_coef = " << t.store_coef << "\n"
        << "order = " << t.order << "\n";
    if (t.fallback) out << "fallback = true\n";
  }
  return out.str();
}

}  // namespace ecohmem::advisor
