#include "ecohmem/flexmalloc/flexmalloc.hpp"

namespace ecohmem::flexmalloc {

namespace {
/// Non-overlapping VA ranges per tier: tier i owns [ (i+1)<<44, (i+2)<<44 ).
std::uint64_t heap_base(std::size_t tier_index) {
  return (static_cast<std::uint64_t>(tier_index) + 1) << 44;
}

/// Relaxed monotonic-max update (peak trackers under concurrency).
void atomic_max(std::atomic<Bytes>& target, Bytes candidate) {
  Bytes current = target.load(std::memory_order_relaxed);
  while (candidate > current &&
         !target.compare_exchange_weak(current, candidate, std::memory_order_relaxed)) {
  }
}
}  // namespace

FlexMalloc::FlexMalloc(FlexMalloc&& other) noexcept
    : heaps_(std::move(other.heaps_)),
      tier_stats_(std::move(other.tier_stats_)),
      matcher_(std::move(other.matcher_)),
      fallback_(other.fallback_),
      oom_redirects_(other.oom_redirects_.load(std::memory_order_relaxed)),
      migrations_(other.migrations_.load(std::memory_order_relaxed)),
      migrated_bytes_(other.migrated_bytes_.load(std::memory_order_relaxed)),
      migration_refusals_(other.migration_refusals_.load(std::memory_order_relaxed)) {}

FlexMalloc& FlexMalloc::operator=(FlexMalloc&& other) noexcept {
  if (this == &other) return *this;
  heaps_ = std::move(other.heaps_);
  tier_stats_ = std::move(other.tier_stats_);
  matcher_ = std::move(other.matcher_);
  fallback_ = other.fallback_;
  oom_redirects_.store(other.oom_redirects_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  migrations_.store(other.migrations_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  migrated_bytes_.store(other.migrated_bytes_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  migration_refusals_.store(other.migration_refusals_.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
  return *this;
}

Expected<FlexMalloc> FlexMalloc::create(std::vector<HeapSpec> heaps, const ParsedReport& report,
                                        const bom::SymbolTable* symbols,
                                        MatcherOptions matcher_options) {
  if (heaps.empty()) return unexpected("FlexMalloc needs at least one heap");

  FlexMalloc fm;
  bool fallback_found = false;
  for (std::size_t i = 0; i < heaps.size(); ++i) {
    const HeapSpec& spec = heaps[i];
    if (spec.capacity == 0) return unexpected("heap '" + spec.tier + "' has zero capacity");
    fm.heaps_.push_back(
        std::make_unique<ArenaHeap>(spec.tier, heap_base(i), spec.capacity));
    fm.tier_stats_.push_back(std::make_unique<AtomicTierStats>());
    fm.tier_stats_.back()->tier = spec.tier;
    if (spec.tier == report.fallback_tier) {
      fm.fallback_ = i;
      fallback_found = true;
    }
  }
  if (!report.fallback_tier.empty() && !fallback_found) {
    return unexpected("report fallback tier '" + report.fallback_tier + "' has no heap");
  }
  if (report.fallback_tier.empty()) {
    // No fallback named in the report: use the largest heap, which is the
    // sensible default the paper describes ("usually the largest").
    std::size_t largest = 0;
    for (std::size_t i = 1; i < fm.heaps_.size(); ++i) {
      if (fm.heaps_[i]->capacity() > fm.heaps_[largest]->capacity()) largest = i;
    }
    fm.fallback_ = largest;
  }

  // Validate that every report tier has a heap before building the index.
  for (const auto& entry : report.entries) {
    bool known = false;
    for (const auto& h : fm.heaps_) {
      if (h->name() == entry.tier) {
        known = true;
        break;
      }
    }
    if (!known) return unexpected("report names unknown tier '" + entry.tier + "'");
  }

  auto matcher = CallStackMatcher::create(report, symbols, matcher_options);
  if (!matcher) return unexpected(matcher.error());
  fm.matcher_ = std::move(*matcher);
  return fm;
}

Expected<std::size_t> FlexMalloc::tier_index(std::string_view name) const {
  for (std::size_t i = 0; i < heaps_.size(); ++i) {
    if (heaps_[i]->name() == name) return i;
  }
  return unexpected("unknown tier: '" + std::string(name) + "'");
}

Expected<Allocation> FlexMalloc::malloc(const bom::CallStack& stack, Bytes size) {
  const MatchResult match = matcher_.match(stack);

  std::size_t target = fallback_;
  if (match.matched()) {
    if (auto idx = tier_index(*match.tier)) target = *idx;
  }

  Allocation out;
  out.matched = match.matched();
  out.tier_index = target;

  auto addr = heaps_[target]->allocate(size);
  if (!addr && target != fallback_) {
    // Designated tier is full: redirect to the fallback subsystem (§IV-C).
    // The designated heap's lock is already released here, so redirect
    // never holds two heap locks at once.
    target = fallback_;
    out.redirected = true;
    oom_redirects_.fetch_add(1, std::memory_order_relaxed);
    addr = heaps_[target]->allocate(size);
  }
  if (!addr) return unexpected(addr.error());

  out.address = *addr;
  out.tier_index = target;
  auto& stats = *tier_stats_[target];
  stats.allocations.fetch_add(1, std::memory_order_relaxed);
  stats.bytes.fetch_add(size, std::memory_order_relaxed);
  // Peak tracking is a best-effort observation under concurrency: the
  // heap's own used() is exact, the stats high-water may miss a peak
  // that another thread's free erases between our two reads.
  atomic_max(stats.high_water, heaps_[target]->used());
  return out;
}

Status FlexMalloc::free(std::uint64_t address) {
  for (auto& heap : heaps_) {
    if (heap->owns(address)) {
      auto freed = heap->deallocate(address);
      if (!freed) return unexpected(freed.error());
      return {};
    }
  }
  return unexpected("free of address not owned by any heap");
}

Expected<Allocation> FlexMalloc::realloc(const bom::CallStack& stack, std::uint64_t address,
                                         Bytes new_size) {
  if (address != 0) {
    if (Status s = free(address); !s) return unexpected(s.error());
  }
  return malloc(stack, new_size);
}

Expected<MigrationOutcome> FlexMalloc::migrate(std::uint64_t address, std::size_t target_tier) {
  if (target_tier >= heaps_.size()) {
    return unexpected("migrate: unknown target tier index " + std::to_string(target_tier));
  }
  std::size_t source = heaps_.size();
  for (std::size_t i = 0; i < heaps_.size(); ++i) {
    if (heaps_[i]->owns(address)) {
      source = i;
      break;
    }
  }
  if (source == heaps_.size()) {
    return unexpected("migrate: address not owned by any heap");
  }
  if (source == target_tier) {
    return unexpected("migrate: block already lives in tier '" + heaps_[source]->name() + "'");
  }

  // `owns` also answers true for freed addresses inside the heap's used
  // range; the size lookup is the live-block check.
  const auto size = heaps_[source]->block_size(address);
  if (!size) return unexpected("migrate: " + size.error());

  MigrationOutcome out;
  out.from_tier = source;
  out.bytes = *size;

  // Destination first, so a full target leaves the block where it is.
  // Each heap call takes only that heap's leaf lock; the transient
  // double-occupancy (both copies live) matches real migration.
  const auto moved_to = heaps_[target_tier]->allocate(*size);
  if (!moved_to) {
    migration_refusals_.fetch_add(1, std::memory_order_relaxed);
    out.moved = false;
    out.address = address;
    return out;
  }
  const auto freed = heaps_[source]->deallocate(address);
  if (!freed) {
    // Unreachable under the single-owner rule; roll the copy back so a
    // failure never leaks destination capacity.
    (void)heaps_[target_tier]->deallocate(*moved_to);
    return unexpected("migrate: source release failed: " + freed.error());
  }

  out.moved = true;
  out.address = *moved_to;
  migrations_.fetch_add(1, std::memory_order_relaxed);
  migrated_bytes_.fetch_add(*size, std::memory_order_relaxed);
  atomic_max(tier_stats_[target_tier]->high_water, heaps_[target_tier]->used());
  return out;
}

Expected<MigrationOutcome> FlexMalloc::migrate(std::uint64_t address, std::size_t target_tier,
                                               Bytes offset, Bytes length) {
  if (target_tier >= heaps_.size()) {
    return unexpected("migrate: unknown target tier index " + std::to_string(target_tier));
  }
  std::size_t source = heaps_.size();
  for (std::size_t i = 0; i < heaps_.size(); ++i) {
    if (heaps_[i]->owns(address)) {
      source = i;
      break;
    }
  }
  if (source == heaps_.size()) {
    return unexpected("migrate: address not owned by any heap");
  }
  if (source == target_tier) {
    return unexpected("migrate: block already lives in tier '" + heaps_[source]->name() + "'");
  }
  const auto size = heaps_[source]->block_size(address);
  if (!size) return unexpected("migrate: " + size.error());
  if (length == 0 || offset > *size || length > *size - offset) {
    return unexpected("migrate: sub-range [" + std::to_string(offset) + ", " +
                      std::to_string(offset + length) + ") outside block of " +
                      std::to_string(*size) + " bytes");
  }
  // A tail remnant smaller than one alignment unit is exactly the
  // block's padding (blocks are alignment-padded) and could never be
  // released on its own; absorb it into the moved range so chunk-sized
  // requests against the end of a padded block stay releasable.
  if (*size - offset - length < heaps_[source]->alignment()) length = *size - offset;
  // The whole block is a plain migration — no split needed.
  if (offset == 0 && length == *size) return migrate(address, target_tier);

  MigrationOutcome out;
  out.from_tier = source;
  out.bytes = length;

  // Destination first (same contract as the whole-block form): a full
  // target refuses and leaves the source block untouched.
  const auto moved_to = heaps_[target_tier]->allocate(length);
  if (!moved_to) {
    migration_refusals_.fetch_add(1, std::memory_order_relaxed);
    out.moved = false;
    out.address = address;
    return out;
  }
  const auto freed = heaps_[source]->release_range(address, offset, length);
  if (!freed) {
    // Misaligned or raced sub-range; roll the copy back so a failure
    // never leaks destination capacity.
    (void)heaps_[target_tier]->deallocate(*moved_to);
    return unexpected("migrate: source sub-range release failed: " + freed.error());
  }

  out.moved = true;
  out.address = *moved_to;
  migrations_.fetch_add(1, std::memory_order_relaxed);
  migrated_bytes_.fetch_add(length, std::memory_order_relaxed);
  atomic_max(tier_stats_[target_tier]->high_water, heaps_[target_tier]->used());
  return out;
}

bool FlexMalloc::can_absorb(Bytes total_requested, std::uint64_t allocations) const {
  for (const auto& heap : heaps_) {
    const Bytes capacity = heap->capacity();
    const Bytes used = heap->used();
    if (used > capacity) return false;
    const Bytes headroom = capacity - used;
    // Padding bound: round_up(size, a) <= size + a, and zero-byte
    // requests consume exactly `a`, so `allocations` blocks totalling
    // `total_requested` bytes occupy at most total + allocations * a
    // (overflow-safe: division instead of multiplication, two-step
    // comparison instead of summing).
    const Bytes alignment = heap->alignment();
    if (total_requested > headroom) return false;
    if (allocations > (headroom - total_requested) / alignment) return false;
  }
  return true;
}

std::vector<TierStats> FlexMalloc::stats() const {
  std::vector<TierStats> out;
  out.reserve(tier_stats_.size());
  for (const auto& s : tier_stats_) {
    TierStats t;
    t.tier = s->tier;
    t.allocations = s->allocations.load(std::memory_order_relaxed);
    t.bytes = s->bytes.load(std::memory_order_relaxed);
    t.high_water = s->high_water.load(std::memory_order_relaxed);
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace ecohmem::flexmalloc
