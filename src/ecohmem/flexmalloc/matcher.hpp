#pragma once

/// \file matcher.hpp
/// Call-stack matching at allocation interception time (§VI).
///
/// When the application calls a heap routine, FlexMalloc captures the
/// call stack (BOM frames) and looks it up in the report:
///
///  - BOM path: "the library only has to compare the captured call-stack
///    addresses with the absolute call-stack addresses calculated during
///    initialization" — an O(1) hash lookup over integer frames here.
///  - Human-readable path: every captured frame is first symbolized to
///    file:line via the debug info (binutils role: bom::SymbolTable) and
///    the resulting strings are compared — the overhead §VIII-D measures.
///    Failing symbolization means no match (fallback tier).
///
/// Both paths report accumulated matching cost in simulated nanoseconds
/// so the execution engine can charge it against the run.

#include <string>
#include <unordered_map>

#include "ecohmem/bom/format.hpp"
#include "ecohmem/bom/frame.hpp"
#include "ecohmem/bom/symbols.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/flexmalloc/report_parser.hpp"

namespace ecohmem::flexmalloc {

/// Outcome of a lookup: a tier name, or nothing (use fallback).
struct MatchResult {
  const std::string* tier = nullptr;  ///< nullptr = unmatched
  [[nodiscard]] bool matched() const { return tier != nullptr; }
};

/// Matching options (FlexMalloc's configurable stack-depth behaviour).
struct MatcherOptions {
  /// When exact matching fails, fall back to comparing only the
  /// innermost `min_suffix_depth` frames (0 = exact matching only).
  /// Useful when outer frames vary between runs (e.g. MPI-internal
  /// wrappers); ambiguous suffixes — two report entries sharing the same
  /// innermost frames but mapped to different tiers — never match.
  std::size_t min_suffix_depth = 0;
};

class CallStackMatcher {
 public:
  /// An empty matcher matches nothing (everything falls back).
  CallStackMatcher() = default;

  /// Builds matching structures from a parsed report. For human-readable
  /// reports a symbol table is mandatory.
  [[nodiscard]] static Expected<CallStackMatcher> create(const ParsedReport& report,
                                                         const bom::SymbolTable* symbols,
                                                         MatcherOptions options = {});

  /// Looks up the captured stack. Never fails; unmatched stacks return
  /// an empty result (FlexMalloc then uses the fallback tier).
  [[nodiscard]] MatchResult match(const bom::CallStack& captured);

  /// Accumulated matching cost in simulated ns (BOM: hash+compare;
  /// HR: symbolization + string compares).
  [[nodiscard]] double matching_cost_ns() const;

  [[nodiscard]] std::uint64_t lookups() const { return lookups_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] bool is_bom() const { return is_bom_; }

 private:
  bool is_bom_ = true;
  MatcherOptions options_;
  std::unordered_map<bom::CallStack, std::string, bom::CallStackHash> bom_index_;
  std::unordered_map<std::string, std::string> hr_index_;  // formatted stack -> tier
  /// innermost-k suffix -> tier; empty string marks an ambiguous suffix.
  std::unordered_map<bom::CallStack, std::string, bom::CallStackHash> suffix_index_;
  const bom::SymbolTable* symbols_ = nullptr;

  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t frames_compared_ = 0;
  std::uint64_t string_bytes_compared_ = 0;
  double symbolization_ns_ = 0.0;
};

}  // namespace ecohmem::flexmalloc
