#pragma once

/// \file matcher.hpp
/// Call-stack matching at allocation interception time (§VI).
///
/// When the application calls a heap routine, FlexMalloc captures the
/// call stack (BOM frames) and looks it up in the report:
///
///  - BOM path: "the library only has to compare the captured call-stack
///    addresses with the absolute call-stack addresses calculated during
///    initialization" — an O(1) hash lookup over integer frames here.
///  - Human-readable path: every captured frame is first symbolized to
///    file:line via the debug info (binutils role: bom::SymbolTable) and
///    the resulting strings are compared — the overhead §VIII-D measures.
///    Failing symbolization means no match (fallback tier).
///
/// Both paths report accumulated matching cost in simulated nanoseconds
/// so the execution engine can charge it against the run.
///
/// Thread safety (docs/threading.md): after `create` returns, the match
/// indexes are immutable and `match()` may be called from any number of
/// threads concurrently. Instrumentation counters are relaxed atomics.
/// The human-readable path serializes on an internal mutex because the
/// shared `bom::SymbolTable` sorts lazily and meters its own cost — the
/// BOM path (the paper's recommended configuration) takes no lock. The
/// optional match cache (`MatcherOptions::match_cache`) is reader-mostly:
/// sharded, shared-locked for lookups, exclusively locked only to insert
/// a stack seen for the first time.

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "ecohmem/bom/format.hpp"
#include "ecohmem/bom/frame.hpp"
#include "ecohmem/bom/symbols.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/lockdep.hpp"
#include "ecohmem/common/thread_annotations.hpp"
#include "ecohmem/flexmalloc/report_parser.hpp"

namespace ecohmem::flexmalloc {

/// Outcome of a lookup: a tier name, or nothing (use fallback).
struct MatchResult {
  /// Tier the stack maps to; nullptr = unmatched (use the fallback
  /// tier). Points into the matcher's index — valid for its lifetime.
  const std::string* tier = nullptr;

  /// True when the report listed this call stack.
  [[nodiscard]] bool matched() const { return tier != nullptr; }
};

/// Matching options (FlexMalloc's configurable stack-depth behaviour).
struct MatcherOptions {
  /// When exact matching fails, fall back to comparing only the
  /// innermost `min_suffix_depth` frames (0 = exact matching only).
  /// Useful when outer frames vary between runs (e.g. MPI-internal
  /// wrappers); ambiguous suffixes — two report entries sharing the same
  /// innermost frames but mapped to different tiers — never match.
  std::size_t min_suffix_depth = 0;

  /// Enable the reader-mostly match cache: full match outcomes
  /// (including negative ones) are memoized per captured stack, so
  /// repeated stacks skip suffix probing and — on the human-readable
  /// path — re-symbolization. Placement decisions are unaffected (the
  /// cache memoizes a pure function of the stack); the accumulated
  /// matching *cost* shrinks, which is the point. Off by default to
  /// preserve the per-allocation overhead accounting the §VIII-D
  /// benchmarks reproduce.
  bool match_cache = false;
};

/// Reader-mostly sharded memo of match outcomes keyed by captured stack.
///
/// 16 shards, each a hash map under its own `std::shared_mutex`: lookups
/// take a shared lock, first-time insertions an exclusive one. Values are
/// pointers into the owning matcher's immutable index (nullptr = cached
/// negative), so entries never need invalidation.
class MatchCache {
 public:
  /// Returns {tier, true} when cached (tier may be nullptr = negative),
  /// {nullptr, false} when this stack has not been seen yet.
  [[nodiscard]] std::pair<const std::string*, bool> find(const bom::CallStack& key) const;

  /// Memoizes an outcome; concurrent duplicate inserts are benign (the
  /// outcome is a pure function of the key, so all writers agree).
  void insert(const bom::CallStack& key, const std::string* tier);

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    /// Leaf lock (rank table: docs/threading.md); shared for probes,
    /// exclusive only for first-time inserts.
    mutable common::RankedSharedMutex mu{common::lockdep::LockRank::kMatchCacheShard,
                                         "match_cache_shard"};
    std::unordered_map<bom::CallStack, const std::string*, bom::CallStackHash> map
        ECOHMEM_GUARDED_BY(mu);
  };
  [[nodiscard]] static std::size_t shard_of(const bom::CallStack& key) {
    return bom::CallStackHash{}(key) % kShards;
  }
  Shard shards_[kShards];
};

/// Matches captured call stacks against a parsed placement report.
class CallStackMatcher {
 public:
  /// An empty matcher matches nothing (everything falls back).
  CallStackMatcher() = default;

  /// Move-only: the instrumentation counters are atomics. Moving is for
  /// single-threaded setup (factory return, FlexMalloc construction) —
  /// never move a matcher other threads are using.
  CallStackMatcher(CallStackMatcher&& other) noexcept;
  CallStackMatcher& operator=(CallStackMatcher&& other) noexcept;
  CallStackMatcher(const CallStackMatcher&) = delete;
  CallStackMatcher& operator=(const CallStackMatcher&) = delete;
  ~CallStackMatcher() = default;

  /// Builds matching structures from a parsed report. For human-readable
  /// reports a symbol table is mandatory.
  [[nodiscard]] static Expected<CallStackMatcher> create(const ParsedReport& report,
                                                         const bom::SymbolTable* symbols,
                                                         MatcherOptions options = {});

  /// Looks up the captured stack. Never fails; unmatched stacks return
  /// an empty result (FlexMalloc then uses the fallback tier).
  /// Safe to call concurrently from multiple threads.
  [[nodiscard]] MatchResult match(const bom::CallStack& captured);

  /// Accumulated matching cost in simulated ns (BOM: hash+compare;
  /// HR: symbolization + string compares).
  [[nodiscard]] double matching_cost_ns() const;

  /// Total `match()` calls so far.
  [[nodiscard]] std::uint64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }

  /// Lookups that found a report entry.
  [[nodiscard]] std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

  /// True when the report uses BOM (module!offset) stacks.
  [[nodiscard]] bool is_bom() const { return is_bom_; }

 private:
  [[nodiscard]] MatchResult match_uncached(const bom::CallStack& captured);

  bool is_bom_ = true;
  MatcherOptions options_;
  std::unordered_map<bom::CallStack, std::string, bom::CallStackHash> bom_index_;
  std::unordered_map<std::string, std::string> hr_index_;  // formatted stack -> tier
  /// innermost-k suffix -> tier; empty string marks an ambiguous suffix.
  std::unordered_map<bom::CallStack, std::string, bom::CallStackHash> suffix_index_;
  const bom::SymbolTable* symbols_ = nullptr;

  /// Non-null when MatcherOptions::match_cache is set.
  std::unique_ptr<MatchCache> cache_;
  /// Serializes the human-readable path (shared lazily-sorted symbol
  /// table + its cost meter). Leaf lock (rank table:
  /// docs/threading.md); BOM lookups never take it. Boxed so the
  /// matcher stays movable during single-threaded setup.
  std::unique_ptr<common::RankedMutex> hr_mu_ =
      std::make_unique<common::RankedMutex>(common::lockdep::LockRank::kMatcherHr, "matcher_hr");

  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> frames_compared_{0};
  std::atomic<std::uint64_t> string_bytes_compared_{0};
  std::atomic<double> symbolization_ns_{0.0};
};

}  // namespace ecohmem::flexmalloc
