#include "ecohmem/flexmalloc/heap_manager.hpp"

#include <algorithm>

namespace ecohmem::flexmalloc {

ArenaHeap::ArenaHeap(std::string name, std::uint64_t base, Bytes capacity, Bytes alignment)
    : name_(std::move(name)),
      base_(base),
      capacity_(capacity),
      alignment_(alignment > 0 ? alignment : 64),
      cursor_(base) {}

Expected<std::uint64_t> ArenaHeap::allocate(Bytes size) {
  if (size == 0) size = alignment_;
  const Bytes padded = (size + alignment_ - 1) / alignment_ * alignment_;

  common::ScopedLock lock(mu_);
  const Bytes used_now = used_.load(std::memory_order_relaxed);
  if (used_now + padded > capacity_) {
    return unexpected("heap '" + name_ + "' out of capacity (used " + std::to_string(used_now) +
                      ", request " + std::to_string(padded) + ", capacity " +
                      std::to_string(capacity_) + ")");
  }

  // First-fit over the free list, else bump the cursor.
  std::uint64_t address = 0;
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= padded) {
      address = it->first;
      const Bytes remainder = it->second - padded;
      free_.erase(it);
      if (remainder > 0) free_.emplace(address + padded, remainder);
      break;
    }
  }
  if (address == 0) {
    address = cursor_;
    cursor_ += padded;
  }

  live_.emplace(address, padded);
  live_count_.store(live_.size(), std::memory_order_relaxed);
  const Bytes used_after = used_now + padded;
  used_.store(used_after, std::memory_order_relaxed);
  if (used_after > high_water_.load(std::memory_order_relaxed)) {
    high_water_.store(used_after, std::memory_order_relaxed);
  }
  return address;
}

Expected<Bytes> ArenaHeap::deallocate(std::uint64_t address) {
  common::ScopedLock lock(mu_);
  const auto it = live_.find(address);
  if (it == live_.end()) {
    return unexpected("heap '" + name_ + "': free of unknown address");
  }
  const Bytes size = it->second;
  live_.erase(it);
  live_count_.store(live_.size(), std::memory_order_relaxed);
  used_.fetch_sub(size, std::memory_order_relaxed);

  // Insert into the free list, coalescing with neighbors.
  auto [pos, inserted] = free_.emplace(address, size);
  (void)inserted;
  if (pos != free_.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      prev->second += pos->second;
      free_.erase(pos);
      pos = prev;
    }
  }
  if (auto next = std::next(pos); next != free_.end() && pos->first + pos->second == next->first) {
    pos->second += next->second;
    free_.erase(next);
  }
  return size;
}

Expected<Bytes> ArenaHeap::release_range(std::uint64_t address, Bytes offset, Bytes length) {
  common::ScopedLock lock(mu_);
  const auto it = live_.find(address);
  if (it == live_.end()) {
    return unexpected("heap '" + name_ + "': release_range on unknown address");
  }
  const Bytes size = it->second;
  if (length == 0 || offset > size || length > size - offset) {
    return unexpected("heap '" + name_ + "': release_range [" + std::to_string(offset) + ", " +
                      std::to_string(offset + length) + ") outside block of " +
                      std::to_string(size) + " bytes");
  }
  if (offset % alignment_ != 0 ||
      (offset + length != size && length % alignment_ != 0)) {
    return unexpected("heap '" + name_ + "': release_range must be aligned to " +
                      std::to_string(alignment_) + " bytes");
  }

  // Split the live block around the released middle (0, 1 or 2 remnants).
  live_.erase(it);
  if (offset > 0) live_.emplace(address, offset);
  if (offset + length < size) {
    live_.emplace(address + offset + length, size - offset - length);
  }
  live_count_.store(live_.size(), std::memory_order_relaxed);
  used_.fetch_sub(length, std::memory_order_relaxed);

  // Insert the freed middle into the free list, coalescing with
  // neighbours (same dance as deallocate).
  auto [pos, inserted] = free_.emplace(address + offset, length);
  (void)inserted;
  if (pos != free_.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      prev->second += pos->second;
      free_.erase(pos);
      pos = prev;
    }
  }
  if (auto next = std::next(pos); next != free_.end() && pos->first + pos->second == next->first) {
    pos->second += next->second;
    free_.erase(next);
  }
  return length;
}

Expected<Bytes> ArenaHeap::block_size(std::uint64_t address) const {
  common::ScopedLock lock(mu_);
  const auto it = live_.find(address);
  if (it == live_.end()) {
    return unexpected("heap '" + name_ + "': no live block at this address");
  }
  return it->second;
}

bool ArenaHeap::owns(std::uint64_t address) const {
  common::ScopedLock lock(mu_);
  return live_.contains(address) ||
         (address >= base_ && address < cursor_);
}

}  // namespace ecohmem::flexmalloc
