#pragma once

/// \file flexmalloc.hpp
/// The FlexMalloc interposer: routes each intercepted allocation to the
/// heap manager of the tier named by the Advisor report (§IV-C).
///
/// Behaviors reproduced from the real library:
///   - call-stack capture + matching on every allocation (matcher.hpp),
///   - fallback tier for objects not listed in the report,
///   - fallback redirection when the designated tier runs out of space,
///   - per-tier accounting and matching-cost metering.
///
/// The "interposition" boundary here is the explicit `malloc(stack, size)`
/// call the execution engine makes for every workload allocation; on a
/// real system the same entry point is reached via LD_PRELOAD.
///
/// Thread safety (docs/threading.md): after `create` returns, `malloc`,
/// `free`, `realloc` and every accessor are safe to call from any number
/// of threads concurrently — exactly what an LD_PRELOAD interposer under
/// a multi-threaded HPC application must guarantee. Locking is sharded
/// per tier (each `ArenaHeap` has its own leaf mutex, never held across
/// heaps); matching is lock-free on the BOM path; all counters are
/// relaxed atomics. The object itself must not be moved or destroyed
/// while other threads are calling into it.

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "ecohmem/bom/frame.hpp"
#include "ecohmem/bom/symbols.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/flexmalloc/heap_manager.hpp"
#include "ecohmem/flexmalloc/matcher.hpp"
#include "ecohmem/flexmalloc/report_parser.hpp"

namespace ecohmem::flexmalloc {

/// Description of one tier-backed heap FlexMalloc sits on.
struct HeapSpec {
  std::string tier;     ///< tier name, must match report tier names
  Bytes capacity = 0;   ///< capacity available for dynamic allocations
};

/// A completed allocation.
struct Allocation {
  std::uint64_t address = 0;   ///< simulated VA of the new block
  std::size_t tier_index = 0;  ///< tier the block actually landed in
  bool matched = false;        ///< report hit (vs fallback by default)
  bool redirected = false;     ///< designated tier was full, fell back
};

/// Per-tier counters (a point-in-time snapshot under concurrency).
/// Migrations are tracked separately (`FlexMalloc::migrations()`), so
/// `allocations`/`bytes` always mean routing decisions, never moves.
struct TierStats {
  std::string tier;                ///< tier name
  std::uint64_t allocations = 0;   ///< completed allocations routed here
  Bytes bytes = 0;                 ///< sum of requested (unpadded) bytes
  Bytes high_water = 0;            ///< peak observed heap usage
};

/// Result of a live-object migration attempt (`FlexMalloc::migrate`).
struct MigrationOutcome {
  bool moved = false;          ///< false = target tier lacked capacity
  std::uint64_t address = 0;   ///< new address when moved, else the original
  std::size_t from_tier = 0;   ///< tier the block lived in
  Bytes bytes = 0;             ///< padded block size
};

class FlexMalloc {
 public:
  /// `heaps`: one per tier, in the order used by `Allocation::tier_index`.
  /// `fallback_tier` must name one of them. `symbols` is required only
  /// for human-readable reports. `matcher_options` configures the
  /// stack-depth fallback matching and the reader-mostly match cache.
  [[nodiscard]] static Expected<FlexMalloc> create(std::vector<HeapSpec> heaps,
                                                   const ParsedReport& report,
                                                   const bom::SymbolTable* symbols = nullptr,
                                                   MatcherOptions matcher_options = {});

  /// Move-only; moving is for single-threaded setup (factory return) —
  /// never move an instance other threads are calling into.
  FlexMalloc(FlexMalloc&& other) noexcept;
  FlexMalloc& operator=(FlexMalloc&& other) noexcept;
  FlexMalloc(const FlexMalloc&) = delete;
  FlexMalloc& operator=(const FlexMalloc&) = delete;
  ~FlexMalloc() = default;

  /// Interposed malloc: captures nothing itself — the caller passes the
  /// call stack it captured (the engine plays the unwinder's role).
  /// Thread-safe.
  [[nodiscard]] Expected<Allocation> malloc(const bom::CallStack& stack, Bytes size);

  /// Interposed free. Thread-safe for distinct addresses (each address
  /// is freed by exactly one caller, as with real pointers).
  [[nodiscard]] Status free(std::uint64_t address);

  /// Interposed realloc: returns a new allocation in the same tier the
  /// stack maps to (contents-copy cost is the engine's concern).
  /// Thread-safe under the same ownership rule as `free`.
  [[nodiscard]] Expected<Allocation> realloc(const bom::CallStack& stack,
                                             std::uint64_t address, Bytes new_size);

  /// Moves the live block at `address` into `target_tier`'s heap — the
  /// runtime half of the online placement subsystem (docs/online.md).
  /// The destination is allocated before the source is released, so a
  /// full target refuses the move (`moved == false`) and leaves the
  /// block untouched; a refusal is not an error. Errors are reserved
  /// for unknown addresses/tiers and same-tier requests. Preserves the
  /// PR-2 lock hierarchy: each step takes exactly one heap's leaf lock
  /// (size lookup on the source, allocate on the target, deallocate on
  /// the source), never two at once. Thread-safe under the same
  /// single-owner-per-address rule as `free`.
  [[nodiscard]] Expected<MigrationOutcome> migrate(std::uint64_t address,
                                                   std::size_t target_tier);

  /// Sub-range form of `migrate` (page-granular migration): moves only
  /// `[address + offset, address + offset + length)` of the live block,
  /// leaving the rest of the block in place — how huge objects migrate
  /// 2 MiB chunks at a time instead of as a whole (docs/online.md). The
  /// moved range becomes its own block in the target heap (the returned
  /// `address`); the source block is split around the released range
  /// (`ArenaHeap::release_range`), so `offset` must be aligned to the
  /// source heap's alignment and `length` must be aligned or reach the
  /// block's end. Covering the whole block is exactly `migrate`. Same
  /// refusal/locking contract as the whole-block form; `bytes` in the
  /// outcome is `length`.
  [[nodiscard]] Expected<MigrationOutcome> migrate(std::uint64_t address,
                                                   std::size_t target_tier, Bytes offset,
                                                   Bytes length);

  /// Completed (moved) migrations and the padded bytes they moved.
  [[nodiscard]] std::uint64_t migrations() const {
    return migrations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Bytes migrated_bytes() const {
    return migrated_bytes_.load(std::memory_order_relaxed);
  }

  /// Migration attempts refused because the target tier was full.
  [[nodiscard]] std::uint64_t migration_refusals() const {
    return migration_refusals_.load(std::memory_order_relaxed);
  }

  /// Number of tier heaps.
  [[nodiscard]] std::size_t tier_count() const { return heaps_.size(); }

  /// Name of tier `index` (the order of `create`'s `heaps`).
  [[nodiscard]] const std::string& tier_name(std::size_t index) const {
    return heaps_.at(index)->name();
  }

  /// Index of the tier named `name`; fails on unknown names.
  [[nodiscard]] Expected<std::size_t> tier_index(std::string_view name) const;

  /// Index of the fallback tier (unmatched stacks, OOM redirection).
  [[nodiscard]] std::size_t fallback_index() const { return fallback_; }

  /// The heap backing tier `index`.
  [[nodiscard]] const HeapManager& heap(std::size_t index) const { return *heaps_.at(index); }

  /// Snapshot of the per-tier counters.
  [[nodiscard]] std::vector<TierStats> stats() const;

  /// Simulated cost of all matching work so far (see matcher.hpp).
  [[nodiscard]] double matching_cost_ns() const { return matcher_.matching_cost_ns(); }

  /// The matcher (lookup/hit counters, format).
  [[nodiscard]] const CallStackMatcher& matcher() const { return matcher_; }

  /// Allocations that had to be redirected because their tier was full.
  [[nodiscard]] std::uint64_t oom_redirects() const {
    return oom_redirects_.load(std::memory_order_relaxed);
  }

  /// Conservative capacity guard for concurrent replay: true when EVERY
  /// tier heap has headroom for `allocations` more blocks totalling
  /// `total_requested` bytes. In that case no subset of those requests
  /// can exhaust any tier — wherever matching places them and in
  /// whatever order they interleave with frees — so no OOM redirect (and
  /// hence no order-dependent placement) is possible. A `false` return
  /// means a redirect *may* happen, not that it will; callers that need
  /// order-independence (the parallel replay engine) must then fall back
  /// to a serialized order. Thread-safe, but the answer is a snapshot —
  /// call it only while no other thread is allocating/freeing.
  [[nodiscard]] bool can_absorb(Bytes total_requested, std::uint64_t allocations) const;

 private:
  FlexMalloc() = default;

  /// Per-tier counters, atomic so concurrent allocations never lose
  /// updates; boxed because atomics are not movable element-wise.
  struct AtomicTierStats {
    std::string tier;
    std::atomic<std::uint64_t> allocations{0};
    std::atomic<Bytes> bytes{0};
    std::atomic<Bytes> high_water{0};
  };

  std::vector<std::unique_ptr<ArenaHeap>> heaps_;
  std::vector<std::unique_ptr<AtomicTierStats>> tier_stats_;
  CallStackMatcher matcher_;
  std::size_t fallback_ = 0;
  std::atomic<std::uint64_t> oom_redirects_{0};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<Bytes> migrated_bytes_{0};
  std::atomic<std::uint64_t> migration_refusals_{0};
};

}  // namespace ecohmem::flexmalloc
