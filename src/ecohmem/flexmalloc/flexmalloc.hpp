#pragma once

/// \file flexmalloc.hpp
/// The FlexMalloc interposer: routes each intercepted allocation to the
/// heap manager of the tier named by the Advisor report (§IV-C).
///
/// Behaviors reproduced from the real library:
///   - call-stack capture + matching on every allocation (matcher.hpp),
///   - fallback tier for objects not listed in the report,
///   - fallback redirection when the designated tier runs out of space,
///   - per-tier accounting and matching-cost metering.
///
/// The "interposition" boundary here is the explicit `malloc(stack, size)`
/// call the execution engine makes for every workload allocation; on a
/// real system the same entry point is reached via LD_PRELOAD.

#include <memory>
#include <string>
#include <vector>

#include "ecohmem/bom/frame.hpp"
#include "ecohmem/bom/symbols.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/flexmalloc/heap_manager.hpp"
#include "ecohmem/flexmalloc/matcher.hpp"
#include "ecohmem/flexmalloc/report_parser.hpp"

namespace ecohmem::flexmalloc {

/// Description of one tier-backed heap FlexMalloc sits on.
struct HeapSpec {
  std::string tier;     ///< tier name, must match report tier names
  Bytes capacity = 0;   ///< capacity available for dynamic allocations
};

/// A completed allocation.
struct Allocation {
  std::uint64_t address = 0;
  std::size_t tier_index = 0;
  bool matched = false;     ///< report hit (vs fallback by default)
  bool redirected = false;  ///< designated tier was full, fell back
};

/// Per-tier counters.
struct TierStats {
  std::string tier;
  std::uint64_t allocations = 0;
  Bytes bytes = 0;
  Bytes high_water = 0;
};

class FlexMalloc {
 public:
  /// `heaps`: one per tier, in the order used by `Allocation::tier_index`.
  /// `fallback_tier` must name one of them. `symbols` is required only
  /// for human-readable reports. `matcher_options` configures the
  /// stack-depth fallback matching.
  [[nodiscard]] static Expected<FlexMalloc> create(std::vector<HeapSpec> heaps,
                                                   const ParsedReport& report,
                                                   const bom::SymbolTable* symbols = nullptr,
                                                   MatcherOptions matcher_options = {});

  /// Interposed malloc: captures nothing itself — the caller passes the
  /// call stack it captured (the engine plays the unwinder's role).
  [[nodiscard]] Expected<Allocation> malloc(const bom::CallStack& stack, Bytes size);

  /// Interposed free.
  [[nodiscard]] Status free(std::uint64_t address);

  /// Interposed realloc: returns a new allocation in the same tier the
  /// stack maps to (contents-copy cost is the engine's concern).
  [[nodiscard]] Expected<Allocation> realloc(const bom::CallStack& stack,
                                             std::uint64_t address, Bytes new_size);

  [[nodiscard]] std::size_t tier_count() const { return heaps_.size(); }
  [[nodiscard]] const std::string& tier_name(std::size_t index) const {
    return heaps_.at(index)->name();
  }
  [[nodiscard]] Expected<std::size_t> tier_index(std::string_view name) const;
  [[nodiscard]] std::size_t fallback_index() const { return fallback_; }

  [[nodiscard]] const HeapManager& heap(std::size_t index) const { return *heaps_.at(index); }
  [[nodiscard]] std::vector<TierStats> stats() const;

  /// Simulated cost of all matching work so far (see matcher.hpp).
  [[nodiscard]] double matching_cost_ns() const { return matcher_.matching_cost_ns(); }
  [[nodiscard]] const CallStackMatcher& matcher() const { return matcher_; }

  /// Allocations that had to be redirected because their tier was full.
  [[nodiscard]] std::uint64_t oom_redirects() const { return oom_redirects_; }

 private:
  FlexMalloc() = default;

  std::vector<std::unique_ptr<ArenaHeap>> heaps_;
  std::vector<TierStats> tier_stats_;
  CallStackMatcher matcher_;
  std::size_t fallback_ = 0;
  std::uint64_t oom_redirects_ = 0;
};

}  // namespace ecohmem::flexmalloc
