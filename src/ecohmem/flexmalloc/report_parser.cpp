#include "ecohmem/flexmalloc/report_parser.hpp"

#include <fstream>
#include <sstream>

#include "ecohmem/common/strings.hpp"

namespace ecohmem::flexmalloc {

Expected<ParsedReport> parse_report(std::string_view text, const bom::ModuleTable& modules) {
  ParsedReport report;
  bool format_known = false;

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    std::string_view raw =
        text.substr(start, end == std::string_view::npos ? std::string_view::npos : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;

    std::string_view line = strings::trim(raw);
    if (line.empty()) continue;
    if (line.front() == '#') {
      // Header comments: "# format = bom", "# fallback = pmem".
      const std::string_view body = strings::trim(line.substr(1));
      const std::size_t eq = body.find('=');
      if (eq != std::string_view::npos) {
        const std::string_view key = strings::trim(body.substr(0, eq));
        const std::string_view value = strings::trim(body.substr(eq + 1));
        if (key == "format") {
          report.is_bom = value == "bom";
          format_known = true;
        } else if (key == "fallback") {
          report.fallback_tier = std::string(value);
        } else if (key == "model") {
          report.model_stamp = std::string(value);
        }
      }
      continue;
    }

    // Strip trailing "# size=N" annotation. A size that fails integer
    // parsing (garbage, negative, or overflowing 64 bits) rejects the
    // report: silently treating it as 0 would skew any capacity
    // accounting done over the parsed entries.
    Bytes size = 0;
    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      const std::string_view note = strings::trim(line.substr(hash + 1));
      if (strings::starts_with(note, "size=")) {
        auto parsed = strings::parse_u64(note.substr(5));
        if (!parsed) {
          return unexpected("report line " + std::to_string(line_no) + ": " + parsed.error());
        }
        size = *parsed;
      }
      line = strings::trim(line.substr(0, hash));
    }

    const std::size_t at = line.rfind(" @ ");
    if (at == std::string_view::npos) {
      return unexpected("report line " + std::to_string(line_no) + ": missing ' @ tier'");
    }
    const std::string_view stack_text = strings::trim(line.substr(0, at));
    const std::string_view tier = strings::trim(line.substr(at + 3));
    if (tier.empty()) {
      return unexpected("report line " + std::to_string(line_no) + ": empty tier");
    }

    if (!format_known) {
      report.is_bom = bom::looks_like_bom(stack_text);
      format_known = true;
    }

    ReportEntry entry;
    entry.tier = std::string(tier);
    entry.size = size;
    if (report.is_bom) {
      auto cs = bom::parse_bom(stack_text, modules);
      if (!cs) return unexpected("report line " + std::to_string(line_no) + ": " + cs.error());
      entry.stack = std::move(*cs);
    } else {
      auto hs = bom::parse_human(stack_text);
      if (!hs) return unexpected("report line " + std::to_string(line_no) + ": " + hs.error());
      entry.stack = std::move(*hs);
    }
    report.entries.push_back(std::move(entry));
  }
  return report;
}

Expected<ParsedReport> load_report(const std::string& path, const bom::ModuleTable& modules) {
  std::ifstream in(path);
  if (!in) return unexpected("cannot open report: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_report(ss.str(), modules);
}

}  // namespace ecohmem::flexmalloc
