#include "ecohmem/flexmalloc/matcher.hpp"

namespace ecohmem::flexmalloc {

namespace {

/// The innermost `depth` frames of a stack.
bom::CallStack suffix_of(const bom::CallStack& stack, std::size_t depth) {
  bom::CallStack out;
  const std::size_t n = std::min(depth, stack.frames.size());
  out.frames.assign(stack.frames.begin(),
                    stack.frames.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

/// fetch_add for atomic<double> via CAS (portable across libstdc++
/// versions that predate the C++20 floating-point specializations).
void atomic_add(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + value, std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---------------------------------------------------------------- MatchCache

std::pair<const std::string*, bool> MatchCache::find(const bom::CallStack& key) const {
  const Shard& shard = shards_[shard_of(key)];
  common::SharedScopedLock lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return {nullptr, false};
  return {it->second, true};
}

void MatchCache::insert(const bom::CallStack& key, const std::string* tier) {
  Shard& shard = shards_[shard_of(key)];
  common::ScopedWriteLock lock(shard.mu);
  shard.map.emplace(key, tier);
}

// --------------------------------------------------------- CallStackMatcher

CallStackMatcher::CallStackMatcher(CallStackMatcher&& other) noexcept
    : is_bom_(other.is_bom_),
      options_(other.options_),
      bom_index_(std::move(other.bom_index_)),
      hr_index_(std::move(other.hr_index_)),
      suffix_index_(std::move(other.suffix_index_)),
      symbols_(other.symbols_),
      cache_(std::move(other.cache_)),
      hr_mu_(std::move(other.hr_mu_)),
      lookups_(other.lookups_.load(std::memory_order_relaxed)),
      hits_(other.hits_.load(std::memory_order_relaxed)),
      frames_compared_(other.frames_compared_.load(std::memory_order_relaxed)),
      string_bytes_compared_(other.string_bytes_compared_.load(std::memory_order_relaxed)),
      symbolization_ns_(other.symbolization_ns_.load(std::memory_order_relaxed)) {}

CallStackMatcher& CallStackMatcher::operator=(CallStackMatcher&& other) noexcept {
  if (this == &other) return *this;
  is_bom_ = other.is_bom_;
  options_ = other.options_;
  bom_index_ = std::move(other.bom_index_);
  hr_index_ = std::move(other.hr_index_);
  suffix_index_ = std::move(other.suffix_index_);
  symbols_ = other.symbols_;
  cache_ = std::move(other.cache_);
  hr_mu_ = std::move(other.hr_mu_);
  lookups_.store(other.lookups_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  hits_.store(other.hits_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  frames_compared_.store(other.frames_compared_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  string_bytes_compared_.store(other.string_bytes_compared_.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  symbolization_ns_.store(other.symbolization_ns_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  return *this;
}

Expected<CallStackMatcher> CallStackMatcher::create(const ParsedReport& report,
                                                    const bom::SymbolTable* symbols,
                                                    MatcherOptions options) {
  CallStackMatcher m;
  m.is_bom_ = report.is_bom;
  m.symbols_ = symbols;
  m.options_ = options;
  if (options.match_cache) m.cache_ = std::make_unique<MatchCache>();

  if (!report.is_bom && symbols == nullptr) {
    return unexpected("human-readable report requires debug information (symbol table)");
  }

  for (const auto& entry : report.entries) {
    if (const auto* cs = std::get_if<bom::CallStack>(&entry.stack)) {
      m.bom_index_.emplace(*cs, entry.tier);
      if (options.min_suffix_depth > 0) {
        const bom::CallStack key = suffix_of(*cs, options.min_suffix_depth);
        const auto [it, inserted] = m.suffix_index_.emplace(key, entry.tier);
        if (!inserted && it->second != entry.tier) it->second.clear();  // ambiguous
      }
    } else {
      const auto& hs = std::get<bom::HumanStack>(entry.stack);
      m.hr_index_.emplace(bom::format_human(hs), entry.tier);
    }
  }
  return m;
}

MatchResult CallStackMatcher::match(const bom::CallStack& captured) {
  lookups_.fetch_add(1, std::memory_order_relaxed);

  if (cache_) {
    const auto [tier, found] = cache_->find(captured);
    if (found) {
      // A cache hit still pays one hash-and-compare over the frames.
      frames_compared_.fetch_add(captured.frames.size(), std::memory_order_relaxed);
      if (tier != nullptr) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return MatchResult{tier};
      }
      return {};
    }
  }

  const MatchResult result = match_uncached(captured);
  if (cache_) cache_->insert(captured, result.tier);
  return result;
}

MatchResult CallStackMatcher::match_uncached(const bom::CallStack& captured) {
  if (is_bom_) {
    frames_compared_.fetch_add(captured.frames.size(), std::memory_order_relaxed);
    const auto it = bom_index_.find(captured);
    if (it != bom_index_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return MatchResult{&it->second};
    }
    if (options_.min_suffix_depth > 0) {
      const auto sfx =
          suffix_index_.find(suffix_of(captured, options_.min_suffix_depth));
      frames_compared_.fetch_add(options_.min_suffix_depth, std::memory_order_relaxed);
      if (sfx != suffix_index_.end() && !sfx->second.empty()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return MatchResult{&sfx->second};
      }
    }
    return {};
  }

  // Human-readable path: symbolize the captured frames, then compare the
  // formatted strings. The shared symbol table sorts lazily and meters
  // its own cost, so this whole path serializes on hr_mu_ (the BOM path
  // above never takes it). The cost of symbolization accrues in the
  // symbol table's meter; string comparison cost accrues here.
  common::ScopedLock hr_lock(*hr_mu_);
  const double before = symbols_->cost().estimated_ns();
  auto hr = symbols_->translate(captured);
  atomic_add(symbolization_ns_, symbols_->cost().estimated_ns() - before);
  if (!hr) return {};  // stripped frame: unmatched, falls back

  const std::string key = bom::format_human(*hr);
  string_bytes_compared_.fetch_add(key.size(), std::memory_order_relaxed);
  const auto it = hr_index_.find(key);
  if (it == hr_index_.end()) return {};
  hits_.fetch_add(1, std::memory_order_relaxed);
  return MatchResult{&it->second};
}

double CallStackMatcher::matching_cost_ns() const {
  // BOM: ~2 ns per frame word compared (hash + equality on integers).
  // HR: symbolization dominates; string comparison adds ~0.25 ns/byte.
  const double bom_cost =
      2.0 * static_cast<double>(frames_compared_.load(std::memory_order_relaxed));
  const double hr_cost =
      symbolization_ns_.load(std::memory_order_relaxed) +
      0.25 * static_cast<double>(string_bytes_compared_.load(std::memory_order_relaxed));
  return is_bom_ ? bom_cost : hr_cost;
}

}  // namespace ecohmem::flexmalloc
