#include "ecohmem/flexmalloc/matcher.hpp"

namespace ecohmem::flexmalloc {

namespace {

/// The innermost `depth` frames of a stack.
bom::CallStack suffix_of(const bom::CallStack& stack, std::size_t depth) {
  bom::CallStack out;
  const std::size_t n = std::min(depth, stack.frames.size());
  out.frames.assign(stack.frames.begin(),
                    stack.frames.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

}  // namespace

Expected<CallStackMatcher> CallStackMatcher::create(const ParsedReport& report,
                                                    const bom::SymbolTable* symbols,
                                                    MatcherOptions options) {
  CallStackMatcher m;
  m.is_bom_ = report.is_bom;
  m.symbols_ = symbols;
  m.options_ = options;

  if (!report.is_bom && symbols == nullptr) {
    return unexpected("human-readable report requires debug information (symbol table)");
  }

  for (const auto& entry : report.entries) {
    if (const auto* cs = std::get_if<bom::CallStack>(&entry.stack)) {
      m.bom_index_.emplace(*cs, entry.tier);
      if (options.min_suffix_depth > 0) {
        const bom::CallStack key = suffix_of(*cs, options.min_suffix_depth);
        const auto [it, inserted] = m.suffix_index_.emplace(key, entry.tier);
        if (!inserted && it->second != entry.tier) it->second.clear();  // ambiguous
      }
    } else {
      const auto& hs = std::get<bom::HumanStack>(entry.stack);
      m.hr_index_.emplace(bom::format_human(hs), entry.tier);
    }
  }
  return m;
}

MatchResult CallStackMatcher::match(const bom::CallStack& captured) {
  ++lookups_;
  if (is_bom_) {
    frames_compared_ += captured.frames.size();
    const auto it = bom_index_.find(captured);
    if (it != bom_index_.end()) {
      ++hits_;
      return MatchResult{&it->second};
    }
    if (options_.min_suffix_depth > 0) {
      const auto sfx =
          suffix_index_.find(suffix_of(captured, options_.min_suffix_depth));
      frames_compared_ += options_.min_suffix_depth;
      if (sfx != suffix_index_.end() && !sfx->second.empty()) {
        ++hits_;
        return MatchResult{&sfx->second};
      }
    }
    return {};
  }

  // Human-readable path: symbolize the captured frames, then compare the
  // formatted strings. The cost of symbolization accrues in the symbol
  // table's meter; string comparison cost accrues here.
  const double before = symbols_->cost().estimated_ns();
  auto hr = symbols_->translate(captured);
  symbolization_ns_ += symbols_->cost().estimated_ns() - before;
  if (!hr) return {};  // stripped frame: unmatched, falls back

  const std::string key = bom::format_human(*hr);
  string_bytes_compared_ += key.size();
  const auto it = hr_index_.find(key);
  if (it == hr_index_.end()) return {};
  ++hits_;
  return MatchResult{&it->second};
}

double CallStackMatcher::matching_cost_ns() const {
  // BOM: ~2 ns per frame word compared (hash + equality on integers).
  // HR: symbolization dominates; string comparison adds ~0.25 ns/byte.
  const double bom_cost = 2.0 * static_cast<double>(frames_compared_);
  const double hr_cost =
      symbolization_ns_ + 0.25 * static_cast<double>(string_bytes_compared_);
  return is_bom_ ? bom_cost : hr_cost;
}

}  // namespace ecohmem::flexmalloc
