#pragma once

/// \file heap_manager.hpp
/// Per-tier heap managers behind FlexMalloc (§IV-C).
///
/// On the real system these are memkind (PMem), POSIX malloc (DRAM) or
/// libnuma. Here each tier gets an `ArenaHeap`: a virtual-address-space
/// manager with first-fit free-list reuse and capacity accounting. The
/// addresses it hands out are simulated VAs — distinct non-overlapping
/// ranges per tier, so the profiler's sample attribution and the
/// analyzer's interval lookup behave exactly as with real pointers.

#include <cstdint>
#include <map>
#include <string>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem::flexmalloc {

/// Interface of a tier-backed heap.
class HeapManager {
 public:
  virtual ~HeapManager() = default;

  /// Allocates `size` bytes; fails when the tier is out of capacity.
  [[nodiscard]] virtual Expected<std::uint64_t> allocate(Bytes size) = 0;

  /// Frees the block starting at `address`; returns its size.
  [[nodiscard]] virtual Expected<Bytes> deallocate(std::uint64_t address) = 0;

  /// True if `address` belongs to this heap.
  [[nodiscard]] virtual bool owns(std::uint64_t address) const = 0;

  [[nodiscard]] virtual Bytes used() const = 0;
  [[nodiscard]] virtual Bytes capacity() const = 0;
  [[nodiscard]] virtual const std::string& name() const = 0;
};

/// Simulated-address-space heap with first-fit reuse of freed blocks.
class ArenaHeap final : public HeapManager {
 public:
  /// `base`: start of this heap's VA range (ranges must not overlap
  /// across heaps). Blocks are aligned to `alignment`.
  ArenaHeap(std::string name, std::uint64_t base, Bytes capacity, Bytes alignment = 64);

  [[nodiscard]] Expected<std::uint64_t> allocate(Bytes size) override;
  [[nodiscard]] Expected<Bytes> deallocate(std::uint64_t address) override;
  [[nodiscard]] bool owns(std::uint64_t address) const override;
  [[nodiscard]] Bytes used() const override { return used_; }
  [[nodiscard]] Bytes capacity() const override { return capacity_; }
  [[nodiscard]] const std::string& name() const override { return name_; }

  [[nodiscard]] std::uint64_t base() const { return base_; }
  [[nodiscard]] std::uint64_t live_blocks() const { return live_.size(); }
  [[nodiscard]] Bytes high_water() const { return high_water_; }

 private:
  std::string name_;
  std::uint64_t base_;
  Bytes capacity_;
  Bytes alignment_;
  std::uint64_t cursor_;
  Bytes used_ = 0;
  Bytes high_water_ = 0;
  std::map<std::uint64_t, Bytes> live_;  // address -> size
  std::map<std::uint64_t, Bytes> free_;  // address -> size (coalesced)
};

}  // namespace ecohmem::flexmalloc
