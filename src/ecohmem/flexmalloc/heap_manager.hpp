#pragma once

/// \file heap_manager.hpp
/// Per-tier heap managers behind FlexMalloc (§IV-C).
///
/// On the real system these are memkind (PMem), POSIX malloc (DRAM) or
/// libnuma. Here each tier gets an `ArenaHeap`: a virtual-address-space
/// manager with first-fit free-list reuse and capacity accounting. The
/// addresses it hands out are simulated VAs — distinct non-overlapping
/// ranges per tier, so the profiler's sample attribution and the
/// analyzer's interval lookup behave exactly as with real pointers.
///
/// Thread safety (docs/threading.md): `ArenaHeap` is safe to call from
/// any number of threads concurrently. Locking is sharded naturally —
/// one mutex per tier heap, never held across heaps — so allocations on
/// different tiers proceed in parallel and no lock ordering between
/// heaps exists (hence no deadlock). The counters returned by `used()`,
/// `high_water()` and `live_blocks()` are lock-free atomic reads.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/lockdep.hpp"
#include "ecohmem/common/thread_annotations.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem::flexmalloc {

/// Interface of a tier-backed heap.
///
/// Contract: implementations must be safe for concurrent calls from
/// multiple threads (the parallel replay engine drives one shared heap
/// per tier from all worker threads).
class HeapManager {
 public:
  virtual ~HeapManager() = default;

  /// Allocates `size` bytes; fails when the tier is out of capacity.
  [[nodiscard]] virtual Expected<std::uint64_t> allocate(Bytes size) = 0;

  /// Frees the block starting at `address`; returns its size.
  [[nodiscard]] virtual Expected<Bytes> deallocate(std::uint64_t address) = 0;

  /// True if `address` belongs to this heap.
  [[nodiscard]] virtual bool owns(std::uint64_t address) const = 0;

  /// Bytes currently allocated (padded block sizes).
  [[nodiscard]] virtual Bytes used() const = 0;

  /// Total capacity available for allocations.
  [[nodiscard]] virtual Bytes capacity() const = 0;

  /// Tier name this heap backs (matches the report's tier names).
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Block alignment: every allocation is padded to a multiple of this.
  [[nodiscard]] virtual Bytes alignment() const = 0;

  /// Padded size of the live block at `address`; fails when no live
  /// block starts there. Used by FlexMalloc's object migration to size
  /// the destination allocation before touching the source block.
  [[nodiscard]] virtual Expected<Bytes> block_size(std::uint64_t address) const = 0;
};

/// Simulated-address-space heap with first-fit reuse of freed blocks.
///
/// Thread safe: `allocate`/`deallocate`/`owns` serialize on one internal
/// mutex (a leaf lock — no other lock is ever taken while it is held);
/// the accounting getters are wait-free atomic loads. Not copyable or
/// movable (construct in place, e.g. behind `std::unique_ptr`).
class ArenaHeap final : public HeapManager {
 public:
  /// `base`: start of this heap's VA range (ranges must not overlap
  /// across heaps). Blocks are aligned to `alignment`.
  ArenaHeap(std::string name, std::uint64_t base, Bytes capacity, Bytes alignment = 64);

  ArenaHeap(const ArenaHeap&) = delete;
  ArenaHeap& operator=(const ArenaHeap&) = delete;

  [[nodiscard]] Expected<std::uint64_t> allocate(Bytes size) override;
  [[nodiscard]] Expected<Bytes> deallocate(std::uint64_t address) override;
  [[nodiscard]] bool owns(std::uint64_t address) const override;
  [[nodiscard]] Bytes used() const override { return used_.load(std::memory_order_relaxed); }
  [[nodiscard]] Bytes capacity() const override { return capacity_; }
  [[nodiscard]] const std::string& name() const override { return name_; }

  /// Start of this heap's simulated VA range.
  [[nodiscard]] std::uint64_t base() const { return base_; }

  [[nodiscard]] Expected<Bytes> block_size(std::uint64_t address) const override;

  /// Releases the sub-range `[address + offset, address + offset +
  /// length)` of the live block at `address` back to the free list,
  /// leaving up to two live remnant blocks (before/after the range).
  /// The freed middle coalesces with free neighbours exactly like a
  /// whole-block free. `offset` must be a multiple of `alignment()`, and
  /// `length` must either be a multiple of `alignment()` or reach the
  /// end of the block (so remnant starts stay aligned). Releasing the
  /// whole block is equivalent to `deallocate`. Returns the bytes
  /// released. This is the heap half of sub-range (page-granular)
  /// object migration — FlexMalloc carves chunks out of huge blocks
  /// instead of moving them whole.
  [[nodiscard]] Expected<Bytes> release_range(std::uint64_t address, Bytes offset, Bytes length);

  /// Every allocation is padded to a multiple of `alignment()`, so a
  /// request for `size` bytes consumes at most `size + alignment()`
  /// bytes of capacity (zero-byte requests consume exactly one unit).
  [[nodiscard]] Bytes alignment() const override { return alignment_; }

  /// Number of currently live (allocated, unfreed) blocks.
  [[nodiscard]] std::uint64_t live_blocks() const {
    return live_count_.load(std::memory_order_relaxed);
  }

  /// Highest `used()` value ever observed.
  [[nodiscard]] Bytes high_water() const { return high_water_.load(std::memory_order_relaxed); }

 private:
  std::string name_;
  std::uint64_t base_;
  Bytes capacity_;
  Bytes alignment_;

  /// Leaf lock (rank table: docs/threading.md). One per tier heap,
  /// never held across heaps or while calling out.
  mutable common::RankedMutex mu_{common::lockdep::LockRank::kArenaHeap, "arena_heap"};
  std::uint64_t cursor_ ECOHMEM_GUARDED_BY(mu_);                 ///< bump pointer
  std::map<std::uint64_t, Bytes> live_ ECOHMEM_GUARDED_BY(mu_);  ///< address -> size
  std::map<std::uint64_t, Bytes> free_ ECOHMEM_GUARDED_BY(mu_);  ///< address -> size, coalesced

  std::atomic<Bytes> used_{0};
  std::atomic<Bytes> high_water_{0};
  std::atomic<std::uint64_t> live_count_{0};
};

}  // namespace ecohmem::flexmalloc
