#pragma once

/// \file report_parser.hpp
/// Parses Advisor reports on the FlexMalloc side.
///
/// FlexMalloc reads the report at startup and builds its matching
/// structures. Both Table I formats are supported; the format is
/// auto-detected per file (header comment or frame syntax).

#include <string>
#include <variant>
#include <vector>

#include "ecohmem/bom/format.hpp"
#include "ecohmem/bom/module_table.hpp"
#include "ecohmem/common/expected.hpp"

namespace ecohmem::flexmalloc {

/// One parsed report line.
struct ReportEntry {
  /// BOM stacks are resolved against the module table; human-readable
  /// stacks stay as file:line frames and are matched by string.
  std::variant<bom::CallStack, bom::HumanStack> stack;
  std::string tier;
  Bytes size = 0;  ///< informational (the Advisor's footprint charge)
};

struct ParsedReport {
  std::vector<ReportEntry> entries;
  std::string fallback_tier;
  bool is_bom = true;

  /// `# model = <hash>` header stamp: the content hash of the ranking
  /// model that produced the placement (`--policy learned`). Empty for
  /// heuristic reports. Informational to FlexMalloc; ecohmem-lint's
  /// advisor-policy-model rule verifies it against the model file.
  std::string model_stamp;
};

/// Parses report text. BOM frames are resolved against `modules`; an
/// unknown module name is an error (the binary changed since profiling).
[[nodiscard]] Expected<ParsedReport> parse_report(std::string_view text,
                                                  const bom::ModuleTable& modules);

[[nodiscard]] Expected<ParsedReport> load_report(const std::string& path,
                                                 const bom::ModuleTable& modules);

}  // namespace ecohmem::flexmalloc
