/// \file salvage.cpp
/// The salvage planner: block classification and byte/event accounting
/// for fail-soft trace reads. See salvage.hpp for the recovery rules.

#include "ecohmem/trace/salvage.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <istream>
#include <limits>
#include <utility>

namespace ecohmem::trace {

namespace {

/// Sequential-scan recovery: decode the event section front to back as
/// one virtual block. Used for v1/v2 and for v3 files whose footer
/// index is unreadable (`index_error` carries the lenient decode error
/// in that case).
void plan_sequential(SalvageSource& source, const codec::HeaderInfo& header,
                     std::uint64_t file_size, const std::string& index_error,
                     SalvagePlan& plan) {
  SalvageManifest& m = plan.manifest;
  const bool v3 = header.version == codec::kVersionIndexed;
  const bool plain = header.version == codec::kVersionPlain;
  m.sequential_scan = true;
  m.index_bytes = 0;

  // For v1/v2 the header count is authoritative (written in one shot);
  // decoding past it would mint events out of trailing garbage. A v3
  // header may still carry the streaming writer's 0 placeholder (the
  // crash-before-finish case), so 0 there means "unknown": scan to the
  // first undecodable byte.
  std::uint64_t cap = header.event_count;
  if (v3 && cap == 0) cap = std::numeric_limits<std::uint64_t>::max();

  const SalvageSource::Probe p = source.probe(header.events_offset, file_size, cap, plain);
  m.events_recovered = p.events;
  m.events_declared = std::max(header.event_count, p.events);
  m.events_dropped = m.events_declared - m.events_recovered;
  m.kept_bytes = p.end_offset - header.events_offset;
  m.dropped_bytes = file_size - p.end_offset;

  if (p.events > 0) {
    m.blocks_kept = 1;
    plan.blocks.push_back(TraceBlockInfo{header.events_offset, m.kept_bytes, p.events,
                                         /*first_event_index=*/0, p.first_time});
  }
  if (m.events_dropped > 0 || m.dropped_bytes > 0) {
    m.blocks_dropped = 1;
    SalvageBlockLoss loss;
    loss.block = m.blocks_kept;  // the region after the last kept one
    loss.file_offset = p.end_offset;
    loss.byte_size = m.dropped_bytes;
    loss.events_declared = m.events_dropped;
    loss.first_error_offset = p.ok ? p.end_offset : p.error_offset;
    if (v3) {
      loss.reason = "footer index unreadable (" + index_error + ")";
      if (!p.ok) loss.reason += "; " + p.error;
    } else {
      loss.reason = p.ok ? "header declares more events than the file holds" : p.error;
    }
    m.losses.push_back(std::move(loss));
  }
  m.blocks_declared = m.blocks_kept + m.blocks_dropped;
}

}  // namespace

std::string SalvageManifest::summary() const {
  char cov[32];
  std::snprintf(cov, sizeof(cov), "%.1f%%", coverage() * 100.0);
  std::string s = "salvage: kept " + std::to_string(blocks_kept) + "/" +
                  std::to_string(blocks_declared) + " blocks, " + std::to_string(events_recovered) +
                  "/" + std::to_string(events_declared) + " events (" + cov + " coverage), dropped " +
                  std::to_string(dropped_bytes) + " of " + std::to_string(file_bytes) + " bytes";
  if (sequential_scan) s += " [sequential scan: no usable index]";
  return s;
}

SalvagePlan build_salvage_plan(SalvageSource& source, const codec::HeaderInfo& header,
                               std::uint64_t file_size, const Expected<codec::IndexInfo>& index) {
  SalvagePlan plan;
  SalvageManifest& m = plan.manifest;
  m.salvaged = true;
  m.version = header.version;
  m.file_bytes = file_size;
  m.header_bytes = header.events_offset;

  if (header.version != codec::kVersionIndexed) {
    plan_sequential(source, header, file_size, /*index_error=*/"", plan);
    return plan;
  }
  // A structurally-readable footer whose offset points into (or before)
  // the header cannot describe real blocks — its "entries" are header
  // bytes. Treat it the same as an unreadable index.
  if (!index.has_value() || index->footer_offset < header.events_offset) {
    const std::string err =
        index.has_value() ? "footer offset points before the event section" : index.error();
    plan_sequential(source, header, file_size, err, plan);
    return plan;
  }

  const codec::IndexInfo& idx = *index;
  const std::uint64_t events_end = idx.footer_offset;
  m.index_usable = true;
  m.index_bytes = file_size - events_end;
  m.blocks_declared = idx.entries.size();
  for (const codec::IndexEntry& e : idx.entries) {
    m.events_declared += e.count & codec::kBlockCountMask;  // bit 63 flags compression
  }

  // Pass 1: keep only entries whose offsets are in-range and strictly
  // increasing — anything else is index damage and its span cannot be
  // attributed, so the declared events are charged as lost up front.
  struct Candidate {
    std::uint64_t ordinal;
    codec::IndexEntry entry;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(idx.entries.size());
  std::uint64_t prev_offset = 0;
  bool have_prev = false;
  for (std::size_t i = 0; i < idx.entries.size(); ++i) {
    const codec::IndexEntry& e = idx.entries[i];
    const std::uint64_t entry_pos = idx.footer_offset + i * codec::kIndexEntryBytes;
    const bool plausible = e.offset >= header.events_offset && e.offset < events_end &&
                           (!have_prev || e.offset > prev_offset);
    if (!plausible) {
      SalvageBlockLoss loss;
      loss.block = i;
      loss.file_offset = e.offset;
      loss.byte_size = 0;  // span unattributable; the bytes land in dropped_bytes
      loss.events_declared = e.count & codec::kBlockCountMask;
      loss.first_error_offset = entry_pos;
      loss.reason = "implausible index entry (offset out of range or out of order)";
      m.losses.push_back(std::move(loss));
      ++m.blocks_dropped;
      m.events_dropped += e.count & codec::kBlockCountMask;
      continue;
    }
    candidates.push_back(Candidate{i, e});
    prev_offset = e.offset;
    have_prev = true;
  }

  // Pass 2: trial-decode each candidate span. A block is kept only when
  // it decodes cleanly, yields exactly the declared count, and ends
  // exactly where the next candidate begins — anything weaker would let
  // a flipped count byte silently shift events between blocks.
  std::uint64_t first_event_index = 0;
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    const Candidate& c = candidates[k];
    const std::uint64_t span_end =
        k + 1 < candidates.size() ? candidates[k + 1].entry.offset : events_end;
    const bool compressed = (c.entry.count & codec::kBlockCompressedFlag) != 0;
    const std::uint64_t declared = c.entry.count & codec::kBlockCountMask;
    SalvageSource::Probe p =
        compressed ? source.probe_compressed(c.entry.offset, span_end, declared)
                   : source.probe(c.entry.offset, span_end, declared, /*plain=*/false);
    std::string reason;
    if (!p.ok) {
      reason = p.error;
    } else if (p.events != declared) {
      reason = "block decodes only " + std::to_string(p.events) + " of " +
               std::to_string(declared) + " declared events";
      p.error_offset = p.end_offset;
    } else if (p.end_offset != span_end) {
      reason = std::to_string(span_end - p.end_offset) +
               " undecoded bytes between the block's last event and the next block";
      p.error_offset = p.end_offset;
    }
    if (reason.empty()) {
      plan.blocks.push_back(TraceBlockInfo{c.entry.offset, span_end - c.entry.offset, declared,
                                           first_event_index, p.first_time, compressed});
      first_event_index += declared;
      ++m.blocks_kept;
      m.events_recovered += declared;
      m.kept_bytes += span_end - c.entry.offset;
    } else {
      SalvageBlockLoss loss;
      loss.block = c.ordinal;
      loss.file_offset = c.entry.offset;
      loss.byte_size = span_end - c.entry.offset;
      loss.events_declared = declared;
      loss.first_error_offset = p.error_offset;
      loss.reason = std::move(reason);
      m.losses.push_back(std::move(loss));
      ++m.blocks_dropped;
      m.events_dropped += declared;
    }
  }

  // Global byte accounting: every event-section byte not inside a kept
  // block is dropped, which also covers gaps no index entry claims.
  m.dropped_bytes = (events_end - header.events_offset) - m.kept_bytes;
  std::sort(m.losses.begin(), m.losses.end(),
            [](const SalvageBlockLoss& a, const SalvageBlockLoss& b) { return a.block < b.block; });
  return plan;
}

Expected<codec::IndexInfo> read_index_lenient(std::istream& in, std::uint64_t file_size) {
  // Mirrors codec::decode_index byte for byte (same checks, same error
  // strings) so TraceReader and TraceStreamer produce identical salvage
  // manifests for identical file contents.
  if (file_size < codec::kTrailerBytes) {
    return codec::truncated_at("v3 trace too small for index trailer", file_size);
  }
  const std::uint64_t trailer_offset = file_size - codec::kTrailerBytes;
  unsigned char trailer[codec::kTrailerBytes];
  in.clear();
  in.seekg(static_cast<std::streamoff>(trailer_offset));
  in.read(reinterpret_cast<char*>(trailer), sizeof(trailer));
  if (!in.good()) {
    return codec::truncated_at("unreadable v3 index trailer", trailer_offset);
  }
  if (std::memcmp(trailer + 16, codec::kIndexMagic, sizeof(codec::kIndexMagic)) != 0) {
    return codec::truncated_at("missing v3 index trailer magic", file_size - 8);
  }
  std::uint64_t entry_count = 0;
  codec::IndexInfo info;
  info.file_size = file_size;
  std::memcpy(&entry_count, trailer, 8);
  std::memcpy(&info.footer_offset, trailer + 8, 8);
  if (info.footer_offset > trailer_offset) {
    return codec::truncated_at("v3 footer offset points past the index trailer", file_size - 16);
  }
  const std::uint64_t index_bytes = trailer_offset - info.footer_offset;
  if (entry_count * codec::kIndexEntryBytes != index_bytes) {
    return unexpected("v3 index claims " + std::to_string(entry_count) + " entries but spans " +
                      std::to_string(index_bytes) + " bytes at offset " +
                      std::to_string(info.footer_offset));
  }
  std::vector<unsigned char> raw(static_cast<std::size_t>(index_bytes));
  in.clear();
  in.seekg(static_cast<std::streamoff>(info.footer_offset));
  in.read(reinterpret_cast<char*>(raw.data()), static_cast<std::streamsize>(raw.size()));
  if (!in.good() && index_bytes != 0) {
    return codec::truncated_at("unreadable v3 index footer", info.footer_offset);
  }
  info.entries.reserve(static_cast<std::size_t>(entry_count));
  codec::ByteReader r(raw.data(), raw.size(), info.footer_offset);
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    codec::IndexEntry e;
    if (!r.get(e.offset) || !r.get(e.count) || !r.get(e.first_time)) {
      return codec::truncated_at("truncated v3 index entry", r.offset());
    }
    info.entries.push_back(e);
  }
  return info;
}

}  // namespace ecohmem::trace
