#pragma once

/// \file salvage.hpp
/// Fail-soft trace recovery: the salvage planner shared by `TraceReader`
/// and `TraceStreamer` (trace_reader.hpp) when they are opened in
/// salvage mode.
///
/// A strict reader rejects a trace at the first structural error. The
/// salvage planner instead classifies the file block by block, using the
/// *lenient* v3 index decode (codec::decode_index — previously the
/// linter's private tool) and a trial decode of every candidate block:
///
///   - v3, readable trailer+footer: every index entry whose offset is
///     in-range and increasing gets its span trial-decoded; a block is
///     kept only when it decodes cleanly, yields exactly the event count
///     the index declares, and ends exactly at the next block's offset.
///     Anything else becomes a `SalvageBlockLoss` with the first error
///     offset. Blocks after a dropped block remain recoverable because
///     v3 blocks decode independently (the delta base resets per block).
///     Compressed blocks (kBlockCompressedFlag on the index count) are
///     trial-decoded all-or-nothing with the column codec under the
///     same three conditions.
///   - v3, unreadable trailer/footer (short write, crashed profiler):
///     sequential scan — the event section is decoded front to back as
///     one virtual block up to the first undecodable event. A compressed
///     block's 0xEC lead byte is never a valid event tag, so the scan
///     stops there: compressed events are only recoverable through the
///     index. See docs/trace_format.md for the timestamp caveat past
///     the first block boundary.
///   - v1/v2: sequential scan with the version's codec, capped at the
///     header's declared event count.
///
/// The resulting `SalvageManifest` accounts for every byte of the file
/// (`bytes_conserved()`) and every declared event (recovered + dropped ==
/// declared whenever the index was usable), so degraded reads are loud:
/// the analyzer stamps the coverage into its reports and `ecohmem-lint`
/// gates on it (trace-salvage-coverage). docs/robustness.md is the
/// user-facing guide.

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/trace/codec.hpp"
#include "ecohmem/trace/events.hpp"

namespace ecohmem::trace {

/// One independently-decodable event block (v3), or the whole event
/// section as a single virtual block (v1/v2 and sequential salvage).
struct TraceBlockInfo {
  std::uint64_t file_offset = 0;       ///< absolute offset of the block's first byte
  std::uint64_t byte_size = 0;         ///< encoded size in bytes
  std::uint64_t event_count = 0;       ///< events in the block (compression flag masked off)
  std::uint64_t first_event_index = 0; ///< index of the block's first event in the trace
  Ns first_time = 0;                   ///< timestamp of the block's first event (v3)
  bool compressed = false;             ///< body is a compressed column block (v3)
};

/// One region salvage could not recover, with the reason and where the
/// first error was detected (absolute file offset).
struct SalvageBlockLoss {
  std::uint64_t block = 0;             ///< ordinal in the raw footer index
  std::uint64_t file_offset = 0;       ///< where the lost region begins
  std::uint64_t byte_size = 0;         ///< bytes charged to this loss (0 when unattributable)
  std::uint64_t events_declared = 0;   ///< events the index/header claimed for the region
  std::uint64_t first_error_offset = 0;
  std::string reason;
};

/// Full accounting of a salvage read: what was kept, what was dropped
/// and why, down to the byte. `salvaged` is false for strict opens (the
/// manifest is then not meaningful).
struct SalvageManifest {
  bool salvaged = false;         ///< the reader ran in salvage mode
  bool index_usable = false;     ///< the v3 footer index was structurally readable
  bool sequential_scan = false;  ///< recovered by front-to-back scan (no usable index)
  std::uint32_t version = 0;

  std::uint64_t file_bytes = 0;
  std::uint64_t header_bytes = 0;  ///< magic through the header tables
  std::uint64_t kept_bytes = 0;    ///< event bytes in recovered blocks
  std::uint64_t dropped_bytes = 0; ///< event-section bytes not recovered
  std::uint64_t index_bytes = 0;   ///< footer + trailer (0 when unreadable)

  std::uint64_t blocks_declared = 0;
  std::uint64_t blocks_kept = 0;
  std::uint64_t blocks_dropped = 0;

  std::uint64_t events_declared = 0;  ///< index sum (v3) or header count (v1/v2)
  std::uint64_t events_recovered = 0;
  std::uint64_t events_dropped = 0;   ///< declared - recovered

  std::vector<SalvageBlockLoss> losses;

  /// Fraction of declared events recovered (1.0 when nothing declared).
  [[nodiscard]] double coverage() const {
    if (events_declared == 0) return 1.0;
    return static_cast<double>(events_recovered) / static_cast<double>(events_declared);
  }

  /// Every file byte is accounted exactly once: header, kept blocks,
  /// dropped regions, index. The corruption-sweep test asserts this for
  /// every injected fault — salvage never silently loses bytes.
  [[nodiscard]] bool bytes_conserved() const {
    return header_bytes + kept_bytes + dropped_bytes + index_bytes == file_bytes;
  }

  /// One-line human summary for CLI output.
  [[nodiscard]] std::string summary() const;
};

/// Random-access decode probe the planner classifies blocks through.
/// Implemented over the mmapped bytes (TraceReader) and over a seekable
/// file stream (TraceStreamer); both must report identical results for
/// identical bytes, which the corruption-sweep test cross-checks.
class SalvageSource {
 public:
  struct Probe {
    std::uint64_t events = 0;      ///< events decoded cleanly
    std::uint64_t end_offset = 0;  ///< offset one past the last clean event
    Ns first_time = 0;             ///< timestamp of the first decoded event
    bool ok = true;                ///< false when decoding stopped on an error
    std::uint64_t error_offset = 0;
    std::string error;
  };

  virtual ~SalvageSource() = default;

  /// Decodes up to `max_events` events starting at absolute offset
  /// `begin`, never accepting an event that ends past `end`. `plain`
  /// selects the v1 fixed-width codec (v2/v3 use the compact codec with
  /// a fresh delta base). Must not throw.
  [[nodiscard]] virtual Probe probe(std::uint64_t begin, std::uint64_t end,
                                    std::uint64_t max_events, bool plain) = 0;

  /// Trial-decodes one compressed column block starting at `begin`
  /// (index-driven salvage only; a compressed block is all-or-nothing).
  /// Errors are re-anchored at `begin` so both sources classify
  /// identical bytes identically regardless of how far their cursors
  /// advanced before failing. Must not throw.
  [[nodiscard]] virtual Probe probe_compressed(std::uint64_t begin, std::uint64_t end,
                                               std::uint64_t max_events) = 0;
};

/// Shared probe loop for both sources (`Source` is a codec decode source
/// positioned at `begin`). Stops cleanly when the span [begin, end) is
/// exhausted, and with `ok = false` at the first decode error or the
/// first event that overruns `end`.
template <typename Source>
SalvageSource::Probe probe_events(Source& src, std::uint64_t end, std::uint64_t max_events,
                                  bool plain, std::uint32_t stack_count) {
  SalvageSource::Probe p;
  p.end_offset = src.offset();
  Ns last_time = 0;
  Event ev;
#if ECOHMEM_CODEC_WIDE_SCAN
  // Scratch for the scan fast path below. Heap-allocated once per probe
  // so the stream-source instantiation (which never uses it) costs
  // nothing and the probe's stack stays small.
  struct ScanScratch {
    codec::detail::ScanChunk chunk;
    std::array<Event, codec::kScanChunk> events;
  };
  std::unique_ptr<ScanScratch> scratch;
  if constexpr (std::is_same_v<Source, codec::ByteReader>) {
    if (!plain && codec::detail::wide_scan_available()) {
      scratch = std::make_unique<ScanScratch>();
    }
  }
#endif
  for (std::uint64_t j = 0; j < max_events;) {
    // Scan fast path (in-memory source, compact codec): stage-1 scan a
    // chunk of events, materialize them to run the full validation the
    // scalar decoder applies (stack references included), and commit
    // wholesale the prefix that stays inside [.., end). Any anomaly
    // falls through to the scalar decode below, which owns the
    // diagnosis — so the probe's result is bitwise what a scalar-only
    // probe reports.
    if constexpr (std::is_same_v<Source, codec::ByteReader>) {
#if ECOHMEM_CODEC_WIDE_SCAN
      if (scratch && src.offset() < end && src.remaining() >= codec::kScanWindowBytes) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(max_events - j, codec::kScanChunk));
        std::size_t used = 0;
        const std::size_t got = codec::detail::scan_compact_chunk(
            src.raw(), src.remaining(), want, last_time, scratch->chunk, used);
        if (got > 0 && codec::detail::materialize_chunk(src.raw(), stack_count, scratch->chunk,
                                                        scratch->events.data())) {
          // Keep only the events that end inside the span (event k's end
          // is event k+1's start; the overrunning tail re-decodes scalar
          // so the overrun diagnosis below stays the scalar one).
          std::size_t m = got;
          while (m > 0 &&
                 src.offset() + (m < got ? scratch->chunk.off[m] : used) > end) {
            --m;
          }
          if (m > 0) {
            if (p.events == 0) p.first_time = scratch->chunk.time[0];
            last_time = scratch->chunk.time[m - 1];
            src.skip(m < got ? scratch->chunk.off[m] : used);
            p.events += m;
            p.end_offset = src.offset();
            j += m;
            continue;
          }
        }
      }
#endif
    }
    const std::uint64_t pos = src.offset();
    if (pos >= end) break;
    ++j;
    const Status s = plain ? codec::decode_event_plain(src, stack_count, ev)
                           : codec::decode_event_compact(src, stack_count, last_time, ev);
    if (!s.ok()) {
      // Re-anchor the codec's error at the event *start*: the mmap and
      // stream sources consume a failing event's bytes differently, and
      // both readers must report an identical manifest for identical
      // bytes (the corruption sweep cross-checks this).
      p.ok = false;
      std::string msg = s.error();
      if (const auto k = msg.rfind(" at offset "); k != std::string::npos) msg.resize(k);
      p.error = msg + " at offset " + std::to_string(pos);
      p.error_offset = pos;
      break;
    }
    if (src.offset() > end) {
      p.ok = false;
      p.error = "event at offset " + std::to_string(pos) + " overruns the block end at offset " +
                std::to_string(end);
      p.error_offset = pos;
      break;
    }
    if (p.events == 0) p.first_time = event_time(ev);
    ++p.events;
    p.end_offset = src.offset();
  }
  return p;
}

/// Shared compressed-block trial decode for both sources. A compressed
/// block decodes all-or-nothing, so on any error the probe reports zero
/// events with the error re-anchored at the block start `begin`: the
/// byte and stream sources consume a failing read differently, and both
/// readers must produce an identical manifest for identical bytes.
template <typename Source>
SalvageSource::Probe probe_compressed_events(Source& src, std::uint64_t end,
                                             std::uint64_t max_events,
                                             std::uint32_t stack_count) {
  SalvageSource::Probe p;
  const std::uint64_t begin = src.offset();
  p.end_offset = begin;
  bool first = true;
  std::uint64_t declared = 0;
  const Status s = codec::decode_compressed_block(
      src, stack_count, max_events, declared, [&p, &first](const Event& ev) {
        if (first) {
          p.first_time = event_time(ev);
          first = false;
        }
        ++p.events;
      });
  const auto fail = [&p, begin](std::string msg) {
    if (const auto k = msg.rfind(" at offset "); k != std::string::npos) msg.resize(k);
    p.ok = false;
    p.error = msg + " at offset " + std::to_string(begin);
    p.error_offset = begin;
    p.end_offset = begin;
    p.events = 0;
  };
  if (!s.ok()) {
    fail(s.error());
  } else if (src.offset() > end) {
    fail("compressed block overruns the block end");
  } else {
    p.end_offset = src.offset();
  }
  return p;
}

/// The salvage classification: manifest plus the kept-block table the
/// readers serve (`first_event_index` renumbered over recovered events
/// only, `first_time` taken from the decoded events, so the index values
/// need not be trusted).
struct SalvagePlan {
  SalvageManifest manifest;
  std::vector<TraceBlockInfo> blocks;
};

/// Classifies a trace for salvage. `index` is the *lenient* footer
/// decode result for v3 traces (its error selects the sequential-scan
/// path); ignored for v1/v2. The header must already have decoded —
/// without its tables nothing is recoverable.
[[nodiscard]] SalvagePlan build_salvage_plan(SalvageSource& source,
                                             const codec::HeaderInfo& header,
                                             std::uint64_t file_size,
                                             const Expected<codec::IndexInfo>& index);

/// Lenient footer/trailer read over a seekable stream — the stream-side
/// twin of codec::decode_index, with the same checks and error strings
/// so both readers classify a damaged index identically.
[[nodiscard]] Expected<codec::IndexInfo> read_index_lenient(std::istream& in,
                                                            std::uint64_t file_size);

}  // namespace ecohmem::trace
