#include "ecohmem/trace/events.hpp"

namespace ecohmem::trace {

Ns event_time(const Event& e) {
  return std::visit([](const auto& ev) { return ev.time; }, e);
}

StackId StackTable::intern(const bom::CallStack& stack) {
  const auto it = index_.find(stack);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<StackId>(stacks_.size());
  stacks_.push_back(stack);
  index_.emplace(stack, id);
  return id;
}

std::uint32_t FunctionTable::intern(const std::string& name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

}  // namespace ecohmem::trace
