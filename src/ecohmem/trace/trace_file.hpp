#pragma once

/// \file trace_file.hpp
/// Binary serialization of traces (the .prv-equivalent on-disk format).
///
/// Common layout (little-endian, no alignment padding):
///   magic "ECOHMTRC" | version u32 | sample_rate f64
///   module table: count u32, then {name, text_size u64, debug_size u64}
///   stack table:  count u32, then {depth u32, {module u32, offset u64}*}
///   function table: count u32, then {name}*
///   event count u64
/// Strings are u32 length + bytes.
///
/// After the header, the event section depends on the version:
///   v1 (plain)   — fixed-width tagged records.
///   v2 (compact) — delta-encoded timestamps + LEB128 varints, one
///                  continuous stream.
///   v3 (indexed) — the v2 codec split into independently-decodable
///                  blocks (the timestamp delta base resets to 0 at each
///                  block boundary), followed by a footer index of
///                  {file_offset u64, event_count u64, first_timestamp u64}
///                  per block and a trailer {entry_count u64,
///                  footer_offset u64, magic "ECOHMIDX"}. The index lets
///                  `TraceReader` (trace_reader.hpp) mmap the file and
///                  decode blocks on demand or in parallel. See
///                  docs/trace_format.md.
///
/// Readers auto-detect the version. The module table travels with the
/// trace so that BOM call stacks remain resolvable in a different
/// process (with different ASLR bases) — the property §VI relies on.

#include <iosfwd>
#include <memory>
#include <string>

#include "ecohmem/bom/module_table.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/trace/events.hpp"

namespace ecohmem::trace {

/// How much of the on-disk trace a bundle actually carries. Strict
/// reads always have full coverage; salvage-mode reads (trace_reader.hpp)
/// may recover fewer events than the file declared, and downstream
/// consumers (analyzer, advisor, lint) gate on this instead of guessing.
struct TraceCoverage {
  std::uint64_t events_seen = 0;      ///< events materialized in the bundle
  std::uint64_t events_declared = 0;  ///< events the trace file declared
  bool salvaged = false;              ///< bundle came from a salvage-mode read

  /// Fraction of declared events present (1.0 when nothing declared).
  [[nodiscard]] double fraction() const {
    if (events_declared == 0) return 1.0;
    return static_cast<double>(events_seen) / static_cast<double>(events_declared);
  }
  /// True for a default-constructed value (loader did not stamp it).
  [[nodiscard]] bool empty() const {
    return events_seen == 0 && events_declared == 0 && !salvaged;
  }
};

/// A trace together with the module table it was captured against.
struct TraceBundle {
  Trace trace;
  bom::ModuleTable modules;
  TraceCoverage coverage;  ///< stamped by the readers; empty() if not
};

struct TraceWriteOptions {
  /// Version-2 compact encoding: event timestamps are delta-encoded and
  /// all integer fields use LEB128 varints (lossless; ~25-50% smaller on
  /// sample-heavy traces, more on allocation-heavy ones).
  bool compact = false;
  /// Version-3 indexed encoding: the compact codec written in
  /// independently-decodable blocks with a footer index (takes
  /// precedence over `compact`). Enables mmap random access, streaming,
  /// and parallel decode via `TraceReader`.
  bool indexed = false;
  /// Events per v3 block. Smaller blocks mean finer-grained random
  /// access and parallelism at a slightly larger index.
  std::uint64_t block_events = 64 * 1024;
  /// Compress v3 block bodies (column streams, flagged per block in the
  /// footer index; see docs/trace_format.md). Requires `indexed`; blocks
  /// stay independently decodable and decode bit-identically. Files
  /// written without this remain byte-identical to the flagless format.
  bool compress = false;
};

/// Serializes `trace` captured against `modules` to a stream.
[[nodiscard]] Status write_trace(std::ostream& out, const Trace& trace,
                                 const bom::ModuleTable& modules,
                                 const TraceWriteOptions& options = {});

/// Deserializes a trace (any version; auto-detected); validates
/// magic/version, stack/module indices, and — for v3 — the footer index.
/// The stream is slurped into memory in large chunks and decoded from
/// there, so even v1/v2 traces avoid per-event stream reads.
[[nodiscard]] Expected<TraceBundle> read_trace(std::istream& in);

/// File-path conveniences.
[[nodiscard]] Status save_trace(const std::string& path, const Trace& trace,
                                const bom::ModuleTable& modules,
                                const TraceWriteOptions& options = {});
[[nodiscard]] Expected<TraceBundle> load_trace(const std::string& path);

/// Incremental v3 writer: appends events one at a time, flushing each
/// completed block to disk, so writing a trace never materializes more
/// than one block (~64K events) in memory. The header tables must be
/// known up front; the header's event count is patched in `finish()`.
///
/// Usage:
///   auto w = TraceBlockWriter::create(path, stacks, functions, modules, rate);
///   for (...) w->add(event);
///   w->finish();
class TraceBlockWriter {
 public:
  static Expected<TraceBlockWriter> create(const std::string& path, const StackTable& stacks,
                                           const FunctionTable& functions,
                                           const bom::ModuleTable& modules,
                                           double sample_rate_hz,
                                           std::uint64_t block_events = 64 * 1024,
                                           bool compress = false);

  TraceBlockWriter(TraceBlockWriter&&) noexcept;
  TraceBlockWriter& operator=(TraceBlockWriter&&) noexcept;
  TraceBlockWriter(const TraceBlockWriter&) = delete;
  TraceBlockWriter& operator=(const TraceBlockWriter&) = delete;
  ~TraceBlockWriter();

  /// Appends one event (must be called in time order, like the profiler
  /// emits). Validates alloc stack references against the header table.
  [[nodiscard]] Status add(const Event& e);

  /// Flushes the final partial block, writes the footer index, and
  /// patches the header event count. The writer is unusable afterwards.
  [[nodiscard]] Status finish();

  [[nodiscard]] std::uint64_t events_written() const;

 private:
  TraceBlockWriter();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ecohmem::trace
