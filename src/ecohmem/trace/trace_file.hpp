#pragma once

/// \file trace_file.hpp
/// Binary serialization of traces (the .prv-equivalent on-disk format).
///
/// Layout (little-endian, no alignment padding):
///   magic "ECOHMTRC" | version u32 | sample_rate f64
///   module table: count u32, then {name, text_size u64, debug_size u64}
///   stack table:  count u32, then {depth u32, {module u32, offset u64}*}
///   function table: count u32, then {name}*
///   events: count u64, then tagged records
/// Strings are u32 length + bytes.
///
/// The module table travels with the trace so that BOM call stacks remain
/// resolvable in a different process (with different ASLR bases) — the
/// property §VI relies on.

#include <iosfwd>
#include <string>

#include "ecohmem/bom/module_table.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/trace/events.hpp"

namespace ecohmem::trace {

/// A trace together with the module table it was captured against.
struct TraceBundle {
  Trace trace;
  bom::ModuleTable modules;
};

struct TraceWriteOptions {
  /// Version-2 compact encoding: event timestamps are delta-encoded and
  /// all integer fields use LEB128 varints (lossless; ~25-50% smaller on
  /// sample-heavy traces, more on allocation-heavy ones). Readers
  /// auto-detect the version.
  bool compact = false;
};

/// Serializes `trace` captured against `modules` to a stream.
[[nodiscard]] Status write_trace(std::ostream& out, const Trace& trace,
                                 const bom::ModuleTable& modules,
                                 const TraceWriteOptions& options = {});

/// Deserializes a trace; validates magic/version and stack/module indices.
[[nodiscard]] Expected<TraceBundle> read_trace(std::istream& in);

/// File-path conveniences.
[[nodiscard]] Status save_trace(const std::string& path, const Trace& trace,
                                const bom::ModuleTable& modules,
                                const TraceWriteOptions& options = {});
[[nodiscard]] Expected<TraceBundle> load_trace(const std::string& path);

}  // namespace ecohmem::trace
