#pragma once

/// \file events.hpp
/// Trace events: the Extrae-equivalent record stream.
///
/// The profiler emits, in simulated-time order:
///   - allocation / reallocation / deallocation events from the
///     instrumented heap routines (size, call-stack id, returned address,
///     timestamp) — §IV-A,
///   - PEBS-like samples: LLC load-miss samples with a data linear
///     address (`MEM_LOAD_RETIRED.L3_MISS` analogue, including access
///     latency, which the paper uses in §VIII-B) and store samples
///     (`MEM_INST_RETIRED.ALL_STORES` analogue) — §V,
///   - phase/function markers so the analyzer can attribute samples to
///     functions (Table VII) and compute bandwidth regions.
///
/// Call stacks are interned once in the trace header (`StackTable`), in
/// BOM form; events reference them by id. This mirrors Extrae's frame
/// translation done at trace time, once per allocation site.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "ecohmem/bom/frame.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem::trace {

/// Interned call-stack id within one trace.
using StackId = std::uint32_t;

inline constexpr StackId kInvalidStack = 0xffffffffu;

/// Heap-routine kinds that the interposer instruments.
enum class AllocKind : std::uint8_t { kMalloc, kCalloc, kRealloc, kPosixMemalign, kNew };

struct AllocEvent {
  Ns time = 0;
  std::uint64_t object_id = 0;  ///< unique per live allocation
  std::uint64_t address = 0;    ///< returned pointer (simulated VA)
  Bytes size = 0;
  StackId stack = kInvalidStack;
  AllocKind kind = AllocKind::kMalloc;
};

struct FreeEvent {
  Ns time = 0;
  std::uint64_t object_id = 0;
};

/// One PEBS sample. `weight` is the number of real events one sample
/// represents (the inverse sampling ratio).
struct SampleEvent {
  Ns time = 0;
  std::uint64_t address = 0;  ///< data linear address
  double weight = 1.0;
  double latency_ns = 0.0;    ///< measured access latency (loads only)
  bool is_store = false;
  std::uint32_t function_id = 0;  ///< function performing the access
};

/// Enter/leave marker for a named function/phase.
struct MarkerEvent {
  Ns time = 0;
  std::uint32_t function_id = 0;
  bool is_enter = true;
};

/// Periodic uncore (IMC) bandwidth reading. Unlike PEBS load samples,
/// these see *all* memory traffic including prefetch fills — the signal
/// behind the bandwidth timelines of Figs. 3/7 and the bandwidth-region
/// classification of the bandwidth-aware algorithm. `period_ns` is the
/// interval the reading covers (ending at `time`).
struct UncoreBwEvent {
  Ns time = 0;
  Ns period_ns = 0;
  double read_gbs = 0.0;
  double write_gbs = 0.0;
};

using Event = std::variant<AllocEvent, FreeEvent, SampleEvent, MarkerEvent, UncoreBwEvent>;

/// Timestamp of any event.
[[nodiscard]] Ns event_time(const Event& e);

/// Interned call stacks (BOM form) for one trace.
class StackTable {
 public:
  /// Returns the id of `stack`, interning it on first sight.
  StackId intern(const bom::CallStack& stack);

  [[nodiscard]] const bom::CallStack& stack(StackId id) const { return stacks_.at(id); }
  [[nodiscard]] std::size_t size() const { return stacks_.size(); }

 private:
  std::vector<bom::CallStack> stacks_;
  std::unordered_map<bom::CallStack, StackId, bom::CallStackHash> index_;
};

/// Interned function names (for markers and sample attribution).
class FunctionTable {
 public:
  std::uint32_t intern(const std::string& name);
  [[nodiscard]] const std::string& name(std::uint32_t id) const { return names_.at(id); }
  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] bool empty() const { return names_.empty(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> index_;
};

/// An in-memory trace: header tables + the time-ordered event stream.
struct Trace {
  StackTable stacks;
  FunctionTable functions;
  std::vector<Event> events;

  /// Sampling period actually used, needed to scale sample weights back
  /// to absolute counts during analysis.
  double sample_rate_hz = 0.0;

  [[nodiscard]] std::size_t event_count() const { return events.size(); }
};

}  // namespace ecohmem::trace
