#include "ecohmem/trace/trace_file.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace ecohmem::trace {

namespace {

constexpr char kMagic[8] = {'E', 'C', 'O', 'H', 'M', 'T', 'R', 'C'};
constexpr std::uint32_t kVersionPlain = 1;
constexpr std::uint32_t kVersionCompact = 2;

// Event tags.
enum : std::uint8_t {
  kTagAlloc = 1,
  kTagFree = 2,
  kTagSample = 3,
  kTagMarker = 4,
  kTagUncore = 5,
};

template <typename T>
void put(std::ostream& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_string(std::ostream& out, const std::string& s) {
  put(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// LEB128 unsigned varint.
void put_varint(std::ostream& out, std::uint64_t v) {
  while (v >= 0x80) {
    const auto byte = static_cast<unsigned char>((v & 0x7f) | 0x80);
    out.put(static_cast<char>(byte));
    v >>= 7;
  }
  out.put(static_cast<char>(v));
}

bool get_varint(std::istream& in, std::uint64_t& v) {
  v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) return false;
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return true;
  }
  return false;  // over-long encoding
}

template <typename T>
bool get(std::istream& in, T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return in.good();
}

bool get_string(std::istream& in, std::string& s) {
  std::uint32_t n = 0;
  if (!get(in, n)) return false;
  if (n > (1u << 20)) return false;  // sanity cap on string length
  s.resize(n);
  in.read(s.data(), n);
  return in.good() || (n == 0 && !in.bad());
}

}  // namespace

Status write_trace(std::ostream& out, const Trace& trace, const bom::ModuleTable& modules,
                   const TraceWriteOptions& options) {
  out.write(kMagic, sizeof(kMagic));
  put(out, options.compact ? kVersionCompact : kVersionPlain);
  put(out, trace.sample_rate_hz);

  put(out, static_cast<std::uint32_t>(modules.size()));
  for (const auto& m : modules.modules()) {
    put_string(out, m.name);
    put(out, static_cast<std::uint64_t>(m.text_size));
    put(out, static_cast<std::uint64_t>(m.debug_info_size));
  }

  put(out, static_cast<std::uint32_t>(trace.stacks.size()));
  for (std::uint32_t i = 0; i < trace.stacks.size(); ++i) {
    const auto& cs = trace.stacks.stack(i);
    put(out, static_cast<std::uint32_t>(cs.frames.size()));
    for (const auto& f : cs.frames) {
      put(out, f.module);
      put(out, f.offset);
    }
  }

  put(out, static_cast<std::uint32_t>(trace.functions.size()));
  for (std::uint32_t i = 0; i < trace.functions.size(); ++i) {
    put_string(out, trace.functions.name(i));
  }

  put(out, static_cast<std::uint64_t>(trace.events.size()));
  if (options.compact) {
    Ns last_time = 0;
    for (const auto& e : trace.events) {
      const Ns now = event_time(e);
      const std::uint64_t delta = now >= last_time ? now - last_time : 0;
      last_time = now;
      if (const auto* a = std::get_if<AllocEvent>(&e)) {
        put(out, static_cast<std::uint8_t>(kTagAlloc));
        put_varint(out, delta);
        put_varint(out, a->object_id);
        put_varint(out, a->address);
        put_varint(out, a->size);
        put_varint(out, a->stack);
        put(out, static_cast<std::uint8_t>(a->kind));
      } else if (const auto* f = std::get_if<FreeEvent>(&e)) {
        put(out, static_cast<std::uint8_t>(kTagFree));
        put_varint(out, delta);
        put_varint(out, f->object_id);
      } else if (const auto* smp = std::get_if<SampleEvent>(&e)) {
        put(out, static_cast<std::uint8_t>(kTagSample));
        put_varint(out, delta);
        put_varint(out, smp->address);
        put(out, smp->weight);
        put(out, smp->latency_ns);
        put(out, static_cast<std::uint8_t>(smp->is_store ? 1 : 0));
        put_varint(out, smp->function_id);
      } else if (const auto* m = std::get_if<MarkerEvent>(&e)) {
        put(out, static_cast<std::uint8_t>(kTagMarker));
        put_varint(out, delta);
        put_varint(out, m->function_id);
        put(out, static_cast<std::uint8_t>(m->is_enter ? 1 : 0));
      } else if (const auto* u = std::get_if<UncoreBwEvent>(&e)) {
        put(out, static_cast<std::uint8_t>(kTagUncore));
        put_varint(out, delta);
        put_varint(out, u->period_ns);
        put(out, u->read_gbs);
        put(out, u->write_gbs);
      }
    }
    if (!out.good()) return unexpected("trace write failed (I/O error)");
    return {};
  }
  for (const auto& e : trace.events) {
    if (const auto* a = std::get_if<AllocEvent>(&e)) {
      put(out, static_cast<std::uint8_t>(kTagAlloc));
      put(out, a->time);
      put(out, a->object_id);
      put(out, a->address);
      put(out, a->size);
      put(out, a->stack);
      put(out, static_cast<std::uint8_t>(a->kind));
    } else if (const auto* f = std::get_if<FreeEvent>(&e)) {
      put(out, static_cast<std::uint8_t>(kTagFree));
      put(out, f->time);
      put(out, f->object_id);
    } else if (const auto* s = std::get_if<SampleEvent>(&e)) {
      put(out, static_cast<std::uint8_t>(kTagSample));
      put(out, s->time);
      put(out, s->address);
      put(out, s->weight);
      put(out, s->latency_ns);
      put(out, static_cast<std::uint8_t>(s->is_store ? 1 : 0));
      put(out, s->function_id);
    } else if (const auto* m = std::get_if<MarkerEvent>(&e)) {
      put(out, static_cast<std::uint8_t>(kTagMarker));
      put(out, m->time);
      put(out, m->function_id);
      put(out, static_cast<std::uint8_t>(m->is_enter ? 1 : 0));
    } else if (const auto* u = std::get_if<UncoreBwEvent>(&e)) {
      put(out, static_cast<std::uint8_t>(kTagUncore));
      put(out, u->time);
      put(out, u->period_ns);
      put(out, u->read_gbs);
      put(out, u->write_gbs);
    }
  }
  if (!out.good()) return unexpected("trace write failed (I/O error)");
  return {};
}

Expected<TraceBundle> read_trace(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return unexpected("not an ecoHMEM trace (bad magic)");
  }
  std::uint32_t version = 0;
  if (!get(in, version) || (version != kVersionPlain && version != kVersionCompact)) {
    return unexpected("unsupported trace version");
  }
  const bool compact = version == kVersionCompact;

  TraceBundle bundle;
  if (!get(in, bundle.trace.sample_rate_hz)) return unexpected("truncated trace header");

  std::uint32_t module_count = 0;
  if (!get(in, module_count)) return unexpected("truncated module table");
  for (std::uint32_t i = 0; i < module_count; ++i) {
    std::string name;
    std::uint64_t text_size = 0;
    std::uint64_t debug_size = 0;
    if (!get_string(in, name) || !get(in, text_size) || !get(in, debug_size)) {
      return unexpected("truncated module table");
    }
    bundle.modules.add_module(std::move(name), text_size, debug_size);
  }

  std::uint32_t stack_count = 0;
  if (!get(in, stack_count)) return unexpected("truncated stack table");
  for (std::uint32_t i = 0; i < stack_count; ++i) {
    std::uint32_t depth = 0;
    if (!get(in, depth) || depth > 1024) return unexpected("corrupt stack table");
    bom::CallStack cs;
    cs.frames.reserve(depth);
    for (std::uint32_t d = 0; d < depth; ++d) {
      bom::Frame f;
      if (!get(in, f.module) || !get(in, f.offset)) return unexpected("truncated stack table");
      if (f.module >= module_count) return unexpected("stack frame references unknown module");
      cs.frames.push_back(f);
    }
    bundle.trace.stacks.intern(cs);
  }

  std::uint32_t fn_count = 0;
  if (!get(in, fn_count)) return unexpected("truncated function table");
  for (std::uint32_t i = 0; i < fn_count; ++i) {
    std::string name;
    if (!get_string(in, name)) return unexpected("truncated function table");
    bundle.trace.functions.intern(name);
  }

  std::uint64_t event_count = 0;
  if (!get(in, event_count)) return unexpected("truncated event stream");
  bundle.trace.events.reserve(event_count);

  if (compact) {
    Ns last_time = 0;
    for (std::uint64_t i = 0; i < event_count; ++i) {
      std::uint8_t tag = 0;
      std::uint64_t delta = 0;
      if (!get(in, tag) || !get_varint(in, delta)) return unexpected("truncated event stream");
      last_time += delta;
      switch (tag) {
        case kTagAlloc: {
          AllocEvent a;
          a.time = last_time;
          std::uint64_t stack = 0;
          std::uint8_t kind = 0;
          if (!get_varint(in, a.object_id) || !get_varint(in, a.address) ||
              !get_varint(in, a.size) || !get_varint(in, stack) || !get(in, kind)) {
            return unexpected("truncated alloc event");
          }
          if (stack >= stack_count) return unexpected("alloc event references unknown stack");
          a.stack = static_cast<StackId>(stack);
          a.kind = static_cast<AllocKind>(kind);
          bundle.trace.events.emplace_back(a);
          break;
        }
        case kTagFree: {
          FreeEvent f;
          f.time = last_time;
          if (!get_varint(in, f.object_id)) return unexpected("truncated free event");
          bundle.trace.events.emplace_back(f);
          break;
        }
        case kTagSample: {
          SampleEvent smp;
          smp.time = last_time;
          std::uint8_t is_store = 0;
          std::uint64_t fn = 0;
          if (!get_varint(in, smp.address) || !get(in, smp.weight) ||
              !get(in, smp.latency_ns) || !get(in, is_store) || !get_varint(in, fn)) {
            return unexpected("truncated sample event");
          }
          smp.is_store = is_store != 0;
          smp.function_id = static_cast<std::uint32_t>(fn);
          bundle.trace.events.emplace_back(smp);
          break;
        }
        case kTagMarker: {
          MarkerEvent m;
          m.time = last_time;
          std::uint64_t fn = 0;
          std::uint8_t is_enter = 0;
          if (!get_varint(in, fn) || !get(in, is_enter)) {
            return unexpected("truncated marker event");
          }
          m.function_id = static_cast<std::uint32_t>(fn);
          m.is_enter = is_enter != 0;
          bundle.trace.events.emplace_back(m);
          break;
        }
        case kTagUncore: {
          UncoreBwEvent u;
          u.time = last_time;
          if (!get_varint(in, u.period_ns) || !get(in, u.read_gbs) || !get(in, u.write_gbs)) {
            return unexpected("truncated uncore event");
          }
          bundle.trace.events.emplace_back(u);
          break;
        }
        default:
          return unexpected("unknown event tag " + std::to_string(tag));
      }
    }
    return bundle;
  }

  for (std::uint64_t i = 0; i < event_count; ++i) {
    std::uint8_t tag = 0;
    if (!get(in, tag)) return unexpected("truncated event stream");
    switch (tag) {
      case kTagAlloc: {
        AllocEvent a;
        std::uint8_t kind = 0;
        if (!get(in, a.time) || !get(in, a.object_id) || !get(in, a.address) ||
            !get(in, a.size) || !get(in, a.stack) || !get(in, kind)) {
          return unexpected("truncated alloc event");
        }
        if (a.stack >= stack_count) return unexpected("alloc event references unknown stack");
        a.kind = static_cast<AllocKind>(kind);
        bundle.trace.events.emplace_back(a);
        break;
      }
      case kTagFree: {
        FreeEvent f;
        if (!get(in, f.time) || !get(in, f.object_id)) return unexpected("truncated free event");
        bundle.trace.events.emplace_back(f);
        break;
      }
      case kTagSample: {
        SampleEvent s;
        std::uint8_t is_store = 0;
        if (!get(in, s.time) || !get(in, s.address) || !get(in, s.weight) ||
            !get(in, s.latency_ns) || !get(in, is_store) || !get(in, s.function_id)) {
          return unexpected("truncated sample event");
        }
        s.is_store = is_store != 0;
        bundle.trace.events.emplace_back(s);
        break;
      }
      case kTagMarker: {
        MarkerEvent m;
        std::uint8_t is_enter = 0;
        if (!get(in, m.time) || !get(in, m.function_id) || !get(in, is_enter)) {
          return unexpected("truncated marker event");
        }
        m.is_enter = is_enter != 0;
        bundle.trace.events.emplace_back(m);
        break;
      }
      case kTagUncore: {
        UncoreBwEvent u;
        if (!get(in, u.time) || !get(in, u.period_ns) || !get(in, u.read_gbs) ||
            !get(in, u.write_gbs)) {
          return unexpected("truncated uncore event");
        }
        bundle.trace.events.emplace_back(u);
        break;
      }
      default:
        return unexpected("unknown event tag " + std::to_string(tag));
    }
  }
  return bundle;
}

Status save_trace(const std::string& path, const Trace& trace, const bom::ModuleTable& modules,
                  const TraceWriteOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return unexpected("cannot open for writing: " + path);
  return write_trace(out, trace, modules, options);
}

Expected<TraceBundle> load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return unexpected("cannot open trace: " + path);
  return read_trace(in);
}

}  // namespace ecohmem::trace
