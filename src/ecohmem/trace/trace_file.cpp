#include "ecohmem/trace/trace_file.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <utility>

#include "ecohmem/trace/codec.hpp"

namespace ecohmem::trace {

namespace {

/// Flush threshold for the write-side string buffer: large enough that
/// stream writes are block-sized, small enough to bound writer memory.
constexpr std::size_t kFlushBytes = 1u << 20;

Status flush_buffer(std::ostream& out, std::string& buf) {
  if (!buf.empty()) {
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    buf.clear();
  }
  if (!out.good()) return unexpected("trace write failed (I/O error)");
  return {};
}

/// Reads the whole stream in large chunks (satellite of the v3 work:
/// even legacy v1/v2 traces are decoded from memory instead of per-event
/// istream reads). A stream that goes bad mid-read is an error — a
/// short buffer would otherwise decode as a silently truncated trace.
Expected<std::string> slurp_stream(std::istream& in) {
  std::string bytes;
  char chunk[256 * 1024];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    bytes.append(chunk, static_cast<std::size_t>(in.gcount()));
  }
  if (in.bad()) {
    return unexpected("stream read error after " + std::to_string(bytes.size()) + " bytes");
  }
  return bytes;
}

Status write_events_v3(std::ostream& out, const Trace& trace, std::uint64_t events_offset,
                       std::uint64_t block_events, bool compress) {
  std::string buf;
  std::vector<codec::IndexEntry> entries;
  std::uint64_t offset = events_offset;
  const std::uint64_t n = trace.events.size();
  // One reservation serves every block: flush_buffer clears the string
  // but keeps its capacity.
  buf.reserve(static_cast<std::size_t>(std::min(block_events, n)) * 17);
  for (std::uint64_t i = 0; i < n;) {
    const std::uint64_t count = std::min(block_events, n - i);
    codec::IndexEntry entry;
    entry.offset = offset;
    entry.count = compress ? (count | codec::kBlockCompressedFlag) : count;
    entry.first_time = event_time(trace.events[i]);
    if (compress) {
      codec::encode_compressed_block(buf, trace.events.data() + i, static_cast<std::size_t>(count));
      i += count;
    } else {
      Ns last_time = 0;  // delta base resets per block: blocks decode independently
      for (std::uint64_t j = 0; j < count; ++j, ++i) {
        codec::encode_event_compact(buf, trace.events[i], last_time);
      }
    }
    offset += buf.size();
    entries.push_back(entry);
    if (Status s = flush_buffer(out, buf); !s.ok()) return s;
  }
  const std::uint64_t footer_offset = offset;
  for (const auto& e : entries) {
    codec::put(buf, e.offset);
    codec::put(buf, e.count);
    codec::put(buf, e.first_time);
  }
  codec::put(buf, static_cast<std::uint64_t>(entries.size()));
  codec::put(buf, footer_offset);
  buf.append(codec::kIndexMagic, sizeof(codec::kIndexMagic));
  return flush_buffer(out, buf);
}

Expected<TraceBundle> decode_trace(const unsigned char* data, std::size_t size) {
  codec::ByteReader r(data, size, 0);
  auto header = codec::decode_header(r);
  if (!header.has_value()) return unexpected(header.error());

  TraceBundle bundle;
  bundle.trace.stacks = std::move(header->stacks);
  bundle.trace.functions = std::move(header->functions);
  bundle.trace.sample_rate_hz = header->sample_rate_hz;
  bundle.modules = std::move(header->modules);
  bundle.coverage.events_seen = header->event_count;
  bundle.coverage.events_declared = header->event_count;
  const auto stack_count = static_cast<std::uint32_t>(bundle.trace.stacks.size());
  // Every event is at least 2 encoded bytes, so a hostile header count
  // cannot make us reserve more than the file could actually hold.
  bundle.trace.events.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(header->event_count, size / 2 + 1)));

  if (header->version == codec::kVersionIndexed) {
    auto index = codec::decode_index(data, size);
    if (!index.has_value()) return unexpected(index.error());
    // The event section must end where the footer begins.
    if (Status s = codec::validate_index(*index, header->events_offset, header->event_count);
        !s.ok()) {
      return unexpected(s.error());
    }
    for (std::size_t b = 0; b < index->entries.size(); ++b) {
      const codec::IndexEntry& entry = index->entries[b];
      const std::uint64_t end =
          b + 1 < index->entries.size() ? index->entries[b + 1].offset : index->footer_offset;
      const std::uint64_t count = entry.count & codec::kBlockCountMask;
      const bool compressed = (entry.count & codec::kBlockCompressedFlag) != 0;
      // Every event costs at least one block byte (tags are one byte in
      // both body encodings), so a hostile count cannot force a large
      // allocation before the decode fails.
      if (count > end - entry.offset) {
        return unexpected("v3 index block " + std::to_string(b) + " declares " +
                          std::to_string(count) + " events in " +
                          std::to_string(end - entry.offset) + " bytes at offset " +
                          std::to_string(entry.offset));
      }
      codec::ByteReader br(data + entry.offset, static_cast<std::size_t>(end - entry.offset),
                           entry.offset);
      const std::size_t base = bundle.trace.events.size();
      if (compressed) {
        std::uint64_t body_events = 0;
        if (Status s = codec::decode_compressed_block(
                br, stack_count, count, body_events,
                [&bundle](const Event& ev) { bundle.trace.events.push_back(ev); });
            !s.ok()) {
          return unexpected(s.error());
        }
        if (body_events != count) {
          return unexpected("v3 index block " + std::to_string(b) + " declares " +
                            std::to_string(count) + " events but its compressed body holds " +
                            std::to_string(body_events) + " at offset " +
                            std::to_string(entry.offset));
        }
      } else {
        bundle.trace.events.resize(base + static_cast<std::size_t>(count));
        Ns last_time = 0;
        if (Status s = codec::decode_compact_events(br, stack_count, last_time,
                                                    bundle.trace.events.data() + base, count);
            !s.ok()) {
          return unexpected(s.error());
        }
      }
      if (count > 0 && event_time(bundle.trace.events[base]) != entry.first_time) {
        return unexpected("v3 index block " + std::to_string(b) +
                          " first timestamp disagrees with its events at offset " +
                          std::to_string(entry.offset));
      }
      if (br.remaining() != 0) {
        return unexpected("v3 index block " + std::to_string(b) + " has " +
                          std::to_string(br.remaining()) + " undecoded bytes at offset " +
                          std::to_string(br.offset()));
      }
    }
    return bundle;
  }

  if (header->version == codec::kVersionCompact) {
    Ns last_time = 0;
    for (std::uint64_t i = 0; i < header->event_count; ++i) {
      Event ev;
      if (Status s = codec::decode_event_compact(r, stack_count, last_time, ev); !s.ok()) {
        return unexpected(s.error());
      }
      bundle.trace.events.push_back(std::move(ev));
    }
    return bundle;
  }

  for (std::uint64_t i = 0; i < header->event_count; ++i) {
    Event ev;
    if (Status s = codec::decode_event_plain(r, stack_count, ev); !s.ok()) {
      return unexpected(s.error());
    }
    bundle.trace.events.push_back(std::move(ev));
  }
  return bundle;
}

}  // namespace

Status write_trace(std::ostream& out, const Trace& trace, const bom::ModuleTable& modules,
                   const TraceWriteOptions& options) {
  const std::uint32_t version = options.indexed  ? codec::kVersionIndexed
                                : options.compact ? codec::kVersionCompact
                                                  : codec::kVersionPlain;
  if (options.compress && version != codec::kVersionIndexed) {
    return unexpected("compressed blocks require the v3 indexed format");
  }
  std::string buf;
  codec::encode_header(buf, trace.stacks, trace.functions, trace.sample_rate_hz, modules,
                       version, trace.events.size());
  const std::uint64_t events_offset = buf.size();
  if (Status s = flush_buffer(out, buf); !s.ok()) return s;

  if (version == codec::kVersionIndexed) {
    return write_events_v3(out, trace, events_offset,
                           std::max<std::uint64_t>(1, options.block_events), options.compress);
  }
  if (version == codec::kVersionCompact) {
    Ns last_time = 0;
    for (const auto& e : trace.events) {
      codec::encode_event_compact(buf, e, last_time);
      if (buf.size() >= kFlushBytes) {
        if (Status s = flush_buffer(out, buf); !s.ok()) return s;
      }
    }
    return flush_buffer(out, buf);
  }
  for (const auto& e : trace.events) {
    codec::encode_event_plain(buf, e);
    if (buf.size() >= kFlushBytes) {
      if (Status s = flush_buffer(out, buf); !s.ok()) return s;
    }
  }
  return flush_buffer(out, buf);
}

Expected<TraceBundle> read_trace(std::istream& in) {
  const Expected<std::string> bytes = slurp_stream(in);
  if (!bytes.has_value()) return unexpected("cannot read trace stream: " + bytes.error());
  return decode_trace(reinterpret_cast<const unsigned char*>(bytes->data()), bytes->size());
}

Status save_trace(const std::string& path, const Trace& trace, const bom::ModuleTable& modules,
                  const TraceWriteOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return unexpected("cannot open for writing: " + path);
  return write_trace(out, trace, modules, options);
}

Expected<TraceBundle> load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return unexpected("cannot open trace: " + path);
  return read_trace(in);
}

// --------------------------------------------------------------------------
// TraceBlockWriter

struct TraceBlockWriter::Impl {
  std::ofstream out;
  std::string buf;
  std::vector<codec::IndexEntry> entries;
  std::uint64_t offset = 0;             ///< bytes flushed to the file so far
  std::uint64_t count_field_offset = 0; ///< where the header's event count lives
  std::uint64_t block_events = 0;
  std::uint64_t in_block = 0;
  std::uint64_t total = 0;
  std::uint32_t stack_count = 0;
  Ns last_time = 0;
  Ns block_first = 0;
  bool compress = false;
  /// Compressed bodies are columnar, so events of the open block are
  /// held back until close_block; empty (and unused) when !compress.
  std::vector<Event> pending;
  bool finished = false;

  Status close_block() {
    if (compress) {
      codec::encode_compressed_block(buf, pending.data(), pending.size());
      pending.clear();
    }
    codec::IndexEntry entry;
    entry.offset = offset;
    entry.count = compress ? (in_block | codec::kBlockCompressedFlag) : in_block;
    entry.first_time = block_first;
    entries.push_back(entry);
    offset += buf.size();
    in_block = 0;
    return flush_buffer(out, buf);
  }
};

TraceBlockWriter::TraceBlockWriter() : impl_(std::make_unique<Impl>()) {}
TraceBlockWriter::TraceBlockWriter(TraceBlockWriter&&) noexcept = default;
TraceBlockWriter& TraceBlockWriter::operator=(TraceBlockWriter&&) noexcept = default;
TraceBlockWriter::~TraceBlockWriter() = default;

Expected<TraceBlockWriter> TraceBlockWriter::create(const std::string& path,
                                                    const StackTable& stacks,
                                                    const FunctionTable& functions,
                                                    const bom::ModuleTable& modules,
                                                    double sample_rate_hz,
                                                    std::uint64_t block_events, bool compress) {
  TraceBlockWriter w;
  Impl& impl = *w.impl_;
  impl.out.open(path, std::ios::binary);
  if (!impl.out) return unexpected("cannot open for writing: " + path);
  impl.block_events = std::max<std::uint64_t>(1, block_events);
  impl.stack_count = static_cast<std::uint32_t>(stacks.size());
  impl.compress = compress;
  // Event count is unknown until finish(); encode 0 and patch it later
  // (it is always the last 8 bytes of the header).
  codec::encode_header(impl.buf, stacks, functions, sample_rate_hz, modules,
                       codec::kVersionIndexed, 0);
  impl.count_field_offset = impl.buf.size() - sizeof(std::uint64_t);
  impl.offset = impl.buf.size();
  if (Status s = flush_buffer(impl.out, impl.buf); !s.ok()) return unexpected(s.error());
  return w;
}

Status TraceBlockWriter::add(const Event& e) {
  Impl& impl = *impl_;
  if (impl.finished) return unexpected("TraceBlockWriter::add after finish");
  if (const auto* a = std::get_if<AllocEvent>(&e)) {
    if (a->stack >= impl.stack_count) {
      return unexpected("alloc event references unknown stack " + std::to_string(a->stack));
    }
  }
  if (impl.in_block == 0) {
    impl.block_first = event_time(e);
    impl.last_time = 0;
  }
  if (impl.compress) {
    impl.pending.push_back(e);
  } else {
    codec::encode_event_compact(impl.buf, e, impl.last_time);
  }
  ++impl.in_block;
  ++impl.total;
  if (impl.in_block == impl.block_events) return impl.close_block();
  return {};
}

Status TraceBlockWriter::finish() {
  Impl& impl = *impl_;
  if (impl.finished) return unexpected("TraceBlockWriter::finish called twice");
  if (impl.in_block > 0) {
    if (Status s = impl.close_block(); !s.ok()) return s;
  }
  const std::uint64_t footer_offset = impl.offset;
  for (const auto& entry : impl.entries) {
    codec::put(impl.buf, entry.offset);
    codec::put(impl.buf, entry.count);
    codec::put(impl.buf, entry.first_time);
  }
  codec::put(impl.buf, static_cast<std::uint64_t>(impl.entries.size()));
  codec::put(impl.buf, footer_offset);
  impl.buf.append(codec::kIndexMagic, sizeof(codec::kIndexMagic));
  if (Status s = flush_buffer(impl.out, impl.buf); !s.ok()) return s;
  impl.out.seekp(static_cast<std::streamoff>(impl.count_field_offset));
  impl.out.write(reinterpret_cast<const char*>(&impl.total), sizeof(impl.total));
  impl.out.flush();
  if (!impl.out.good()) return unexpected("trace write failed (I/O error)");
  impl.finished = true;
  return {};
}

std::uint64_t TraceBlockWriter::events_written() const { return impl_->total; }

}  // namespace ecohmem::trace
