#pragma once

/// \file codec.hpp
/// Internal byte-level codec shared by the trace writer and the readers
/// (trace_file.cpp, trace_reader.cpp). Not part of the public trace API.
///
/// Encoding appends to a `std::string` buffer that the writer flushes to
/// its output stream in large chunks, tracking absolute file offsets
/// itself — no `tellp` round-trips, and the v3 block writer knows every
/// block's offset without seeking.
///
/// Decoding runs over in-memory bytes (`ByteReader`, used for slurped
/// streams and mmapped files) or over a bounded refill buffer pulled
/// from an `std::istream` (`ChunkedStreamReader`, used by the streaming
/// timeline path so peak memory stays flat with trace size). The event
/// and header decoders are templates over that source concept; every
/// error they produce carries the absolute file offset it was detected
/// at, so a truncated or corrupt trace is diagnosable without a hex
/// editor.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <istream>
#include <string>
#include <type_traits>
#include <vector>

#include "ecohmem/bom/module_table.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/trace/events.hpp"

namespace ecohmem::trace::codec {

inline constexpr char kMagic[8] = {'E', 'C', 'O', 'H', 'M', 'T', 'R', 'C'};
inline constexpr char kIndexMagic[8] = {'E', 'C', 'O', 'H', 'M', 'I', 'D', 'X'};
inline constexpr std::uint32_t kVersionPlain = 1;
inline constexpr std::uint32_t kVersionCompact = 2;
inline constexpr std::uint32_t kVersionIndexed = 3;

/// Footer index entry size: {file_offset u64, event_count u64, first_timestamp u64}.
inline constexpr std::size_t kIndexEntryBytes = 24;
/// Trailer size: {entry_count u64, footer_offset u64, index magic (8 bytes)}.
inline constexpr std::size_t kTrailerBytes = 24;
/// Sanity cap on serialized string lengths (module/function names).
inline constexpr std::uint32_t kMaxStringBytes = 1u << 20;
/// Default events per v3 block (~64K, independently decodable).
inline constexpr std::uint64_t kDefaultBlockEvents = 64 * 1024;

// Event tags (shared by all format versions).
enum : std::uint8_t {
  kTagAlloc = 1,
  kTagFree = 2,
  kTagSample = 3,
  kTagMarker = 4,
  kTagUncore = 5,
};

// --------------------------------------------------------------------------
// Encoding: append to a string buffer.

template <typename T>
inline void put(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void put_string(std::string& out, const std::string& s) {
  put(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// LEB128 unsigned varint.
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Fixed-width (v1) event record.
inline void encode_event_plain(std::string& out, const Event& e) {
  if (const auto* a = std::get_if<AllocEvent>(&e)) {
    put(out, static_cast<std::uint8_t>(kTagAlloc));
    put(out, a->time);
    put(out, a->object_id);
    put(out, a->address);
    put(out, a->size);
    put(out, a->stack);
    put(out, static_cast<std::uint8_t>(a->kind));
  } else if (const auto* f = std::get_if<FreeEvent>(&e)) {
    put(out, static_cast<std::uint8_t>(kTagFree));
    put(out, f->time);
    put(out, f->object_id);
  } else if (const auto* s = std::get_if<SampleEvent>(&e)) {
    put(out, static_cast<std::uint8_t>(kTagSample));
    put(out, s->time);
    put(out, s->address);
    put(out, s->weight);
    put(out, s->latency_ns);
    put(out, static_cast<std::uint8_t>(s->is_store ? 1 : 0));
    put(out, s->function_id);
  } else if (const auto* m = std::get_if<MarkerEvent>(&e)) {
    put(out, static_cast<std::uint8_t>(kTagMarker));
    put(out, m->time);
    put(out, m->function_id);
    put(out, static_cast<std::uint8_t>(m->is_enter ? 1 : 0));
  } else if (const auto* u = std::get_if<UncoreBwEvent>(&e)) {
    put(out, static_cast<std::uint8_t>(kTagUncore));
    put(out, u->time);
    put(out, u->period_ns);
    put(out, u->read_gbs);
    put(out, u->write_gbs);
  }
}

/// Compact (v2 codec) event record: delta-encoded timestamp + varint
/// integer fields. `last_time` carries the delta base between calls; the
/// v3 block writer resets it to 0 at each block boundary so blocks decode
/// independently.
inline void encode_event_compact(std::string& out, const Event& e, Ns& last_time) {
  const Ns now = event_time(e);
  const std::uint64_t delta = now >= last_time ? now - last_time : 0;
  last_time = now;
  if (const auto* a = std::get_if<AllocEvent>(&e)) {
    put(out, static_cast<std::uint8_t>(kTagAlloc));
    put_varint(out, delta);
    put_varint(out, a->object_id);
    put_varint(out, a->address);
    put_varint(out, a->size);
    put_varint(out, a->stack);
    put(out, static_cast<std::uint8_t>(a->kind));
  } else if (const auto* f = std::get_if<FreeEvent>(&e)) {
    put(out, static_cast<std::uint8_t>(kTagFree));
    put_varint(out, delta);
    put_varint(out, f->object_id);
  } else if (const auto* s = std::get_if<SampleEvent>(&e)) {
    put(out, static_cast<std::uint8_t>(kTagSample));
    put_varint(out, delta);
    put_varint(out, s->address);
    put(out, s->weight);
    put(out, s->latency_ns);
    put(out, static_cast<std::uint8_t>(s->is_store ? 1 : 0));
    put_varint(out, s->function_id);
  } else if (const auto* m = std::get_if<MarkerEvent>(&e)) {
    put(out, static_cast<std::uint8_t>(kTagMarker));
    put_varint(out, delta);
    put_varint(out, m->function_id);
    put(out, static_cast<std::uint8_t>(m->is_enter ? 1 : 0));
  } else if (const auto* u = std::get_if<UncoreBwEvent>(&e)) {
    put(out, static_cast<std::uint8_t>(kTagUncore));
    put_varint(out, delta);
    put_varint(out, u->period_ns);
    put(out, u->read_gbs);
    put(out, u->write_gbs);
  }
}

// --------------------------------------------------------------------------
// Decoding sources.

/// Bounded cursor over in-memory bytes. `base_offset` is the absolute
/// file offset of `data[0]`, so errors name real file positions even
/// when decoding an mmapped block in the middle of the file.
class ByteReader {
 public:
  ByteReader(const unsigned char* data, std::size_t size, std::uint64_t base_offset)
      : data_(data), size_(size), base_(base_offset) {}

  [[nodiscard]] std::uint64_t offset() const { return base_ + pos_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  bool read(void* out, std::size_t n) {
    if (n > size_ - pos_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  template <typename T>
  bool get(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return read(&v, sizeof(v));
  }

  bool get_varint(std::uint64_t& v) {
    v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= size_) return false;
      const unsigned char c = data_[pos_++];
      v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) return true;
    }
    return false;  // over-long encoding
  }

  bool get_string(std::string& s) {
    std::uint32_t n = 0;
    if (!get(n) || n > kMaxStringBytes || n > size_ - pos_) return false;
    s.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint64_t base_;
};

/// Bounded refill buffer over an `std::istream`: the streaming reader's
/// source. Keeps at most `kChunkBytes` of the file resident, so the
/// timeline path's memory stays flat however large the trace is.
class ChunkedStreamReader {
 public:
  static constexpr std::size_t kChunkBytes = 256 * 1024;

  /// `base_offset` is the absolute file offset the stream is positioned
  /// at, so reported offsets stay absolute after a seek.
  explicit ChunkedStreamReader(std::istream& in, std::uint64_t base_offset = 0)
      : in_(&in), consumed_(base_offset) {
    buffer_.reserve(kChunkBytes);
  }

  [[nodiscard]] std::uint64_t offset() const { return consumed_ + pos_; }

  bool read(void* out, std::size_t n) {
    auto* dst = static_cast<unsigned char*>(out);
    while (n > 0) {
      if (pos_ == buffer_.size() && !refill()) return false;
      const std::size_t take = std::min(n, buffer_.size() - pos_);
      std::memcpy(dst, buffer_.data() + pos_, take);
      pos_ += take;
      dst += take;
      n -= take;
    }
    return true;
  }

  template <typename T>
  bool get(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return read(&v, sizeof(v));
  }

  bool get_varint(std::uint64_t& v) {
    v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ == buffer_.size() && !refill()) return false;
      const unsigned char c = static_cast<unsigned char>(buffer_[pos_++]);
      v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) return true;
    }
    return false;
  }

  bool get_string(std::string& s) {
    std::uint32_t n = 0;
    if (!get(n) || n > kMaxStringBytes) return false;
    s.resize(n);
    return n == 0 || read(s.data(), n);
  }

 private:
  bool refill() {
    consumed_ += buffer_.size();
    buffer_.resize(kChunkBytes);
    in_->read(buffer_.data(), static_cast<std::streamsize>(kChunkBytes));
    buffer_.resize(static_cast<std::size_t>(in_->gcount()));
    pos_ = 0;
    return !buffer_.empty();
  }

  std::istream* in_;
  std::string buffer_;
  std::size_t pos_ = 0;
  std::uint64_t consumed_ = 0;
};

inline Unexpected truncated_at(const char* what, std::uint64_t offset) {
  return unexpected(std::string(what) + " at offset " + std::to_string(offset));
}

// --------------------------------------------------------------------------
// Header codec (shared by all versions).

/// Decoded trace header: everything before the event stream.
struct HeaderInfo {
  std::uint32_t version = 0;
  double sample_rate_hz = 0.0;
  bom::ModuleTable modules;
  StackTable stacks;
  FunctionTable functions;
  std::uint64_t event_count = 0;
  std::uint64_t events_offset = 0;  ///< absolute offset of the first event byte
};

/// Encodes the full header (magic through the trailing event-count u64).
/// The count is the last 8 bytes of the encoded header, which lets the
/// streaming block writer patch it in place once the final count is known.
inline void encode_header(std::string& out, const StackTable& stacks,
                          const FunctionTable& functions, double sample_rate_hz,
                          const bom::ModuleTable& modules, std::uint32_t version,
                          std::uint64_t event_count) {
  out.append(kMagic, sizeof(kMagic));
  put(out, version);
  put(out, sample_rate_hz);

  put(out, static_cast<std::uint32_t>(modules.size()));
  for (const auto& m : modules.modules()) {
    put_string(out, m.name);
    put(out, static_cast<std::uint64_t>(m.text_size));
    put(out, static_cast<std::uint64_t>(m.debug_info_size));
  }

  put(out, static_cast<std::uint32_t>(stacks.size()));
  for (std::uint32_t i = 0; i < stacks.size(); ++i) {
    const auto& cs = stacks.stack(i);
    put(out, static_cast<std::uint32_t>(cs.frames.size()));
    for (const auto& f : cs.frames) {
      put(out, f.module);
      put(out, f.offset);
    }
  }

  put(out, static_cast<std::uint32_t>(functions.size()));
  for (std::uint32_t i = 0; i < functions.size(); ++i) {
    put_string(out, functions.name(i));
  }

  put(out, event_count);
}

template <typename Source>
Expected<HeaderInfo> decode_header(Source& src) {
  char magic[8];
  if (!src.read(magic, sizeof(magic)) || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return unexpected("not an ecoHMEM trace (bad magic)");
  }
  HeaderInfo h;
  if (!src.get(h.version) ||
      (h.version != kVersionPlain && h.version != kVersionCompact &&
       h.version != kVersionIndexed)) {
    return unexpected("unsupported trace version");
  }
  if (!src.get(h.sample_rate_hz)) return truncated_at("truncated trace header", src.offset());

  std::uint32_t module_count = 0;
  if (!src.get(module_count)) return truncated_at("truncated module table", src.offset());
  for (std::uint32_t i = 0; i < module_count; ++i) {
    std::string name;
    std::uint64_t text_size = 0;
    std::uint64_t debug_size = 0;
    if (!src.get_string(name) || !src.get(text_size) || !src.get(debug_size)) {
      return truncated_at("truncated module table", src.offset());
    }
    h.modules.add_module(std::move(name), text_size, debug_size);
  }

  std::uint32_t stack_count = 0;
  if (!src.get(stack_count)) return truncated_at("truncated stack table", src.offset());
  for (std::uint32_t i = 0; i < stack_count; ++i) {
    std::uint32_t depth = 0;
    if (!src.get(depth) || depth > 1024) {
      return truncated_at("corrupt stack table", src.offset());
    }
    bom::CallStack cs;
    cs.frames.reserve(depth);
    for (std::uint32_t d = 0; d < depth; ++d) {
      bom::Frame f;
      if (!src.get(f.module) || !src.get(f.offset)) {
        return truncated_at("truncated stack table", src.offset());
      }
      if (f.module >= module_count) {
        return truncated_at("stack frame references unknown module", src.offset());
      }
      cs.frames.push_back(f);
    }
    h.stacks.intern(cs);
  }

  std::uint32_t fn_count = 0;
  if (!src.get(fn_count)) return truncated_at("truncated function table", src.offset());
  for (std::uint32_t i = 0; i < fn_count; ++i) {
    std::string name;
    if (!src.get_string(name)) return truncated_at("truncated function table", src.offset());
    h.functions.intern(name);
  }

  if (!src.get(h.event_count)) return truncated_at("truncated event stream", src.offset());
  h.events_offset = src.offset();
  return h;
}

// --------------------------------------------------------------------------
// Event decoders. `stack_count` bounds alloc stack references.

template <typename Source>
Status decode_event_plain(Source& src, std::uint32_t stack_count, Event& out) {
  std::uint8_t tag = 0;
  if (!src.get(tag)) return truncated_at("truncated event stream", src.offset());
  switch (tag) {
    case kTagAlloc: {
      AllocEvent a;
      std::uint8_t kind = 0;
      if (!src.get(a.time) || !src.get(a.object_id) || !src.get(a.address) ||
          !src.get(a.size) || !src.get(a.stack) || !src.get(kind)) {
        return truncated_at("truncated alloc event", src.offset());
      }
      if (a.stack >= stack_count) {
        return truncated_at("alloc event references unknown stack", src.offset());
      }
      a.kind = static_cast<AllocKind>(kind);
      out = a;
      return {};
    }
    case kTagFree: {
      FreeEvent f;
      if (!src.get(f.time) || !src.get(f.object_id)) {
        return truncated_at("truncated free event", src.offset());
      }
      out = f;
      return {};
    }
    case kTagSample: {
      SampleEvent s;
      std::uint8_t is_store = 0;
      if (!src.get(s.time) || !src.get(s.address) || !src.get(s.weight) ||
          !src.get(s.latency_ns) || !src.get(is_store) || !src.get(s.function_id)) {
        return truncated_at("truncated sample event", src.offset());
      }
      s.is_store = is_store != 0;
      out = s;
      return {};
    }
    case kTagMarker: {
      MarkerEvent m;
      std::uint8_t is_enter = 0;
      if (!src.get(m.time) || !src.get(m.function_id) || !src.get(is_enter)) {
        return truncated_at("truncated marker event", src.offset());
      }
      m.is_enter = is_enter != 0;
      out = m;
      return {};
    }
    case kTagUncore: {
      UncoreBwEvent u;
      if (!src.get(u.time) || !src.get(u.period_ns) || !src.get(u.read_gbs) ||
          !src.get(u.write_gbs)) {
        return truncated_at("truncated uncore event", src.offset());
      }
      out = u;
      return {};
    }
    default:
      return truncated_at(("unknown event tag " + std::to_string(tag)).c_str(), src.offset());
  }
}

template <typename Source>
Status decode_event_compact(Source& src, std::uint32_t stack_count, Ns& last_time, Event& out) {
  std::uint8_t tag = 0;
  std::uint64_t delta = 0;
  if (!src.get(tag) || !src.get_varint(delta)) {
    return truncated_at("truncated event stream", src.offset());
  }
  last_time += delta;
  switch (tag) {
    case kTagAlloc: {
      AllocEvent a;
      a.time = last_time;
      std::uint64_t stack = 0;
      std::uint8_t kind = 0;
      if (!src.get_varint(a.object_id) || !src.get_varint(a.address) ||
          !src.get_varint(a.size) || !src.get_varint(stack) || !src.get(kind)) {
        return truncated_at("truncated alloc event", src.offset());
      }
      if (stack >= stack_count) {
        return truncated_at("alloc event references unknown stack", src.offset());
      }
      a.stack = static_cast<StackId>(stack);
      a.kind = static_cast<AllocKind>(kind);
      out = a;
      return {};
    }
    case kTagFree: {
      FreeEvent f;
      f.time = last_time;
      if (!src.get_varint(f.object_id)) return truncated_at("truncated free event", src.offset());
      out = f;
      return {};
    }
    case kTagSample: {
      SampleEvent s;
      s.time = last_time;
      std::uint8_t is_store = 0;
      std::uint64_t fn = 0;
      if (!src.get_varint(s.address) || !src.get(s.weight) || !src.get(s.latency_ns) ||
          !src.get(is_store) || !src.get_varint(fn)) {
        return truncated_at("truncated sample event", src.offset());
      }
      s.is_store = is_store != 0;
      s.function_id = static_cast<std::uint32_t>(fn);
      out = s;
      return {};
    }
    case kTagMarker: {
      MarkerEvent m;
      m.time = last_time;
      std::uint64_t fn = 0;
      std::uint8_t is_enter = 0;
      if (!src.get_varint(fn) || !src.get(is_enter)) {
        return truncated_at("truncated marker event", src.offset());
      }
      m.function_id = static_cast<std::uint32_t>(fn);
      m.is_enter = is_enter != 0;
      out = m;
      return {};
    }
    case kTagUncore: {
      UncoreBwEvent u;
      u.time = last_time;
      if (!src.get_varint(u.period_ns) || !src.get(u.read_gbs) || !src.get(u.write_gbs)) {
        return truncated_at("truncated uncore event", src.offset());
      }
      out = u;
      return {};
    }
    default:
      return truncated_at(("unknown event tag " + std::to_string(tag)).c_str(), src.offset());
  }
}

// --------------------------------------------------------------------------
// Footer index codec (v3).

struct IndexEntry {
  std::uint64_t offset = 0;      ///< absolute file offset of the block's first byte
  std::uint64_t count = 0;       ///< events in the block
  std::uint64_t first_time = 0;  ///< timestamp of the block's first event
};

struct IndexInfo {
  std::vector<IndexEntry> entries;
  std::uint64_t footer_offset = 0;  ///< where the index entries begin
  std::uint64_t file_size = 0;
};

/// Structurally decodes the footer index of a v3 trace: trailer magic,
/// entry count, footer offset, then the entries. Deliberately lenient
/// about the *values* (monotonicity, bounds, count sums) — the strict
/// readers call `validate_index` on top, while the `trace-v3-index` lint
/// rule re-checks the raw values so it can report every violation.
inline Expected<IndexInfo> decode_index(const unsigned char* data, std::size_t size) {
  if (size < kTrailerBytes) {
    return truncated_at("v3 trace too small for index trailer", size);
  }
  const unsigned char* trailer = data + size - kTrailerBytes;
  if (std::memcmp(trailer + 16, kIndexMagic, sizeof(kIndexMagic)) != 0) {
    return truncated_at("missing v3 index trailer magic", size - 8);
  }
  IndexInfo info;
  info.file_size = size;
  std::uint64_t entry_count = 0;
  std::memcpy(&entry_count, trailer, 8);
  std::memcpy(&info.footer_offset, trailer + 8, 8);
  const std::uint64_t trailer_offset = size - kTrailerBytes;
  if (info.footer_offset > trailer_offset) {
    return truncated_at("v3 footer offset points past the index trailer", size - 16);
  }
  const std::uint64_t index_bytes = trailer_offset - info.footer_offset;
  if (entry_count * kIndexEntryBytes != index_bytes) {
    return unexpected("v3 index claims " + std::to_string(entry_count) + " entries but spans " +
                      std::to_string(index_bytes) + " bytes at offset " +
                      std::to_string(info.footer_offset));
  }
  info.entries.reserve(static_cast<std::size_t>(entry_count));
  ByteReader r(data + info.footer_offset, static_cast<std::size_t>(index_bytes),
               info.footer_offset);
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    IndexEntry e;
    if (!r.get(e.offset) || !r.get(e.count) || !r.get(e.first_time)) {
      return truncated_at("truncated v3 index entry", r.offset());
    }
    info.entries.push_back(e);
  }
  return info;
}

/// Strict index validation used by the readers before trusting any block
/// offset: offsets monotonically increasing and in-bounds, per-block
/// counts non-zero and summing to the header total, timestamps
/// non-decreasing across blocks.
inline Status validate_index(const IndexInfo& info, std::uint64_t events_offset,
                             std::uint64_t header_event_count) {
  std::uint64_t total = 0;
  std::uint64_t prev_end = events_offset;
  std::uint64_t prev_time = 0;
  for (std::size_t i = 0; i < info.entries.size(); ++i) {
    const IndexEntry& e = info.entries[i];
    if (e.offset != prev_end) {
      return unexpected("v3 index block " + std::to_string(i) + " starts at offset " +
                        std::to_string(e.offset) + ", expected " + std::to_string(prev_end));
    }
    if (e.offset >= info.footer_offset) {
      return unexpected("v3 index block " + std::to_string(i) + " offset " +
                        std::to_string(e.offset) + " points past the event section end " +
                        std::to_string(info.footer_offset));
    }
    if (e.count == 0) {
      return unexpected("v3 index block " + std::to_string(i) + " is empty at offset " +
                        std::to_string(e.offset));
    }
    if (i > 0 && e.first_time < prev_time) {
      return unexpected("v3 index block " + std::to_string(i) + " first timestamp " +
                        std::to_string(e.first_time) + "ns precedes block " +
                        std::to_string(i - 1) + " at " + std::to_string(prev_time) + "ns");
    }
    prev_time = e.first_time;
    // Block end is the next block's offset (or the footer); enforced by
    // the chaining check above on the next iteration.
    prev_end = i + 1 < info.entries.size() ? info.entries[i + 1].offset : info.footer_offset;
    if (prev_end <= e.offset) {
      return unexpected("v3 index block " + std::to_string(i) + " has non-positive byte size at "
                        "offset " + std::to_string(e.offset));
    }
    total += e.count;
  }
  if (!info.entries.empty() && info.entries.front().offset != events_offset) {
    return unexpected("v3 index first block offset " +
                      std::to_string(info.entries.front().offset) +
                      " does not match the event section start " + std::to_string(events_offset));
  }
  if (info.entries.empty() && info.footer_offset != events_offset) {
    return unexpected("v3 trace has no index blocks but a non-empty event section at offset " +
                      std::to_string(events_offset));
  }
  if (total != header_event_count) {
    return unexpected("v3 index event counts sum to " + std::to_string(total) +
                      " but the header declares " + std::to_string(header_event_count) +
                      " (index at offset " + std::to_string(info.footer_offset) + ")");
  }
  return {};
}

}  // namespace ecohmem::trace::codec
