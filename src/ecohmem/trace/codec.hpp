#pragma once

/// \file codec.hpp
/// Internal byte-level codec shared by the trace writer and the readers
/// (trace_file.cpp, trace_reader.cpp). Not part of the public trace API.
///
/// Encoding appends to a `std::string` buffer that the writer flushes to
/// its output stream in large chunks, tracking absolute file offsets
/// itself — no `tellp` round-trips, and the v3 block writer knows every
/// block's offset without seeking.
///
/// Decoding runs over in-memory bytes (`ByteReader`, used for slurped
/// streams and mmapped files) or over a bounded refill buffer pulled
/// from an `std::istream` (`ChunkedStreamReader`, used by the streaming
/// timeline path so peak memory stays flat with trace size). The event
/// and header decoders are templates over that source concept; every
/// error they produce carries the absolute file offset it was detected
/// at, so a truncated or corrupt trace is diagnosable without a hex
/// editor.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <istream>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "ecohmem/bom/module_table.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/trace/events.hpp"

namespace ecohmem::trace::codec {

inline constexpr char kMagic[8] = {'E', 'C', 'O', 'H', 'M', 'T', 'R', 'C'};
inline constexpr char kIndexMagic[8] = {'E', 'C', 'O', 'H', 'M', 'I', 'D', 'X'};
inline constexpr std::uint32_t kVersionPlain = 1;
inline constexpr std::uint32_t kVersionCompact = 2;
inline constexpr std::uint32_t kVersionIndexed = 3;

/// Footer index entry size: {file_offset u64, event_count u64, first_timestamp u64}.
inline constexpr std::size_t kIndexEntryBytes = 24;
/// Trailer size: {entry_count u64, footer_offset u64, index magic (8 bytes)}.
inline constexpr std::size_t kTrailerBytes = 24;
/// Sanity cap on serialized string lengths (module/function names).
inline constexpr std::uint32_t kMaxStringBytes = 1u << 20;
/// Default events per v3 block (~64K, independently decodable).
inline constexpr std::uint64_t kDefaultBlockEvents = 64 * 1024;

/// Bit 63 of a v3 index entry's count field marks the block body as
/// compressed (column streams, see encode_compressed_block). Stealing a
/// count bit keeps uncompressed v3 files byte-identical to the flagless
/// format; real counts are bounded by the file size, so the bit is free.
inline constexpr std::uint64_t kBlockCompressedFlag = 1ull << 63;
inline constexpr std::uint64_t kBlockCountMask = kBlockCompressedFlag - 1;
/// First byte of a compressed block body. 0xEC is not a valid event tag,
/// so a sequential scan (salvage without an index) can tell a compressed
/// block from a v2 event stream by its first byte.
inline constexpr std::uint8_t kCompressedBlockMagic = 0xEC;
inline constexpr std::uint8_t kCompressedLayoutVersion = 1;

/// Upper bound on one compact-encoded event: tag (1) + up to five 10-byte
/// varints + a flag byte. The fast decoder's window bounds check relies
/// on this.
inline constexpr std::size_t kMaxCompactEventBytes = 52;
/// Events per chunk in the two-stage scan/materialize fast decode path.
inline constexpr std::size_t kScanChunk = 512;
/// Stage-1 scan window: the scanner classifies 64 bytes with two AVX2
/// compares and only scans events that start with a whole window of
/// readable bytes (every compact event fits, see kMaxCompactEventBytes).
inline constexpr std::size_t kScanWindowBytes = 64;
static_assert(kMaxCompactEventBytes <= kScanWindowBytes);

// Event tags (shared by all format versions).
enum : std::uint8_t {
  kTagAlloc = 1,
  kTagFree = 2,
  kTagSample = 3,
  kTagMarker = 4,
  kTagUncore = 5,
};

// --------------------------------------------------------------------------
// Encoding: append to a string buffer.

template <typename T>
inline void put(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void put_string(std::string& out, const std::string& s) {
  put(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// LEB128 unsigned varint.
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Fixed-width (v1) event record.
inline void encode_event_plain(std::string& out, const Event& e) {
  if (const auto* a = std::get_if<AllocEvent>(&e)) {
    put(out, static_cast<std::uint8_t>(kTagAlloc));
    put(out, a->time);
    put(out, a->object_id);
    put(out, a->address);
    put(out, a->size);
    put(out, a->stack);
    put(out, static_cast<std::uint8_t>(a->kind));
  } else if (const auto* f = std::get_if<FreeEvent>(&e)) {
    put(out, static_cast<std::uint8_t>(kTagFree));
    put(out, f->time);
    put(out, f->object_id);
  } else if (const auto* s = std::get_if<SampleEvent>(&e)) {
    put(out, static_cast<std::uint8_t>(kTagSample));
    put(out, s->time);
    put(out, s->address);
    put(out, s->weight);
    put(out, s->latency_ns);
    put(out, static_cast<std::uint8_t>(s->is_store ? 1 : 0));
    put(out, s->function_id);
  } else if (const auto* m = std::get_if<MarkerEvent>(&e)) {
    put(out, static_cast<std::uint8_t>(kTagMarker));
    put(out, m->time);
    put(out, m->function_id);
    put(out, static_cast<std::uint8_t>(m->is_enter ? 1 : 0));
  } else if (const auto* u = std::get_if<UncoreBwEvent>(&e)) {
    put(out, static_cast<std::uint8_t>(kTagUncore));
    put(out, u->time);
    put(out, u->period_ns);
    put(out, u->read_gbs);
    put(out, u->write_gbs);
  }
}

namespace detail {

/// LEB128 emit into a raw buffer; returns one past the last byte written.
/// Same byte sequence as put_varint, without the per-byte push_back.
inline char* emit_varint(char* p, std::uint64_t v) {
  while (v >= 0x80) {
    *p++ = static_cast<char>((v & 0x7f) | 0x80);
    v >>= 7;
  }
  *p++ = static_cast<char>(v);
  return p;
}

template <typename T>
inline char* emit(char* p, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(p, &v, sizeof(v));
  return p + sizeof(v);
}

}  // namespace detail

/// Compact (v2 codec) event record: delta-encoded timestamp + varint
/// integer fields. `last_time` carries the delta base between calls; the
/// v3 block writer resets it to 0 at each block boundary so blocks decode
/// independently. Encodes through a fixed stack buffer and appends once —
/// the bytes are identical to the historical per-byte appends, only the
/// `std::string` bookkeeping per field is gone.
inline void encode_event_compact(std::string& out, const Event& e, Ns& last_time) {
  const Ns now = event_time(e);
  const std::uint64_t delta = now >= last_time ? now - last_time : 0;
  last_time = now;
  char buf[kMaxCompactEventBytes];
  char* p = buf;
  if (const auto* a = std::get_if<AllocEvent>(&e)) {
    *p++ = static_cast<char>(kTagAlloc);
    p = detail::emit_varint(p, delta);
    p = detail::emit_varint(p, a->object_id);
    p = detail::emit_varint(p, a->address);
    p = detail::emit_varint(p, a->size);
    p = detail::emit_varint(p, a->stack);
    *p++ = static_cast<char>(static_cast<std::uint8_t>(a->kind));
  } else if (const auto* f = std::get_if<FreeEvent>(&e)) {
    *p++ = static_cast<char>(kTagFree);
    p = detail::emit_varint(p, delta);
    p = detail::emit_varint(p, f->object_id);
  } else if (const auto* s = std::get_if<SampleEvent>(&e)) {
    *p++ = static_cast<char>(kTagSample);
    p = detail::emit_varint(p, delta);
    p = detail::emit_varint(p, s->address);
    p = detail::emit(p, s->weight);
    p = detail::emit(p, s->latency_ns);
    *p++ = static_cast<char>(s->is_store ? 1 : 0);
    p = detail::emit_varint(p, s->function_id);
  } else if (const auto* m = std::get_if<MarkerEvent>(&e)) {
    *p++ = static_cast<char>(kTagMarker);
    p = detail::emit_varint(p, delta);
    p = detail::emit_varint(p, m->function_id);
    *p++ = static_cast<char>(m->is_enter ? 1 : 0);
  } else if (const auto* u = std::get_if<UncoreBwEvent>(&e)) {
    *p++ = static_cast<char>(kTagUncore);
    p = detail::emit_varint(p, delta);
    p = detail::emit_varint(p, u->period_ns);
    p = detail::emit(p, u->read_gbs);
    p = detail::emit(p, u->write_gbs);
  }
  out.append(buf, static_cast<std::size_t>(p - buf));
}

// --------------------------------------------------------------------------
// Decoding sources.

/// Bounded cursor over in-memory bytes. `base_offset` is the absolute
/// file offset of `data[0]`, so errors name real file positions even
/// when decoding an mmapped block in the middle of the file.
class ByteReader {
 public:
  ByteReader(const unsigned char* data, std::size_t size, std::uint64_t base_offset)
      : data_(data), size_(size), base_(base_offset) {}

  [[nodiscard]] std::uint64_t offset() const { return base_ + pos_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  bool read(void* out, std::size_t n) {
    if (n > size_ - pos_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  template <typename T>
  bool get(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return read(&v, sizeof(v));
  }

  bool get_varint(std::uint64_t& v) {
    v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= size_) return false;
      const unsigned char c = data_[pos_++];
      v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) return true;
    }
    return false;  // over-long encoding
  }

  bool get_string(std::string& s) {
    std::uint32_t n = 0;
    if (!get(n) || n > kMaxStringBytes || n > size_ - pos_) return false;
    s.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  /// Raw cursor for the batch fast path. The caller owns the bounds
  /// proof: it may only dereference bytes it has checked via remaining(),
  /// and `skip` must not pass the end.
  [[nodiscard]] const unsigned char* raw() const { return data_ + pos_; }
  void skip(std::size_t n) { pos_ += n; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint64_t base_;
};

/// Bounded refill buffer over an `std::istream`: the streaming reader's
/// source. Keeps at most `kChunkBytes` of the file resident, so the
/// timeline path's memory stays flat however large the trace is.
class ChunkedStreamReader {
 public:
  static constexpr std::size_t kChunkBytes = 256 * 1024;

  /// `base_offset` is the absolute file offset the stream is positioned
  /// at, so reported offsets stay absolute after a seek.
  explicit ChunkedStreamReader(std::istream& in, std::uint64_t base_offset = 0)
      : in_(&in), consumed_(base_offset) {
    buffer_.reserve(kChunkBytes);
  }

  [[nodiscard]] std::uint64_t offset() const { return consumed_ + pos_; }

  bool read(void* out, std::size_t n) {
    auto* dst = static_cast<unsigned char*>(out);
    while (n > 0) {
      if (pos_ == buffer_.size() && !refill()) return false;
      const std::size_t take = std::min(n, buffer_.size() - pos_);
      std::memcpy(dst, buffer_.data() + pos_, take);
      pos_ += take;
      dst += take;
      n -= take;
    }
    return true;
  }

  template <typename T>
  bool get(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return read(&v, sizeof(v));
  }

  bool get_varint(std::uint64_t& v) {
    v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ == buffer_.size() && !refill()) return false;
      const unsigned char c = static_cast<unsigned char>(buffer_[pos_++]);
      v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) return true;
    }
    return false;
  }

  bool get_string(std::string& s) {
    std::uint32_t n = 0;
    if (!get(n) || n > kMaxStringBytes) return false;
    s.resize(n);
    return n == 0 || read(s.data(), n);
  }

 private:
  bool refill() {
    consumed_ += buffer_.size();
    buffer_.resize(kChunkBytes);
    in_->read(buffer_.data(), static_cast<std::streamsize>(kChunkBytes));
    buffer_.resize(static_cast<std::size_t>(in_->gcount()));
    pos_ = 0;
    return !buffer_.empty();
  }

  std::istream* in_;
  std::string buffer_;
  std::size_t pos_ = 0;
  std::uint64_t consumed_ = 0;
};

inline Unexpected truncated_at(const char* what, std::uint64_t offset) {
  return unexpected(std::string(what) + " at offset " + std::to_string(offset));
}

// --------------------------------------------------------------------------
// Header codec (shared by all versions).

/// Decoded trace header: everything before the event stream.
struct HeaderInfo {
  std::uint32_t version = 0;
  double sample_rate_hz = 0.0;
  bom::ModuleTable modules;
  StackTable stacks;
  FunctionTable functions;
  std::uint64_t event_count = 0;
  std::uint64_t events_offset = 0;  ///< absolute offset of the first event byte
};

/// Encodes the full header (magic through the trailing event-count u64).
/// The count is the last 8 bytes of the encoded header, which lets the
/// streaming block writer patch it in place once the final count is known.
inline void encode_header(std::string& out, const StackTable& stacks,
                          const FunctionTable& functions, double sample_rate_hz,
                          const bom::ModuleTable& modules, std::uint32_t version,
                          std::uint64_t event_count) {
  out.append(kMagic, sizeof(kMagic));
  put(out, version);
  put(out, sample_rate_hz);

  put(out, static_cast<std::uint32_t>(modules.size()));
  for (const auto& m : modules.modules()) {
    put_string(out, m.name);
    put(out, static_cast<std::uint64_t>(m.text_size));
    put(out, static_cast<std::uint64_t>(m.debug_info_size));
  }

  put(out, static_cast<std::uint32_t>(stacks.size()));
  for (std::uint32_t i = 0; i < stacks.size(); ++i) {
    const auto& cs = stacks.stack(i);
    put(out, static_cast<std::uint32_t>(cs.frames.size()));
    for (const auto& f : cs.frames) {
      put(out, f.module);
      put(out, f.offset);
    }
  }

  put(out, static_cast<std::uint32_t>(functions.size()));
  for (std::uint32_t i = 0; i < functions.size(); ++i) {
    put_string(out, functions.name(i));
  }

  put(out, event_count);
}

template <typename Source>
Expected<HeaderInfo> decode_header(Source& src) {
  char magic[8];
  if (!src.read(magic, sizeof(magic)) || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return unexpected("not an ecoHMEM trace (bad magic)");
  }
  HeaderInfo h;
  if (!src.get(h.version) ||
      (h.version != kVersionPlain && h.version != kVersionCompact &&
       h.version != kVersionIndexed)) {
    return unexpected("unsupported trace version");
  }
  if (!src.get(h.sample_rate_hz)) return truncated_at("truncated trace header", src.offset());

  std::uint32_t module_count = 0;
  if (!src.get(module_count)) return truncated_at("truncated module table", src.offset());
  for (std::uint32_t i = 0; i < module_count; ++i) {
    std::string name;
    std::uint64_t text_size = 0;
    std::uint64_t debug_size = 0;
    if (!src.get_string(name) || !src.get(text_size) || !src.get(debug_size)) {
      return truncated_at("truncated module table", src.offset());
    }
    h.modules.add_module(std::move(name), text_size, debug_size);
  }

  std::uint32_t stack_count = 0;
  if (!src.get(stack_count)) return truncated_at("truncated stack table", src.offset());
  for (std::uint32_t i = 0; i < stack_count; ++i) {
    std::uint32_t depth = 0;
    if (!src.get(depth) || depth > 1024) {
      return truncated_at("corrupt stack table", src.offset());
    }
    bom::CallStack cs;
    cs.frames.reserve(depth);
    for (std::uint32_t d = 0; d < depth; ++d) {
      bom::Frame f;
      if (!src.get(f.module) || !src.get(f.offset)) {
        return truncated_at("truncated stack table", src.offset());
      }
      if (f.module >= module_count) {
        return truncated_at("stack frame references unknown module", src.offset());
      }
      cs.frames.push_back(f);
    }
    h.stacks.intern(cs);
  }

  std::uint32_t fn_count = 0;
  if (!src.get(fn_count)) return truncated_at("truncated function table", src.offset());
  for (std::uint32_t i = 0; i < fn_count; ++i) {
    std::string name;
    if (!src.get_string(name)) return truncated_at("truncated function table", src.offset());
    h.functions.intern(name);
  }

  if (!src.get(h.event_count)) return truncated_at("truncated event stream", src.offset());
  h.events_offset = src.offset();
  return h;
}

// --------------------------------------------------------------------------
// Event decoders. `stack_count` bounds alloc stack references.

template <typename Source>
Status decode_event_plain(Source& src, std::uint32_t stack_count, Event& out) {
  std::uint8_t tag = 0;
  if (!src.get(tag)) return truncated_at("truncated event stream", src.offset());
  switch (tag) {
    case kTagAlloc: {
      AllocEvent a;
      std::uint8_t kind = 0;
      if (!src.get(a.time) || !src.get(a.object_id) || !src.get(a.address) ||
          !src.get(a.size) || !src.get(a.stack) || !src.get(kind)) {
        return truncated_at("truncated alloc event", src.offset());
      }
      if (a.stack >= stack_count) {
        return truncated_at("alloc event references unknown stack", src.offset());
      }
      a.kind = static_cast<AllocKind>(kind);
      out = a;
      return {};
    }
    case kTagFree: {
      FreeEvent f;
      if (!src.get(f.time) || !src.get(f.object_id)) {
        return truncated_at("truncated free event", src.offset());
      }
      out = f;
      return {};
    }
    case kTagSample: {
      SampleEvent s;
      std::uint8_t is_store = 0;
      if (!src.get(s.time) || !src.get(s.address) || !src.get(s.weight) ||
          !src.get(s.latency_ns) || !src.get(is_store) || !src.get(s.function_id)) {
        return truncated_at("truncated sample event", src.offset());
      }
      s.is_store = is_store != 0;
      out = s;
      return {};
    }
    case kTagMarker: {
      MarkerEvent m;
      std::uint8_t is_enter = 0;
      if (!src.get(m.time) || !src.get(m.function_id) || !src.get(is_enter)) {
        return truncated_at("truncated marker event", src.offset());
      }
      m.is_enter = is_enter != 0;
      out = m;
      return {};
    }
    case kTagUncore: {
      UncoreBwEvent u;
      if (!src.get(u.time) || !src.get(u.period_ns) || !src.get(u.read_gbs) ||
          !src.get(u.write_gbs)) {
        return truncated_at("truncated uncore event", src.offset());
      }
      out = u;
      return {};
    }
    default:
      return truncated_at(("unknown event tag " + std::to_string(tag)).c_str(), src.offset());
  }
}

template <typename Source>
Status decode_event_compact(Source& src, std::uint32_t stack_count, Ns& last_time, Event& out) {
  std::uint8_t tag = 0;
  std::uint64_t delta = 0;
  if (!src.get(tag) || !src.get_varint(delta)) {
    return truncated_at("truncated event stream", src.offset());
  }
  last_time += delta;
  switch (tag) {
    case kTagAlloc: {
      AllocEvent a;
      a.time = last_time;
      std::uint64_t stack = 0;
      std::uint8_t kind = 0;
      if (!src.get_varint(a.object_id) || !src.get_varint(a.address) ||
          !src.get_varint(a.size) || !src.get_varint(stack) || !src.get(kind)) {
        return truncated_at("truncated alloc event", src.offset());
      }
      if (stack >= stack_count) {
        return truncated_at("alloc event references unknown stack", src.offset());
      }
      a.stack = static_cast<StackId>(stack);
      a.kind = static_cast<AllocKind>(kind);
      out = a;
      return {};
    }
    case kTagFree: {
      FreeEvent f;
      f.time = last_time;
      if (!src.get_varint(f.object_id)) return truncated_at("truncated free event", src.offset());
      out = f;
      return {};
    }
    case kTagSample: {
      SampleEvent s;
      s.time = last_time;
      std::uint8_t is_store = 0;
      std::uint64_t fn = 0;
      if (!src.get_varint(s.address) || !src.get(s.weight) || !src.get(s.latency_ns) ||
          !src.get(is_store) || !src.get_varint(fn)) {
        return truncated_at("truncated sample event", src.offset());
      }
      s.is_store = is_store != 0;
      s.function_id = static_cast<std::uint32_t>(fn);
      out = s;
      return {};
    }
    case kTagMarker: {
      MarkerEvent m;
      m.time = last_time;
      std::uint64_t fn = 0;
      std::uint8_t is_enter = 0;
      if (!src.get_varint(fn) || !src.get(is_enter)) {
        return truncated_at("truncated marker event", src.offset());
      }
      m.function_id = static_cast<std::uint32_t>(fn);
      m.is_enter = is_enter != 0;
      out = m;
      return {};
    }
    case kTagUncore: {
      UncoreBwEvent u;
      u.time = last_time;
      if (!src.get_varint(u.period_ns) || !src.get(u.read_gbs) || !src.get(u.write_gbs)) {
        return truncated_at("truncated uncore event", src.offset());
      }
      out = u;
      return {};
    }
    default:
      return truncated_at(("unknown event tag " + std::to_string(tag)).c_str(), src.offset());
  }
}

// --------------------------------------------------------------------------
// Two-stage batch decode fast path (compact codec, in-memory sources only).
//
// The scalar decoder above pays two taxes the format forces on it: one
// unpredictable branch per event (the tag dispatch — kinds interleave
// randomly in real traces, so it mispredicts constantly) and a serial
// byte-at-a-time varint loop. The fast path splits decoding so neither
// lands in a hot loop:
//
//  Stage 1 — scan (scan_compact_chunk). Two AVX2 compares turn a
//  64-byte window into a terminator bitmap (bit b set = byte b has its
//  varint continuation bit clear). Each event's byte length is then
//  computed arithmetically from the first few terminator positions,
//  with the five kinds' candidate lengths combined by mask selects, so
//  the random tag sequence costs no mispredicts. The timestamp delta —
//  the one varint every kind shares — is extracted with pext during
//  the scan. The scan records per-event offsets, delta lengths,
//  resolved timestamps and a per-kind index list.
//
//  Stage 2 — materialize (materialize_chunk). Each kind's events are
//  walked as a uniform run off the index lists (no tag dispatch),
//  payload varints load branch-free as single 8-byte extracts, and the
//  Event variants are written at their stream positions.
//
// Any anomaly — a varint longer than 8 bytes (legal at 9 or 10), an
// unknown tag, an out-of-table stack reference, an event too close to
// the readable end for a whole window — hands the affected region back
// to decode_event_compact, so the fast path stays bitwise-identical to
// a scalar decode including error text and offsets
// (tests/trace/test_codec_batch.cpp flips every byte of a stream to
// prove it). The wide path needs AVX2+BMI2 and is selected by a
// runtime CPU check; other hosts decode scalar.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ECOHMEM_CODEC_WIDE_SCAN 1
#endif

#if ECOHMEM_CODEC_WIDE_SCAN
#include <immintrin.h>
#endif

namespace detail {

/// Stage-1 output for one chunk of up to kScanChunk events. `off` and
/// `dlen` locate each event and its delta varint relative to the chunk
/// base, `time` is the resolved absolute timestamp, and `kind_idx[tag]`
/// lists the stream indices of that kind's events in order.
struct ScanChunk {
  std::uint32_t off[kScanChunk];
  std::uint8_t dlen[kScanChunk];
  std::uint64_t time[kScanChunk];
  std::uint16_t kind_idx[kTagUncore + 1][kScanChunk];
  std::uint32_t kind_count[kTagUncore + 1];
};

#if ECOHMEM_CODEC_WIDE_SCAN

inline bool wide_scan_available() {
  static const bool ok = __builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi") &&
                         __builtin_cpu_supports("bmi2");
  return ok;
}

__attribute__((target("avx2,bmi,bmi2"), always_inline)) inline std::uint64_t scan_load64(
    const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Computes the byte length of the event at `ev` from the terminator
/// bitmap `stops` (bit b set = ev[b] ends a varint), extracting the
/// timestamp delta on the way. Returns 0 when the event cannot be
/// proven well-formed from the window alone — a delta varint longer
/// than 8 bytes, an unknown tag, or a length past kMaxCompactEventBytes
/// — which sends the caller to the scalar decoder. Boundary positions
/// are terminator-derived, so the returned length is exact even when a
/// *payload* varint is over-long; stage 2 rejects those separately.
__attribute__((target("avx2,bmi,bmi2"), always_inline)) inline unsigned scan_compact_event(
    const unsigned char* ev, std::uint64_t stops, unsigned tag, unsigned& dlen,
    std::uint64_t& delta) {
  const std::uint64_t s = stops >> 1;  // terminator positions relative to ev + 1
  const unsigned sel1 = static_cast<unsigned>(_tzcnt_u64(s));
  if (sel1 >= 8) return 0;  // delta varint longer than 8 bytes (or absent)
  const unsigned sel2 = static_cast<unsigned>(_tzcnt_u64(s & (s - 1)));
  const unsigned sel5 = static_cast<unsigned>(_tzcnt_u64(_pdep_u64(16, s)));
  const std::uint64_t dv = scan_load64(ev + 1) & (~0ull >> (56 - 8 * sel1));
  delta = _pext_u64(dv, 0x7f7f7f7f7f7f7f7full);
  dlen = sel1 + 1;
  // Candidate end offsets for all five kinds, selected branch-free. The
  // first terminators are always varint ends: every fixed-width payload
  // byte (doubles, flag bytes) sits *after* the varints it could shadow.
  const unsigned fnpos = 1 + sel2 + 18;  // sample: address, doubles, store byte
  const unsigned lf = static_cast<unsigned>(_tzcnt_u64(stops >> (fnpos & 63)));
  const unsigned e_alloc = 1 + sel5 + 2;
  const unsigned e_free = 1 + sel2 + 1;
  const unsigned e_sample = fnpos + lf + 1;
  const unsigned e_marker = 1 + sel2 + 2;
  const unsigned e_uncore = 1 + sel2 + 17;
  const unsigned end = (e_alloc & -static_cast<unsigned>(tag == kTagAlloc)) |
                       (e_free & -static_cast<unsigned>(tag == kTagFree)) |
                       (e_sample & -static_cast<unsigned>(tag == kTagSample)) |
                       (e_marker & -static_cast<unsigned>(tag == kTagMarker)) |
                       (e_uncore & -static_cast<unsigned>(tag == kTagUncore));
  // One unsigned compare rejects both end == 0 (bad tag) and lengths a
  // valid event can never have (a missing terminator saturates tzcnt at
  // 64, so a window-spanning event always lands here).
  if (end - 1 > kMaxCompactEventBytes - 1) return 0;
  return end;
}

/// Stage 1: scans up to `want` (<= kScanChunk) events at `base`,
/// filling `c` and reporting the bytes they span in `used`. Every
/// scanned event starts with a whole 64-byte window readable, which is
/// what lets stage 2 use unconditional 8-byte loads. The running
/// timestamp enters as `t0`; `c.time[got - 1]` is the caller's next
/// base. Stops early (without error) at the first event it cannot
/// prove well-formed — the caller decodes that one scalar and retries.
__attribute__((target("avx2,bmi,bmi2"))) inline std::size_t scan_compact_chunk(
    const unsigned char* base, std::size_t avail, std::size_t want, std::uint64_t t0,
    ScanChunk& c, std::size_t& used) {
  for (unsigned k = 0; k <= kTagUncore; ++k) c.kind_count[k] = 0;
  std::size_t i = 0;
  std::size_t pos = 0;
  std::uint64_t t = t0;
  while (i < want && pos + kScanWindowBytes <= avail) {
    const unsigned char* ev = base + pos;
    const __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ev));
    const __m256i hi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ev + 32));
    const std::uint64_t cont =
        static_cast<std::uint32_t>(_mm256_movemask_epi8(lo)) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(_mm256_movemask_epi8(hi))) << 32);
    const std::uint64_t stops = ~cont;
    unsigned dlen = 0;
    std::uint64_t delta = 0;
    const unsigned end1 = scan_compact_event(ev, stops, ev[0], dlen, delta);
    if (end1 == 0) break;
    const unsigned tag = ev[0];
    c.off[i] = static_cast<std::uint32_t>(pos);
    c.dlen[i] = static_cast<std::uint8_t>(dlen);
    t += delta;
    c.time[i] = t;
    c.kind_idx[tag][c.kind_count[tag]++] = static_cast<std::uint16_t>(i);
    ++i;
    if (i >= want) {
      pos += end1;
      break;
    }
    // A second event from the same window costs only a bitmap shift.
    // Accept it only when both events fit the 64 bytes (the shifted
    // bitmap is exact in that case) and the second event still has a
    // whole window for stage 2's loads.
    const unsigned tag2 = ev[end1];
    unsigned dlen2 = 0;
    std::uint64_t delta2 = 0;
    const unsigned end2 = scan_compact_event(ev + end1, stops >> end1, tag2, dlen2, delta2);
    if (end2 != 0 && end1 + end2 <= kScanWindowBytes &&
        pos + end1 + kScanWindowBytes <= avail) {
      c.off[i] = static_cast<std::uint32_t>(pos + end1);
      c.dlen[i] = static_cast<std::uint8_t>(dlen2);
      t += delta2;
      c.time[i] = t;
      c.kind_idx[tag2][c.kind_count[tag2]++] = static_cast<std::uint16_t>(i);
      ++i;
      pos += end1 + static_cast<std::size_t>(end2);
    } else {
      pos += end1;
    }
  }
  used = pos;
  return i;
}

/// Branch-free varint extract: one 8-byte load, terminator found with
/// tzcnt, payload bits compacted with pext. Advances `p` past the
/// varint. Varints longer than 8 bytes (legal encodings the single
/// load cannot cover) set `bad`; the value is then garbage and the
/// caller falls back to the scalar decoder for the whole region.
__attribute__((target("avx2,bmi,bmi2"), always_inline)) inline std::uint64_t extract_varint(
    const unsigned char*& p, bool& bad) {
  const std::uint64_t raw = scan_load64(p);
  const std::uint64_t stop = ~raw & 0x8080808080808080ull;
  bad |= stop == 0;
  const unsigned len = ((static_cast<unsigned>(_tzcnt_u64(stop)) & 63) >> 3) + 1;
  p += len;
  return _pext_u64(raw & (~0ull >> (64 - 8 * len)), 0x7f7f7f7f7f7f7f7full);
}

/// Stage 2: materializes the `c.kind_count` events scanned into `c`
/// from their payload bytes, writing each Event at its stream position
/// in `out`. Returns false when any payload needs the scalar decoder
/// (an over-long varint, an out-of-table stack); `out` may then hold
/// partial garbage and the caller re-decodes the region scalar.
__attribute__((target("avx2,bmi,bmi2"))) inline bool materialize_chunk(
    const unsigned char* base, std::uint32_t stack_count, const ScanChunk& c, Event* out) {
  // Slots are assigned whole Event temporaries: assigning the bare
  // alternative would go through the variant's converting assignment,
  // which branches on the slot's previous (effectively random) index.
  bool bad = false;
  for (std::uint32_t j = 0; j < c.kind_count[kTagAlloc]; ++j) {
    const std::size_t i = c.kind_idx[kTagAlloc][j];
    const unsigned char* q = base + c.off[i] + 1 + c.dlen[i];
    AllocEvent a;
    a.time = c.time[i];
    a.object_id = extract_varint(q, bad);
    a.address = extract_varint(q, bad);
    a.size = extract_varint(q, bad);
    const std::uint64_t stack = extract_varint(q, bad);
    bad |= stack >= stack_count;
    a.stack = static_cast<StackId>(stack);
    a.kind = static_cast<AllocKind>(*q);
    out[i] = Event{a};
  }
  for (std::uint32_t j = 0; j < c.kind_count[kTagFree]; ++j) {
    const std::size_t i = c.kind_idx[kTagFree][j];
    const unsigned char* q = base + c.off[i] + 1 + c.dlen[i];
    FreeEvent f;
    f.time = c.time[i];
    f.object_id = extract_varint(q, bad);
    out[i] = Event{f};
  }
  for (std::uint32_t j = 0; j < c.kind_count[kTagSample]; ++j) {
    const std::size_t i = c.kind_idx[kTagSample][j];
    const unsigned char* q = base + c.off[i] + 1 + c.dlen[i];
    SampleEvent smp;
    smp.time = c.time[i];
    smp.address = extract_varint(q, bad);
    std::memcpy(&smp.weight, q, sizeof(double));
    std::memcpy(&smp.latency_ns, q + 8, sizeof(double));
    smp.is_store = q[16] != 0;
    q += 17;
    smp.function_id = static_cast<std::uint32_t>(extract_varint(q, bad));
    out[i] = Event{smp};
  }
  for (std::uint32_t j = 0; j < c.kind_count[kTagMarker]; ++j) {
    const std::size_t i = c.kind_idx[kTagMarker][j];
    const unsigned char* q = base + c.off[i] + 1 + c.dlen[i];
    MarkerEvent m;
    m.time = c.time[i];
    m.function_id = static_cast<std::uint32_t>(extract_varint(q, bad));
    m.is_enter = *q != 0;
    out[i] = Event{m};
  }
  for (std::uint32_t j = 0; j < c.kind_count[kTagUncore]; ++j) {
    const std::size_t i = c.kind_idx[kTagUncore][j];
    const unsigned char* q = base + c.off[i] + 1 + c.dlen[i];
    UncoreBwEvent u;
    u.time = c.time[i];
    u.period_ns = extract_varint(q, bad);
    std::memcpy(&u.read_gbs, q, sizeof(double));
    std::memcpy(&u.write_gbs, q + 8, sizeof(double));
    out[i] = Event{u};
  }
  return !bad;
}

#endif  // ECOHMEM_CODEC_WIDE_SCAN

}  // namespace detail

/// Decodes exactly `n` compact events from `src`, bitwise-identical to
/// `n` sequential decode_event_compact calls — same events, same
/// `last_time` evolution, and on corrupt input the same error text and
/// offset (the scalar decoder owns every diagnosis). The fast path
/// engages while a whole scan window remains; the block tail and any
/// region the scanner or materializer cannot prove clean decode scalar.
inline Status decode_compact_events(ByteReader& src, std::uint32_t stack_count, Ns& last_time,
                                    Event* out, std::uint64_t n) {
#if ECOHMEM_CODEC_WIDE_SCAN
  if (detail::wide_scan_available()) {
    detail::ScanChunk chunk;
    std::uint64_t i = 0;
    while (i < n) {
      const std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(n - i, kScanChunk));
      std::size_t used = 0;
      std::size_t got = 0;
      if (src.remaining() >= kScanWindowBytes) {
        got = detail::scan_compact_chunk(src.raw(), src.remaining(), want, last_time, chunk, used);
      }
      if (got > 0) {
        if (detail::materialize_chunk(src.raw(), stack_count, chunk, out + i)) {
          last_time = chunk.time[got - 1];
          src.skip(used);
          i += got;
          continue;
        }
        // A payload only the scalar decoder handles (a legal 9/10-byte
        // varint, an out-of-table stack): re-decode the whole chunk
        // region scalar so any error is exactly the scalar decoder's.
        for (std::size_t k = 0; k < want; ++k, ++i) {
          if (Status st = decode_event_compact(src, stack_count, last_time, out[i]); !st.ok()) {
            return st;
          }
        }
        continue;
      }
      // Block tail, or an event the scanner cannot prove well-formed at
      // the chunk start: one scalar event guarantees progress, then the
      // fast path retries.
      if (Status st = decode_event_compact(src, stack_count, last_time, out[i]); !st.ok()) {
        return st;
      }
      ++i;
    }
    return {};
  }
#endif
  for (std::uint64_t i = 0; i < n; ++i) {
    if (Status st = decode_event_compact(src, stack_count, last_time, out[i]); !st.ok()) {
      return st;
    }
  }
  return {};
}

// --------------------------------------------------------------------------
// Compressed block codec (v3, opt-in per block via kBlockCompressedFlag).
//
// A compressed block body replaces the v2 event stream with column
// streams: the tag sequence, then every field as a bit-packed u64 column
// grouped by event kind (values appear in stream order within their
// kind). Doubles are bit-reversed before packing — profiling weights and
// latencies are quantized, so their low mantissa bits are zero and the
// reversed values pack narrow. The block stays independently decodable:
// the delta-timestamp base resets to 0 exactly as in uncompressed v3
// blocks, so decoding yields bit-identical events.
//
// Body layout (normative; docs/trace_format.md):
//   u8  magic           0xEC (never a valid event tag)
//   u8  layout version  1
//   varint n_events
//   u8[n_events] tags   (per-kind counts are derived from these)
//   packed column: time deltas (all events, stream order)
//   packed columns per kind, each over that kind's events in order:
//     alloc:  object_id, address, size, stack, kind
//     free:   object_id
//     sample: address, bitrev(weight), bitrev(latency_ns), is_store,
//             function_id
//     marker: function_id, is_enter
//     uncore: period_ns, bitrev(read_gbs), bitrev(write_gbs)
//   packed column: u8 bit width (0-64), then ceil(n*width/8) bytes of
//   width-bit values packed LSB-first.

namespace detail {

inline std::uint64_t bitrev64(std::uint64_t v) {
  v = ((v >> 1) & 0x5555555555555555ull) | ((v & 0x5555555555555555ull) << 1);
  v = ((v >> 2) & 0x3333333333333333ull) | ((v & 0x3333333333333333ull) << 2);
  v = ((v >> 4) & 0x0f0f0f0f0f0f0f0full) | ((v & 0x0f0f0f0f0f0f0f0full) << 4);
  v = ((v >> 8) & 0x00ff00ff00ff00ffull) | ((v & 0x00ff00ff00ff00ffull) << 8);
  v = ((v >> 16) & 0x0000ffff0000ffffull) | ((v & 0x0000ffff0000ffffull) << 16);
  return (v >> 32) | (v << 32);
}

inline std::uint64_t double_to_packed(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bitrev64(bits);
}

inline double packed_to_double(std::uint64_t v) {
  const std::uint64_t bits = bitrev64(v);
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace detail

/// Appends a bit-packed u64 column: u8 width, then the values LSB-first.
inline void put_packed_column(std::string& out, const std::uint64_t* vals, std::size_t n) {
  unsigned width = 0;
  for (std::size_t i = 0; i < n; ++i) {
    while (width < 64 && (vals[i] >> width) != 0) ++width;
  }
  out.push_back(static_cast<char>(width));
  if (width == 0 || n == 0) return;
  unsigned __int128 acc = 0;
  unsigned nbits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc |= static_cast<unsigned __int128>(vals[i]) << nbits;
    nbits += width;
    while (nbits >= 8) {
      out.push_back(static_cast<char>(static_cast<unsigned char>(acc & 0xff)));
      acc >>= 8;
      nbits -= 8;
    }
  }
  if (nbits > 0) out.push_back(static_cast<char>(static_cast<unsigned char>(acc & 0xff)));
}

/// Reads a bit-packed u64 column of `n` values. Consumes exactly
/// 1 + ceil(n*width/8) bytes; `scratch` is reused across columns.
///
/// Each value is extracted with one unaligned 8-byte load at its bit
/// offset (plus one spill byte for the 64-bit-at-odd-offset case) — no
/// carried accumulator, so the loop has no cross-iteration dependency
/// and no per-byte branch. `scratch` is padded so the loads never read
/// past the buffer.
template <typename Source>
bool get_packed_column(Source& src, std::uint64_t n, std::vector<std::uint64_t>& out,
                       std::vector<unsigned char>& scratch) {
  std::uint8_t width = 0;
  if (!src.get(width) || width > 64) return false;
  if (width == 0 || n == 0) {
    out.assign(static_cast<std::size_t>(n), 0);
    return true;
  }
  const std::uint64_t nbytes = (n * width + 7) / 8;
  scratch.resize(static_cast<std::size_t>(nbytes) + 8);
  if (!src.read(scratch.data(), static_cast<std::size_t>(nbytes))) return false;
  out.resize(static_cast<std::size_t>(n));
  const std::uint64_t mask = width == 64 ? ~0ull : (1ull << width) - 1;
  const unsigned char* p = scratch.data();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t bitpos = i * width;
    const std::uint64_t byte = bitpos >> 3;
    const unsigned sh = static_cast<unsigned>(bitpos & 7);
    std::uint64_t w;
    std::memcpy(&w, p + byte, sizeof(w));
    // The ninth byte contributes the top `sh` bits of a 64-bit-wide
    // read; the double shift keeps sh == 0 well-defined.
    const std::uint64_t spill = p[byte + 8];
    out[static_cast<std::size_t>(i)] = ((w >> sh) | ((spill << 1) << (63 - sh))) & mask;
  }
  return true;
}

namespace detail {

/// Bit-packed column view used by the fused block decoder: value `j`
/// is extracted with one unaligned 8-byte load at its bit offset plus
/// one spill byte, exactly like get_packed_column, but straight out of
/// the source bytes — no intermediate u64 vector. `p` must stay
/// dereferenceable 8 bytes past the packed payload (the zero-copy
/// opener below proves that bound or falls back to an owned copy).
struct PackedCursor {
  const unsigned char* p = nullptr;
  unsigned width = 0;
  std::uint64_t mask = 0;

  [[nodiscard]] std::uint64_t at(std::uint64_t j) const {
    const std::uint64_t bitpos = j * width;
    const std::uint64_t byte = bitpos >> 3;
    const unsigned sh = static_cast<unsigned>(bitpos & 7);
    std::uint64_t w;
    std::memcpy(&w, p + byte, sizeof(w));
    // The ninth byte contributes the top `sh` bits of a 64-bit-wide
    // read; the double shift keeps sh == 0 well-defined.
    const std::uint64_t spill = p[byte + 8];
    return ((w >> sh) | ((spill << 1) << (63 - sh))) & mask;
  }
};

/// Backing bytes for zero-width columns: at() always lands on offset 0
/// and masks to zero, so no per-call width branch is needed.
inline constexpr unsigned char kZeroColumn[16] = {};

/// Parses one packed column header and positions a cursor over its
/// payload. Generic sources copy the payload into an owned buffer with
/// the 8 spill bytes zeroed; the ByteReader overload serves the bytes
/// in place whenever the buffer extends 8 bytes past the column (true
/// for every column except a file's final one). Byte consumption and
/// failure behavior match get_packed_column exactly.
template <typename Source>
bool open_packed_column(Source& src, std::uint64_t n, PackedCursor& c,
                        std::vector<std::unique_ptr<unsigned char[]>>& own) {
  std::uint8_t width = 0;
  if (!src.get(width) || width > 64) return false;
  if (width == 0 || n == 0) {
    c.p = kZeroColumn;
    c.width = 0;
    c.mask = 0;
    return true;
  }
  const std::uint64_t nbytes = (n * width + 7) / 8;
  auto buf = std::make_unique<unsigned char[]>(static_cast<std::size_t>(nbytes) + 8);
  if (!src.read(buf.get(), static_cast<std::size_t>(nbytes))) return false;
  std::memset(buf.get() + nbytes, 0, 8);
  c.p = buf.get();
  c.width = width;
  c.mask = width == 64 ? ~0ull : (1ull << width) - 1;
  own.push_back(std::move(buf));
  return true;
}

inline bool open_packed_column(ByteReader& src, std::uint64_t n, PackedCursor& c,
                               std::vector<std::unique_ptr<unsigned char[]>>& own) {
  std::uint8_t width = 0;
  if (!src.get(width) || width > 64) return false;
  if (width == 0 || n == 0) {
    c.p = kZeroColumn;
    c.width = 0;
    c.mask = 0;
    return true;
  }
  const std::uint64_t nbytes = (n * width + 7) / 8;
  if (nbytes > src.remaining()) return false;
  c.width = width;
  c.mask = width == 64 ? ~0ull : (1ull << width) - 1;
  if (src.remaining() >= nbytes + 8) {
    c.p = src.raw();
    src.skip(static_cast<std::size_t>(nbytes));
    return true;
  }
  auto buf = std::make_unique<unsigned char[]>(static_cast<std::size_t>(nbytes) + 8);
  src.read(buf.get(), static_cast<std::size_t>(nbytes));
  std::memset(buf.get() + nbytes, 0, 8);
  c.p = buf.get();
  own.push_back(std::move(buf));
  return true;
}

}  // namespace detail

/// Encodes `n` events as one compressed block body (see layout above).
/// Lossless: decoding yields events bit-identical to the v2 compact
/// codec's decode of the same stream, including the delta clamp for
/// non-monotonic timestamps.
inline void encode_compressed_block(std::string& out, const Event* events, std::size_t n) {
  out.push_back(static_cast<char>(kCompressedBlockMagic));
  out.push_back(static_cast<char>(kCompressedLayoutVersion));
  put_varint(out, n);

  std::vector<std::uint64_t> deltas;
  deltas.reserve(n);
  // Per-kind field columns, stream order within each kind.
  std::vector<std::uint64_t> a_id, a_addr, a_size, a_stack, a_kind;
  std::vector<std::uint64_t> f_id;
  std::vector<std::uint64_t> s_addr, s_weight, s_lat, s_store, s_fn;
  std::vector<std::uint64_t> m_fn, m_enter;
  std::vector<std::uint64_t> u_period, u_read, u_write;

  Ns last_time = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Event& e = events[i];
    const Ns now = event_time(e);
    deltas.push_back(now >= last_time ? now - last_time : 0);
    last_time = now;
    if (const auto* a = std::get_if<AllocEvent>(&e)) {
      out.push_back(static_cast<char>(kTagAlloc));
      a_id.push_back(a->object_id);
      a_addr.push_back(a->address);
      a_size.push_back(a->size);
      a_stack.push_back(a->stack);
      a_kind.push_back(static_cast<std::uint8_t>(a->kind));
    } else if (const auto* f = std::get_if<FreeEvent>(&e)) {
      out.push_back(static_cast<char>(kTagFree));
      f_id.push_back(f->object_id);
    } else if (const auto* smp = std::get_if<SampleEvent>(&e)) {
      out.push_back(static_cast<char>(kTagSample));
      s_addr.push_back(smp->address);
      s_weight.push_back(detail::double_to_packed(smp->weight));
      s_lat.push_back(detail::double_to_packed(smp->latency_ns));
      s_store.push_back(smp->is_store ? 1 : 0);
      s_fn.push_back(smp->function_id);
    } else if (const auto* m = std::get_if<MarkerEvent>(&e)) {
      out.push_back(static_cast<char>(kTagMarker));
      m_fn.push_back(m->function_id);
      m_enter.push_back(m->is_enter ? 1 : 0);
    } else if (const auto* u = std::get_if<UncoreBwEvent>(&e)) {
      out.push_back(static_cast<char>(kTagUncore));
      u_period.push_back(u->period_ns);
      u_read.push_back(detail::double_to_packed(u->read_gbs));
      u_write.push_back(detail::double_to_packed(u->write_gbs));
    }
  }

  const auto put_col = [&out](const std::vector<std::uint64_t>& v) {
    put_packed_column(out, v.data(), v.size());
  };
  put_col(deltas);
  put_col(a_id);
  put_col(a_addr);
  put_col(a_size);
  put_col(a_stack);
  put_col(a_kind);
  put_col(f_id);
  put_col(s_addr);
  put_col(s_weight);
  put_col(s_lat);
  put_col(s_store);
  put_col(s_fn);
  put_col(m_fn);
  put_col(m_enter);
  put_col(u_period);
  put_col(u_read);
  put_col(u_write);
}

namespace detail {

/// Shared body of the compressed-block decoders: parses the header,
/// tag sequence and columns, then materializes every event into the
/// `n` writable slots `prepare(n)` returns. The merge runs per kind —
/// a counting sort of the tag sequence yields each kind's stream
/// positions, so the hot loops have no per-event tag dispatch — and
/// writes each Event at its stream position. Decoding is all-or-
/// nothing: on error nothing is delivered (`prepare` may have run).
template <typename Source, typename Prepare>
Status decode_compressed_block_impl(Source& src, std::uint32_t stack_count,
                                    std::uint64_t max_events, std::uint64_t& n_events,
                                    Prepare&& prepare) {
  const std::uint64_t body_offset = src.offset();
  std::uint8_t magic = 0;
  std::uint8_t layout = 0;
  if (!src.get(magic) || magic != kCompressedBlockMagic) {
    return truncated_at("not a compressed block (bad magic)", body_offset);
  }
  if (!src.get(layout) || layout != kCompressedLayoutVersion) {
    return truncated_at("unsupported compressed block layout", src.offset());
  }
  std::uint64_t n = 0;
  if (!src.get_varint(n)) {
    return truncated_at("truncated compressed block header", src.offset());
  }
  if (n > max_events) {
    return unexpected("compressed block declares " + std::to_string(n) +
                      " events, more than the " + std::to_string(max_events) +
                      " admissible at offset " + std::to_string(body_offset));
  }
  n_events = n;

  std::vector<std::uint8_t> tags(static_cast<std::size_t>(n));
  if (n > 0 && !src.read(tags.data(), tags.size())) {
    return truncated_at("truncated compressed block tag column", src.offset());
  }
  std::uint64_t counts[6] = {0, 0, 0, 0, 0, 0};
  for (const std::uint8_t t : tags) {
    if (t < kTagAlloc || t > kTagUncore) {
      return truncated_at(("unknown event tag " + std::to_string(t) +
                           " in compressed block starting")
                              .c_str(),
                          body_offset);
    }
    ++counts[t];
  }

  // Columns are consumed as cursors over the source bytes (zero-copy
  // for in-memory blocks) and unpacked directly into the output events
  // below — the packed payload is only touched once.
  std::vector<std::unique_ptr<unsigned char[]>> own;
  PackedCursor dcol;
  if (!open_packed_column(src, n, dcol, own)) {
    return truncated_at("truncated compressed block column", src.offset());
  }
  // Column order and per-kind sizes mirror encode_compressed_block.
  const std::uint64_t sizes[16] = {
      counts[kTagAlloc], counts[kTagAlloc],  counts[kTagAlloc],  counts[kTagAlloc],
      counts[kTagAlloc], counts[kTagFree],   counts[kTagSample], counts[kTagSample],
      counts[kTagSample], counts[kTagSample], counts[kTagSample], counts[kTagMarker],
      counts[kTagMarker], counts[kTagUncore], counts[kTagUncore], counts[kTagUncore]};
  PackedCursor cols[16];
  for (std::size_t c = 0; c < 16; ++c) {
    if (!open_packed_column(src, sizes[c], cols[c], own)) {
      return truncated_at("truncated compressed block column", src.offset());
    }
  }

  // Resolve the deltas to absolute timestamps (same wrapping
  // accumulation as the v2 codec), then counting-sort the tag sequence:
  // order[base[k] + j] is the stream position of kind k's j-th event.
  std::vector<Ns> deltas(static_cast<std::size_t>(n));
  Ns last_time = 0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    last_time += dcol.at(i);
    deltas[i] = last_time;
  }
  std::vector<std::uint32_t> order(static_cast<std::size_t>(n));
  std::uint64_t base[7] = {0, 0, 0, 0, 0, 0, 0};
  for (unsigned k = kTagAlloc; k <= kTagUncore; ++k) base[k + 1] = base[k] + counts[k];
  std::uint64_t cur[6] = {0, base[kTagAlloc], base[kTagFree], base[kTagSample],
                          base[kTagMarker], base[kTagUncore]};
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    order[static_cast<std::size_t>(cur[tags[i]]++)] = static_cast<std::uint32_t>(i);
  }

  Event* out = prepare(static_cast<std::size_t>(n));
  // Slots are assigned whole Event temporaries: assigning the bare
  // alternative would go through the variant's converting assignment,
  // which branches on the slot's previous (effectively random) index.
  const std::uint32_t* idx = order.data() + base[kTagAlloc];
  for (std::uint64_t j = 0; j < counts[kTagAlloc]; ++j) {
    const std::uint32_t i = idx[j];
    const std::uint64_t stack = cols[3].at(j);
    if (stack >= stack_count) {
      return truncated_at("alloc event references unknown stack", src.offset());
    }
    AllocEvent a;
    a.time = deltas[i];
    a.object_id = cols[0].at(j);
    a.address = cols[1].at(j);
    a.size = cols[2].at(j);
    a.stack = static_cast<StackId>(stack);
    a.kind = static_cast<AllocKind>(cols[4].at(j));
    out[i] = Event{a};
  }
  idx = order.data() + base[kTagFree];
  for (std::uint64_t j = 0; j < counts[kTagFree]; ++j) {
    const std::uint32_t i = idx[j];
    FreeEvent f;
    f.time = deltas[i];
    f.object_id = cols[5].at(j);
    out[i] = Event{f};
  }
  idx = order.data() + base[kTagSample];
  for (std::uint64_t j = 0; j < counts[kTagSample]; ++j) {
    const std::uint32_t i = idx[j];
    SampleEvent smp;
    smp.time = deltas[i];
    smp.address = cols[6].at(j);
    smp.weight = detail::packed_to_double(cols[7].at(j));
    smp.latency_ns = detail::packed_to_double(cols[8].at(j));
    smp.is_store = cols[9].at(j) != 0;
    smp.function_id = static_cast<std::uint32_t>(cols[10].at(j));
    out[i] = Event{smp};
  }
  idx = order.data() + base[kTagMarker];
  for (std::uint64_t j = 0; j < counts[kTagMarker]; ++j) {
    const std::uint32_t i = idx[j];
    MarkerEvent m;
    m.time = deltas[i];
    m.function_id = static_cast<std::uint32_t>(cols[11].at(j));
    m.is_enter = cols[12].at(j) != 0;
    out[i] = Event{m};
  }
  idx = order.data() + base[kTagUncore];
  for (std::uint64_t j = 0; j < counts[kTagUncore]; ++j) {
    const std::uint32_t i = idx[j];
    UncoreBwEvent u;
    u.time = deltas[i];
    u.period_ns = cols[13].at(j);
    u.read_gbs = detail::packed_to_double(cols[14].at(j));
    u.write_gbs = detail::packed_to_double(cols[15].at(j));
    out[i] = Event{u};
  }
  return {};
}

}  // namespace detail

/// Decodes one compressed block body straight into `out`, which must
/// hold `max_events` writable slots (the declared count is checked
/// against that bound before anything is written); `n_events` reports
/// the count actually decoded. The random-access reader uses this to
/// skip the per-event sink indirection. All-or-nothing: on error `out`
/// may hold partial garbage and nothing should be consumed.
template <typename Source>
Status decode_compressed_block_into(Source& src, std::uint32_t stack_count,
                                    std::uint64_t max_events, std::uint64_t& n_events,
                                    Event* out) {
  return detail::decode_compressed_block_impl(src, stack_count, max_events, n_events,
                                              [out](std::size_t) { return out; });
}

/// Decodes one compressed block body from `src`, emitting each event in
/// stream order through `sink(const Event&)`. `max_events` bounds the
/// body's declared count before any allocation (callers pass the index
/// entry's count, or a remaining-bytes bound when scanning without an
/// index); `n_events` reports the declared count on success. Every error
/// carries the absolute offset it was detected at. The block decodes
/// all-or-nothing — the sink only ever sees events from a block that
/// decoded cleanly end to end.
template <typename Source, typename Sink>
Status decode_compressed_block(Source& src, std::uint32_t stack_count, std::uint64_t max_events,
                               std::uint64_t& n_events, Sink&& sink) {
  std::vector<Event> buf;
  if (Status s = detail::decode_compressed_block_impl(src, stack_count, max_events, n_events,
                                                      [&buf](std::size_t n) {
                                                        buf.resize(n);
                                                        return buf.data();
                                                      });
      !s.ok()) {
    return s;
  }
  for (const Event& e : buf) sink(e);
  return {};
}

/// Peeks a compressed block body's declared event count without decoding
/// its columns: {layout_ok, n_events}. Used by the lenient lint view.
inline Expected<std::uint64_t> peek_compressed_block_count(const unsigned char* data,
                                                           std::size_t size,
                                                           std::uint64_t base_offset) {
  ByteReader src(data, size, base_offset);
  std::uint8_t magic = 0;
  std::uint8_t layout = 0;
  if (!src.get(magic) || magic != kCompressedBlockMagic) {
    return truncated_at("not a compressed block (bad magic)", base_offset);
  }
  if (!src.get(layout) || layout != kCompressedLayoutVersion) {
    return truncated_at("unsupported compressed block layout", src.offset());
  }
  std::uint64_t n = 0;
  if (!src.get_varint(n)) {
    return truncated_at("truncated compressed block header", src.offset());
  }
  return n;
}

// --------------------------------------------------------------------------
// Footer index codec (v3).

struct IndexEntry {
  std::uint64_t offset = 0;      ///< absolute file offset of the block's first byte
  std::uint64_t count = 0;       ///< events in the block
  std::uint64_t first_time = 0;  ///< timestamp of the block's first event
};

struct IndexInfo {
  std::vector<IndexEntry> entries;
  std::uint64_t footer_offset = 0;  ///< where the index entries begin
  std::uint64_t file_size = 0;
};

/// Structurally decodes the footer index of a v3 trace: trailer magic,
/// entry count, footer offset, then the entries. Deliberately lenient
/// about the *values* (monotonicity, bounds, count sums) — the strict
/// readers call `validate_index` on top, while the `trace-v3-index` lint
/// rule re-checks the raw values so it can report every violation.
inline Expected<IndexInfo> decode_index(const unsigned char* data, std::size_t size) {
  if (size < kTrailerBytes) {
    return truncated_at("v3 trace too small for index trailer", size);
  }
  const unsigned char* trailer = data + size - kTrailerBytes;
  if (std::memcmp(trailer + 16, kIndexMagic, sizeof(kIndexMagic)) != 0) {
    return truncated_at("missing v3 index trailer magic", size - 8);
  }
  IndexInfo info;
  info.file_size = size;
  std::uint64_t entry_count = 0;
  std::memcpy(&entry_count, trailer, 8);
  std::memcpy(&info.footer_offset, trailer + 8, 8);
  const std::uint64_t trailer_offset = size - kTrailerBytes;
  if (info.footer_offset > trailer_offset) {
    return truncated_at("v3 footer offset points past the index trailer", size - 16);
  }
  const std::uint64_t index_bytes = trailer_offset - info.footer_offset;
  if (entry_count * kIndexEntryBytes != index_bytes) {
    return unexpected("v3 index claims " + std::to_string(entry_count) + " entries but spans " +
                      std::to_string(index_bytes) + " bytes at offset " +
                      std::to_string(info.footer_offset));
  }
  info.entries.reserve(static_cast<std::size_t>(entry_count));
  ByteReader r(data + info.footer_offset, static_cast<std::size_t>(index_bytes),
               info.footer_offset);
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    IndexEntry e;
    if (!r.get(e.offset) || !r.get(e.count) || !r.get(e.first_time)) {
      return truncated_at("truncated v3 index entry", r.offset());
    }
    info.entries.push_back(e);
  }
  return info;
}

/// Strict index validation used by the readers before trusting any block
/// offset: offsets monotonically increasing and in-bounds, per-block
/// counts non-zero and summing to the header total, timestamps
/// non-decreasing across blocks.
inline Status validate_index(const IndexInfo& info, std::uint64_t events_offset,
                             std::uint64_t header_event_count) {
  std::uint64_t total = 0;
  std::uint64_t prev_end = events_offset;
  std::uint64_t prev_time = 0;
  for (std::size_t i = 0; i < info.entries.size(); ++i) {
    const IndexEntry& e = info.entries[i];
    if (e.offset != prev_end) {
      return unexpected("v3 index block " + std::to_string(i) + " starts at offset " +
                        std::to_string(e.offset) + ", expected " + std::to_string(prev_end));
    }
    if (e.offset >= info.footer_offset) {
      return unexpected("v3 index block " + std::to_string(i) + " offset " +
                        std::to_string(e.offset) + " points past the event section end " +
                        std::to_string(info.footer_offset));
    }
    if ((e.count & kBlockCountMask) == 0) {
      return unexpected("v3 index block " + std::to_string(i) + " is empty at offset " +
                        std::to_string(e.offset));
    }
    if (i > 0 && e.first_time < prev_time) {
      return unexpected("v3 index block " + std::to_string(i) + " first timestamp " +
                        std::to_string(e.first_time) + "ns precedes block " +
                        std::to_string(i - 1) + " at " + std::to_string(prev_time) + "ns");
    }
    prev_time = e.first_time;
    // Block end is the next block's offset (or the footer); enforced by
    // the chaining check above on the next iteration.
    prev_end = i + 1 < info.entries.size() ? info.entries[i + 1].offset : info.footer_offset;
    if (prev_end <= e.offset) {
      return unexpected("v3 index block " + std::to_string(i) + " has non-positive byte size at "
                        "offset " + std::to_string(e.offset));
    }
    total += e.count & kBlockCountMask;  // bit 63 flags compression, not count
  }
  if (!info.entries.empty() && info.entries.front().offset != events_offset) {
    return unexpected("v3 index first block offset " +
                      std::to_string(info.entries.front().offset) +
                      " does not match the event section start " + std::to_string(events_offset));
  }
  if (info.entries.empty() && info.footer_offset != events_offset) {
    return unexpected("v3 trace has no index blocks but a non-empty event section at offset " +
                      std::to_string(events_offset));
  }
  if (total != header_event_count) {
    return unexpected("v3 index event counts sum to " + std::to_string(total) +
                      " but the header declares " + std::to_string(header_event_count) +
                      " (index at offset " + std::to_string(info.footer_offset) + ")");
  }
  return {};
}

}  // namespace ecohmem::trace::codec
