#include "ecohmem/trace/trace_reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <utility>

#include "ecohmem/runtime/worker_pool.hpp"
#include "ecohmem/trace/codec.hpp"

namespace ecohmem::trace {

namespace {

/// Reads a whole stream into memory. A stream that goes bad mid-read
/// (I/O error, exception from the stream buffer) is reported as an
/// error — `gcount() == 0` alone cannot distinguish EOF from failure,
/// so the loop's exit condition must be double-checked with `bad()`.
Expected<std::string> slurp_stream(std::istream& in) {
  std::string bytes;
  char chunk[256 * 1024];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    bytes.append(chunk, static_cast<std::size_t>(in.gcount()));
  }
  if (in.bad()) {
    return unexpected("stream read error after " + std::to_string(bytes.size()) + " bytes");
  }
  return bytes;
}

/// Reads the whole file behind an already-open descriptor. Used by the
/// mmap fallback so the fallback sees the very same file `fstat` saw
/// (re-opening by path would race a concurrent rename/replace).
Expected<std::string> slurp_fd(int fd, std::size_t size_hint) {
  std::string bytes;
  bytes.reserve(size_hint);
  if (::lseek(fd, 0, SEEK_SET) < 0) return unexpected("cannot seek trace fd");
  char chunk[256 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      return unexpected("read error after " + std::to_string(bytes.size()) + " bytes");
    }
    bytes.append(chunk, static_cast<std::size_t>(n));
  }
  return bytes;
}

/// Salvage probe over in-memory bytes (mmap or private copy). The probe
/// span is bounded by the file end, not the block end, so an event that
/// overruns its block is detected the same way the stream source
/// detects it (by offset, not by a short read).
class ByteSalvageSource final : public SalvageSource {
 public:
  ByteSalvageSource(const unsigned char* data, std::size_t size, std::uint32_t stack_count)
      : data_(data), size_(size), stack_count_(stack_count) {}

  Probe probe(std::uint64_t begin, std::uint64_t end, std::uint64_t max_events,
              bool plain) override {
    if (begin > size_) begin = size_;
    codec::ByteReader src(data_ + begin, size_ - static_cast<std::size_t>(begin), begin);
    return probe_events(src, end, max_events, plain, stack_count_);
  }

  Probe probe_compressed(std::uint64_t begin, std::uint64_t end,
                         std::uint64_t max_events) override {
    if (begin > size_) begin = size_;
    codec::ByteReader src(data_ + begin, size_ - static_cast<std::size_t>(begin), begin);
    return probe_compressed_events(src, end, max_events, stack_count_);
  }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::uint32_t stack_count_;
};

/// Salvage probe over a seekable stream (TraceStreamer). Must classify
/// identical bytes identically to ByteSalvageSource — the corruption
/// sweep cross-checks the two manifests.
class StreamSalvageSource final : public SalvageSource {
 public:
  StreamSalvageSource(std::istream& in, std::uint32_t stack_count)
      : in_(&in), stack_count_(stack_count) {}

  Probe probe(std::uint64_t begin, std::uint64_t end, std::uint64_t max_events,
              bool plain) override {
    in_->clear();
    in_->seekg(static_cast<std::streamoff>(begin));
    if (!in_->good()) {
      Probe p;
      p.ok = false;
      p.end_offset = begin;
      p.error_offset = begin;
      p.error = "cannot seek to offset " + std::to_string(begin);
      return p;
    }
    codec::ChunkedStreamReader src(*in_, begin);
    return probe_events(src, end, max_events, plain, stack_count_);
  }

  Probe probe_compressed(std::uint64_t begin, std::uint64_t end,
                         std::uint64_t max_events) override {
    in_->clear();
    in_->seekg(static_cast<std::streamoff>(begin));
    if (!in_->good()) {
      Probe p;
      p.ok = false;
      p.end_offset = begin;
      p.error_offset = begin;
      p.error = "cannot seek to offset " + std::to_string(begin);
      return p;
    }
    codec::ChunkedStreamReader src(*in_, begin);
    return probe_compressed_events(src, end, max_events, stack_count_);
  }

 private:
  std::istream* in_;
  std::uint32_t stack_count_;
};

}  // namespace

// --------------------------------------------------------------------------
// TraceReader

struct TraceReader::Impl {
  const unsigned char* data = nullptr;
  std::size_t size = 0;
  bool is_mmap = false;
  std::string owned;  ///< backing storage when not mmapped
  codec::HeaderInfo header;
  std::vector<TraceBlockInfo> blocks;
  std::uint64_t events_end = 0;  ///< one past the last event byte
  SalvageManifest manifest;      ///< meaningful only when manifest.salvaged

  ~Impl() {
    if (is_mmap && data != nullptr) {
      ::munmap(const_cast<unsigned char*>(static_cast<const unsigned char*>(data)), size);
    }
  }

  /// Decodes + validates the header and (for v3) the footer index;
  /// builds the block table. Called once from open/from_stream. In
  /// salvage mode the block table holds only the recoverable blocks and
  /// the header count is rewritten to the recovered total, so every
  /// downstream accessor works unchanged on a damaged file.
  Status init(bool salvage) {
    codec::ByteReader r(data, size, 0);
    auto header_or = codec::decode_header(r);
    if (!header_or.has_value()) return unexpected(header_or.error());
    header = std::move(*header_or);

    if (salvage) {
      ByteSalvageSource source(data, size, static_cast<std::uint32_t>(header.stacks.size()));
      const Expected<codec::IndexInfo> index =
          header.version == codec::kVersionIndexed
              ? codec::decode_index(data, size)
              : Expected<codec::IndexInfo>(unexpected("not a v3 trace"));
      SalvagePlan plan = build_salvage_plan(source, header, size, index);
      manifest = std::move(plan.manifest);
      blocks = std::move(plan.blocks);
      events_end = header.events_offset + manifest.kept_bytes;
      header.event_count = manifest.events_recovered;
      return {};
    }

    // Every encoded event is at least 2 bytes, so a count the file could
    // not physically hold is rejected before anything is allocated.
    if (header.event_count > size / 2 + 1) {
      return unexpected("trace declares " + std::to_string(header.event_count) +
                        " events but the file only holds " + std::to_string(size) + " bytes");
    }

    if (header.version == codec::kVersionIndexed) {
      auto index = codec::decode_index(data, size);
      if (!index.has_value()) return unexpected(index.error());
      if (Status s = codec::validate_index(*index, header.events_offset, header.event_count);
          !s.ok()) {
        return s;
      }
      events_end = index->footer_offset;
      blocks.reserve(index->entries.size());
      std::uint64_t first_index = 0;
      for (std::size_t i = 0; i < index->entries.size(); ++i) {
        const codec::IndexEntry& e = index->entries[i];
        const std::uint64_t end =
            i + 1 < index->entries.size() ? index->entries[i + 1].offset : index->footer_offset;
        TraceBlockInfo b;
        b.file_offset = e.offset;
        b.byte_size = end - e.offset;
        b.event_count = e.count & codec::kBlockCountMask;
        b.compressed = (e.count & codec::kBlockCompressedFlag) != 0;
        b.first_event_index = first_index;
        b.first_time = e.first_time;
        // Every event costs at least one body byte in either encoding
        // (tag byte / tag-column byte), so a count the span cannot hold
        // is index damage — reject before decode_block allocates for it.
        if (b.event_count > b.byte_size) {
          return unexpected("v3 index block " + std::to_string(i) + " declares " +
                            std::to_string(b.event_count) + " events in " +
                            std::to_string(b.byte_size) + " bytes at offset " +
                            std::to_string(e.offset));
        }
        blocks.push_back(b);
        first_index += b.event_count;
      }
      return {};
    }

    // v1/v2: one virtual block spanning the whole event section (the
    // events are one continuous stream, decodable only front to back).
    events_end = size;
    if (header.event_count > 0) {
      TraceBlockInfo b;
      b.file_offset = header.events_offset;
      b.byte_size = size - std::min<std::uint64_t>(header.events_offset, size);
      b.event_count = header.event_count;
      b.first_event_index = 0;
      blocks.push_back(b);
    }
    return {};
  }
};

TraceReader::TraceReader() : impl_(std::make_unique<Impl>()) {}
TraceReader::TraceReader(TraceReader&&) noexcept = default;
TraceReader& TraceReader::operator=(TraceReader&&) noexcept = default;
TraceReader::~TraceReader() = default;

Expected<TraceReader> TraceReader::open(const std::string& path, TraceOpenOptions options) {
  TraceReader reader;
  Impl& impl = *reader.impl_;

  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return unexpected("cannot open trace: " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return unexpected("cannot stat trace: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  bool mapped = false;
  if (size > 0) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      // Re-stat after mapping: a writer truncating the file between
      // fstat and mmap (or still truncating it now) would leave pages
      // past the new EOF that SIGBUS on first touch. A shrunk file is
      // an error up front, not a crash at decode time.
      struct stat st2 {};
      if (::fstat(fd, &st2) != 0 || static_cast<std::size_t>(st2.st_size) < size) {
        ::munmap(map, size);
        ::close(fd);
        return unexpected("trace shrank while opening (concurrent truncation): " + path);
      }
      impl.data = static_cast<const unsigned char*>(map);
      impl.size = size;
      impl.is_mmap = true;
      mapped = true;
    }
  }
  if (!mapped) {
    // mmap unavailable (or empty file): fall back to a private copy,
    // read through the descriptor we already validated — re-opening by
    // path could hand us a different file.
    auto bytes = slurp_fd(fd, size);
    if (!bytes.has_value()) {
      ::close(fd);
      return unexpected("cannot read trace " + path + ": " + bytes.error());
    }
    impl.owned = std::move(*bytes);
    impl.data = reinterpret_cast<const unsigned char*>(impl.owned.data());
    impl.size = impl.owned.size();
  }
  ::close(fd);

  if (Status s = impl.init(options.salvage); !s.ok()) return unexpected(s.error());
  return reader;
}

Expected<TraceReader> TraceReader::from_stream(std::istream& in, TraceOpenOptions options) {
  TraceReader reader;
  Impl& impl = *reader.impl_;
  auto bytes = slurp_stream(in);
  if (!bytes.has_value()) return unexpected("cannot read trace stream: " + bytes.error());
  impl.owned = std::move(*bytes);
  impl.data = reinterpret_cast<const unsigned char*>(impl.owned.data());
  impl.size = impl.owned.size();
  if (Status s = impl.init(options.salvage); !s.ok()) return unexpected(s.error());
  return reader;
}

std::uint32_t TraceReader::version() const { return impl_->header.version; }
bool TraceReader::indexed() const { return impl_->header.version == codec::kVersionIndexed; }
bool TraceReader::mapped() const { return impl_->is_mmap; }
double TraceReader::sample_rate_hz() const { return impl_->header.sample_rate_hz; }
const bom::ModuleTable& TraceReader::modules() const { return impl_->header.modules; }
const StackTable& TraceReader::stacks() const { return impl_->header.stacks; }
const FunctionTable& TraceReader::functions() const { return impl_->header.functions; }
std::uint64_t TraceReader::event_count() const { return impl_->header.event_count; }
std::uint64_t TraceReader::byte_size() const { return impl_->size; }
std::size_t TraceReader::block_count() const { return impl_->blocks.size(); }
const TraceBlockInfo& TraceReader::block(std::size_t i) const { return impl_->blocks.at(i); }
const SalvageManifest& TraceReader::manifest() const { return impl_->manifest; }

Status TraceReader::decode_block_into(std::size_t i, Event* out) const {
  const Impl& impl = *impl_;
  const TraceBlockInfo& b = impl.blocks.at(i);
  codec::ByteReader br(impl.data + b.file_offset, static_cast<std::size_t>(b.byte_size),
                       b.file_offset);
  const auto stack_count = static_cast<std::uint32_t>(impl.header.stacks.size());

  if (impl.header.version == codec::kVersionPlain) {
    for (std::uint64_t j = 0; j < b.event_count; ++j) {
      if (Status s = codec::decode_event_plain(br, stack_count, out[j]); !s.ok()) return s;
    }
    return {};
  }

  if (b.compressed) {
    std::uint64_t body_events = 0;
    if (Status s =
            codec::decode_compressed_block_into(br, stack_count, b.event_count, body_events, out);
        !s.ok()) {
      return s;
    }
    if (body_events != b.event_count) {
      return unexpected("v3 index block " + std::to_string(i) + " declares " +
                        std::to_string(b.event_count) + " events but its compressed body holds " +
                        std::to_string(body_events) + " at offset " +
                        std::to_string(b.file_offset));
    }
  } else {
    Ns last_time = 0;
    if (Status s = codec::decode_compact_events(br, stack_count, last_time, out, b.event_count);
        !s.ok()) {
      return s;
    }
  }
  if (impl.header.version == codec::kVersionIndexed && b.event_count > 0 &&
      event_time(out[0]) != b.first_time) {
    return unexpected("v3 index block " + std::to_string(i) +
                      " first timestamp disagrees with its events at offset " +
                      std::to_string(b.file_offset));
  }
  // v3 blocks are exactly sized; v1/v2's virtual block may carry
  // trailing bytes (historically tolerated).
  if (impl.header.version == codec::kVersionIndexed && br.remaining() != 0) {
    return unexpected("v3 index block " + std::to_string(i) + " has " +
                      std::to_string(br.remaining()) + " undecoded bytes at offset " +
                      std::to_string(br.offset()));
  }
  return {};
}

Status TraceReader::decode_block(std::size_t i, std::vector<Event>& out) const {
  out.resize(static_cast<std::size_t>(impl_->blocks.at(i).event_count));
  return decode_block_into(i, out.data());
}

Expected<TraceBundle> TraceReader::read_all(int threads) const {
  const Impl& impl = *impl_;
  TraceBundle bundle;
  bundle.trace.stacks = impl.header.stacks;
  bundle.trace.functions = impl.header.functions;
  bundle.trace.sample_rate_hz = impl.header.sample_rate_hz;
  bundle.modules = impl.header.modules;
  bundle.coverage.events_seen = impl.header.event_count;
  bundle.coverage.events_declared =
      impl.manifest.salvaged ? impl.manifest.events_declared : impl.header.event_count;
  bundle.coverage.salvaged = impl.manifest.salvaged;
  bundle.trace.events.resize(static_cast<std::size_t>(impl.header.event_count));

  const std::size_t want = threads < 1 ? 1 : static_cast<std::size_t>(threads);
  const std::size_t workers = std::min(want, impl.blocks.size());

  if (workers <= 1) {
    for (std::size_t b = 0; b < impl.blocks.size(); ++b) {
      if (Status s =
              decode_block_into(b, bundle.trace.events.data() + impl.blocks[b].first_event_index);
          !s.ok()) {
        return unexpected(s.error());
      }
    }
    return bundle;
  }

  // Parallel block decode: workers fill disjoint event slices, so the
  // materialized vector is byte-for-byte what serial decode produces.
  // Blocks are strided across workers for balance.
  std::vector<Status> worker_status(workers);
  std::vector<std::size_t> failed_block(workers, impl.blocks.size());
  runtime::WorkerPool pool(workers);
  Event* events = bundle.trace.events.data();
  pool.run([&](std::size_t w) {
    for (std::size_t b = w; b < impl.blocks.size(); b += workers) {
      Status s = decode_block_into(b, events + impl.blocks[b].first_event_index);
      if (!s.ok()) {
        worker_status[w] = std::move(s);
        failed_block[w] = b;
        return;
      }
    }
  });
  // Report the earliest failing block so the error is thread-count
  // independent.
  std::size_t first_fail = impl.blocks.size();
  std::size_t fail_worker = workers;
  for (std::size_t w = 0; w < workers; ++w) {
    if (!worker_status[w].ok() && failed_block[w] < first_fail) {
      first_fail = failed_block[w];
      fail_worker = w;
    }
  }
  if (fail_worker != workers) return unexpected(worker_status[fail_worker].error());
  return bundle;
}

// --------------------------------------------------------------------------
// TraceStreamer

struct TraceStreamer::Impl {
  std::string path;
  codec::HeaderInfo header;
  std::vector<codec::IndexEntry> entries;  ///< v3 block index (empty for v1/v2)
  std::uint64_t footer_offset = 0;         ///< one past the last event byte (v3 strict)
  std::vector<TraceBlockInfo> blocks;      ///< recovered blocks (salvage mode only)
  SalvageManifest manifest;                ///< meaningful only when manifest.salvaged
};

TraceStreamer::TraceStreamer() : impl_(std::make_unique<Impl>()) {}
TraceStreamer::TraceStreamer(TraceStreamer&&) noexcept = default;
TraceStreamer& TraceStreamer::operator=(TraceStreamer&&) noexcept = default;
TraceStreamer::~TraceStreamer() = default;

Expected<TraceStreamer> TraceStreamer::open(const std::string& path, TraceOpenOptions options) {
  TraceStreamer streamer;
  Impl& impl = *streamer.impl_;
  impl.path = path;

  std::ifstream in(path, std::ios::binary);
  if (!in) return unexpected("cannot open trace: " + path);
  codec::ChunkedStreamReader src(in);
  auto header_or = codec::decode_header(src);
  if (!header_or.has_value()) return unexpected(header_or.error());
  impl.header = std::move(*header_or);

  if (options.salvage) {
    // Fail-soft open: classify the file with the shared salvage planner
    // through a seekable probe stream, mirroring TraceReader exactly.
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return unexpected("cannot open trace: " + path);
    probe.seekg(0, std::ios::end);
    const auto file_size = static_cast<std::uint64_t>(probe.tellg());
    if (!probe.good()) return unexpected("cannot read trace size of " + path);
    const Expected<codec::IndexInfo> index =
        impl.header.version == codec::kVersionIndexed
            ? read_index_lenient(probe, file_size)
            : Expected<codec::IndexInfo>(unexpected("not a v3 trace"));
    StreamSalvageSource source(probe, static_cast<std::uint32_t>(impl.header.stacks.size()));
    SalvagePlan plan = build_salvage_plan(source, impl.header, file_size, index);
    impl.manifest = std::move(plan.manifest);
    impl.blocks = std::move(plan.blocks);
    impl.header.event_count = impl.manifest.events_recovered;
    return streamer;
  }

  if (impl.header.version == codec::kVersionIndexed) {
    // The index lives at the end of the file; read it through a seek
    // rather than scanning the event section.
    std::ifstream idx(path, std::ios::binary);
    idx.seekg(0, std::ios::end);
    const auto file_size = static_cast<std::uint64_t>(idx.tellg());
    if (!idx.good()) return unexpected("cannot read v3 index of " + path);
    if (impl.header.event_count > file_size / 2 + 1) {
      return unexpected("trace declares " + std::to_string(impl.header.event_count) +
                        " events but the file only holds " + std::to_string(file_size) +
                        " bytes");
    }
    if (file_size < codec::kTrailerBytes) {
      return unexpected("v3 trace too small for index trailer at offset " +
                        std::to_string(file_size));
    }
    std::string trailer(codec::kTrailerBytes, '\0');
    idx.seekg(static_cast<std::streamoff>(file_size - codec::kTrailerBytes));
    idx.read(trailer.data(), static_cast<std::streamsize>(trailer.size()));
    if (!idx.good()) {
      return codec::truncated_at("truncated v3 index trailer", file_size - codec::kTrailerBytes);
    }
    std::uint64_t entry_count = 0;
    std::uint64_t footer_offset = 0;
    std::memcpy(&entry_count, trailer.data(), 8);
    std::memcpy(&footer_offset, trailer.data() + 8, 8);
    if (std::memcmp(trailer.data() + 16, codec::kIndexMagic, sizeof(codec::kIndexMagic)) != 0) {
      return codec::truncated_at("missing v3 index trailer magic", file_size - 8);
    }
    const std::uint64_t trailer_offset = file_size - codec::kTrailerBytes;
    if (footer_offset > trailer_offset ||
        entry_count * codec::kIndexEntryBytes != trailer_offset - footer_offset) {
      return unexpected("v3 index claims " + std::to_string(entry_count) +
                        " entries but spans " + std::to_string(trailer_offset - footer_offset) +
                        " bytes at offset " + std::to_string(footer_offset));
    }
    std::string raw(static_cast<std::size_t>(trailer_offset - footer_offset), '\0');
    idx.seekg(static_cast<std::streamoff>(footer_offset));
    idx.read(raw.data(), static_cast<std::streamsize>(raw.size()));
    if (!idx.good() && !raw.empty()) {
      return codec::truncated_at("truncated v3 index", footer_offset);
    }
    codec::IndexInfo info;
    info.file_size = file_size;
    info.footer_offset = footer_offset;
    codec::ByteReader r(reinterpret_cast<const unsigned char*>(raw.data()), raw.size(),
                        footer_offset);
    for (std::uint64_t i = 0; i < entry_count; ++i) {
      codec::IndexEntry e;
      if (!r.get(e.offset) || !r.get(e.count) || !r.get(e.first_time)) {
        return codec::truncated_at("truncated v3 index entry", r.offset());
      }
      info.entries.push_back(e);
    }
    if (Status s =
            codec::validate_index(info, impl.header.events_offset, impl.header.event_count);
        !s.ok()) {
      return unexpected(s.error());
    }
    impl.entries = std::move(info.entries);
    impl.footer_offset = footer_offset;
  }
  return streamer;
}

std::uint32_t TraceStreamer::version() const { return impl_->header.version; }
double TraceStreamer::sample_rate_hz() const { return impl_->header.sample_rate_hz; }
const bom::ModuleTable& TraceStreamer::modules() const { return impl_->header.modules; }
const StackTable& TraceStreamer::stacks() const { return impl_->header.stacks; }
const FunctionTable& TraceStreamer::functions() const { return impl_->header.functions; }
std::uint64_t TraceStreamer::event_count() const { return impl_->header.event_count; }
const SalvageManifest& TraceStreamer::manifest() const { return impl_->manifest; }

Status TraceStreamer::for_each(const std::function<void(const Event&)>& fn) const {
  const Impl& impl = *impl_;
  std::ifstream in(impl.path, std::ios::binary);
  if (!in) return unexpected("cannot open trace: " + impl.path);

  if (impl.manifest.salvaged) {
    // Stream only the blocks recovered at open time, seeking over the
    // dropped regions. Each v2/v3 block decodes from a fresh delta base.
    const auto stacks = static_cast<std::uint32_t>(impl.header.stacks.size());
    const bool plain = impl.header.version == codec::kVersionPlain;
    Event ev;
    for (const TraceBlockInfo& b : impl.blocks) {
      in.clear();
      in.seekg(static_cast<std::streamoff>(b.file_offset));
      if (!in.good()) {
        return codec::truncated_at("cannot seek to salvaged block", b.file_offset);
      }
      codec::ChunkedStreamReader src(in, b.file_offset);
      if (b.compressed) {
        std::uint64_t body = 0;
        if (Status s = codec::decode_compressed_block(src, stacks, b.event_count, body,
                                                      [&fn](const Event& e) { fn(e); });
            !s.ok()) {
          return s;  // file changed since open
        }
        continue;
      }
      Ns last_time = 0;
      for (std::uint64_t j = 0; j < b.event_count; ++j) {
        const Status s = plain ? codec::decode_event_plain(src, stacks, ev)
                               : codec::decode_event_compact(src, stacks, last_time, ev);
        if (!s.ok()) return s;  // file changed since open
        fn(ev);
      }
    }
    return {};
  }

  in.seekg(static_cast<std::streamoff>(impl.header.events_offset));
  if (!in.good()) {
    return codec::truncated_at("truncated event stream", impl.header.events_offset);
  }
  const auto stack_count = static_cast<std::uint32_t>(impl.header.stacks.size());
  Event ev;

  if (impl.header.version == codec::kVersionIndexed) {
    // Blocks are read whole (their byte spans are exact by
    // validate_index) and decoded from memory so the batch fast path and
    // the compressed column codec both apply. Peak memory stays
    // proportional to the largest block, not the trace.
    std::vector<unsigned char> buf;
    std::vector<Event> scratch;
    for (std::size_t b = 0; b < impl.entries.size(); ++b) {
      const codec::IndexEntry& entry = impl.entries[b];
      const std::uint64_t count = entry.count & codec::kBlockCountMask;
      const std::uint64_t block_end =
          b + 1 < impl.entries.size() ? impl.entries[b + 1].offset : impl.footer_offset;
      buf.resize(static_cast<std::size_t>(block_end - entry.offset));
      in.read(reinterpret_cast<char*>(buf.data()), static_cast<std::streamsize>(buf.size()));
      if (!in.good()) {
        return codec::truncated_at("truncated event stream", entry.offset);
      }
      codec::ByteReader br(buf.data(), buf.size(), entry.offset);
      if ((entry.count & codec::kBlockCompressedFlag) != 0) {
        bool first = true;
        std::uint64_t body = 0;
        Status first_time_error;
        Status s = codec::decode_compressed_block(
            br, stack_count, count, body, [&](const Event& e) {
              if (first) {
                first = false;
                if (event_time(e) != entry.first_time) {
                  first_time_error = unexpected(
                      "v3 index block " + std::to_string(b) +
                      " first timestamp disagrees with its events at offset " +
                      std::to_string(entry.offset));
                }
              }
              if (first_time_error.ok()) fn(e);
            });
        if (!first_time_error.ok()) return first_time_error;
        if (!s.ok()) return s;
        if (body != count) {
          return unexpected("v3 index block " + std::to_string(b) + " declares " +
                            std::to_string(count) + " events but its compressed body holds " +
                            std::to_string(body) + " at offset " + std::to_string(entry.offset));
        }
      } else {
        Ns last_time = 0;
        std::uint64_t done = 0;
        while (done < count) {
          const std::uint64_t chunk = std::min<std::uint64_t>(count - done, 16 * 1024);
          scratch.resize(static_cast<std::size_t>(chunk));
          if (Status s =
                  codec::decode_compact_events(br, stack_count, last_time, scratch.data(), chunk);
              !s.ok()) {
            return s;
          }
          if (done == 0 && event_time(scratch[0]) != entry.first_time) {
            return unexpected("v3 index block " + std::to_string(b) +
                              " first timestamp disagrees with its events at offset " +
                              std::to_string(entry.offset));
          }
          for (std::uint64_t j = 0; j < chunk; ++j) fn(scratch[static_cast<std::size_t>(j)]);
          done += chunk;
        }
      }
      if (br.remaining() != 0) {
        return unexpected("v3 index block " + std::to_string(b) + " has " +
                          std::to_string(br.remaining()) + " undecoded bytes at offset " +
                          std::to_string(br.offset()));
      }
    }
    return {};
  }

  codec::ChunkedStreamReader src(in, impl.header.events_offset);

  if (impl.header.version == codec::kVersionCompact) {
    Ns last_time = 0;
    for (std::uint64_t i = 0; i < impl.header.event_count; ++i) {
      if (Status s = codec::decode_event_compact(src, stack_count, last_time, ev); !s.ok()) {
        return s;
      }
      fn(ev);
    }
    return {};
  }

  for (std::uint64_t i = 0; i < impl.header.event_count; ++i) {
    if (Status s = codec::decode_event_plain(src, stack_count, ev); !s.ok()) return s;
    fn(ev);
  }
  return {};
}

}  // namespace ecohmem::trace
