#pragma once

/// \file trace_reader.hpp
/// Zero-copy and streaming access to on-disk traces.
///
/// `TraceReader` mmaps a trace file (falling back to a private in-memory
/// copy for unseekable inputs) and exposes the v3 block index: each
/// block is independently decodable, so blocks can be decoded on demand,
/// out of order, or in parallel (`read_all(threads)` fans block decoding
/// out across a fork-join worker pool and writes into disjoint slices of
/// the destination vector — bit-identical to serial decode by
/// construction). v1/v2 traces are presented as a single virtual block,
/// so every caller works on every version.
///
/// `TraceStreamer` is the bounded-memory path for consumers that never
/// need the whole trace at once (ecohmem-timeline): it keeps only the
/// header tables, the block index, and one 256 KiB read buffer resident
/// regardless of trace size, re-reading the file on each pass.
///
/// Thread safety: after construction, `TraceReader`'s accessors and
/// `decode_block*` are const and safe to call from any number of threads
/// concurrently (the mapping is immutable). `read_all` must be called
/// from one thread at a time (it owns the worker pool hand-off).

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ecohmem/bom/module_table.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/trace/events.hpp"
#include "ecohmem/trace/salvage.hpp"
#include "ecohmem/trace/trace_file.hpp"

namespace ecohmem::trace {

/// How a trace file is opened.
struct TraceOpenOptions {
  /// Fail-soft mode: instead of rejecting a corrupt/truncated trace at
  /// the first structural error, recover every independently decodable
  /// block and account for the rest in `manifest()` (salvage.hpp). The
  /// header tables must still decode — without them nothing is
  /// recoverable. Off by default: strict reads stay strict.
  bool salvage = false;
};

class TraceReader {
 public:
  /// Opens and validates a trace file: header decoded eagerly, v3 footer
  /// index decoded and strictly validated (chained offsets, counts
  /// summing to the header total, non-decreasing timestamps). The file
  /// is mmapped read-only when possible. With `options.salvage`,
  /// validation relaxes to per-block recovery (see `manifest()`).
  static Expected<TraceReader> open(const std::string& path, TraceOpenOptions options = {});

  /// Reads a trace from a stream that may not be seekable (a pipe): the
  /// bytes are copied into a private buffer, everything else behaves
  /// like `open`. A stream that goes bad mid-read is an error, not EOF.
  static Expected<TraceReader> from_stream(std::istream& in, TraceOpenOptions options = {});

  TraceReader(TraceReader&&) noexcept;
  TraceReader& operator=(TraceReader&&) noexcept;
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;
  ~TraceReader();

  [[nodiscard]] std::uint32_t version() const;
  /// True for the v3 indexed format (random-access blocks).
  [[nodiscard]] bool indexed() const;
  /// True when the file is mmapped (zero-copy); false when it was read
  /// into a private buffer.
  [[nodiscard]] bool mapped() const;
  [[nodiscard]] double sample_rate_hz() const;
  [[nodiscard]] const bom::ModuleTable& modules() const;
  [[nodiscard]] const StackTable& stacks() const;
  [[nodiscard]] const FunctionTable& functions() const;
  [[nodiscard]] std::uint64_t event_count() const;
  [[nodiscard]] std::uint64_t byte_size() const;

  [[nodiscard]] std::size_t block_count() const;
  [[nodiscard]] const TraceBlockInfo& block(std::size_t i) const;

  /// Decodes block `i` into `out`, which must have room for
  /// `block(i).event_count` events. Safe to call concurrently for
  /// distinct (or even the same) blocks. Errors carry file offsets.
  [[nodiscard]] Status decode_block_into(std::size_t i, Event* out) const;

  /// Convenience: resizes `out` and decodes into it.
  [[nodiscard]] Status decode_block(std::size_t i, std::vector<Event>& out) const;

  /// Materializes the whole trace (tables copied). With `threads > 1`
  /// and a v3 trace, blocks decode in parallel into disjoint slices of
  /// the event vector; the result is bit-identical to serial decode —
  /// in salvage mode too (recovered blocks are fixed at open time).
  /// The bundle's `coverage` reflects the salvage manifest.
  [[nodiscard]] Expected<TraceBundle> read_all(int threads = 1) const;

  /// Salvage accounting for this open. `manifest().salvaged` is false
  /// for strict opens (the other fields are then meaningless).
  [[nodiscard]] const SalvageManifest& manifest() const;

 private:
  TraceReader();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Bounded-memory sequential reader: only the header tables, the block
/// index, and one fixed-size read chunk stay resident, independent of
/// how many events the trace holds. Each `for_each` call re-reads the
/// file front to back, so multi-pass consumers work on a cold file
/// handle instead of a materialized `Trace`.
class TraceStreamer {
 public:
  static Expected<TraceStreamer> open(const std::string& path, TraceOpenOptions options = {});

  TraceStreamer(TraceStreamer&&) noexcept;
  TraceStreamer& operator=(TraceStreamer&&) noexcept;
  TraceStreamer(const TraceStreamer&) = delete;
  TraceStreamer& operator=(const TraceStreamer&) = delete;
  ~TraceStreamer();

  [[nodiscard]] std::uint32_t version() const;
  [[nodiscard]] double sample_rate_hz() const;
  [[nodiscard]] const bom::ModuleTable& modules() const;
  [[nodiscard]] const StackTable& stacks() const;
  [[nodiscard]] const FunctionTable& functions() const;
  [[nodiscard]] std::uint64_t event_count() const;

  /// Streams every event, in order, through `fn`. Decodes from a
  /// bounded chunk buffer; never materializes more than one event. In
  /// salvage mode only the blocks recovered at open time are streamed.
  [[nodiscard]] Status for_each(const std::function<void(const Event&)>& fn) const;

  /// Salvage accounting for this open (see TraceReader::manifest).
  [[nodiscard]] const SalvageManifest& manifest() const;

 private:
  TraceStreamer();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ecohmem::trace
