#pragma once

/// \file expected.hpp
/// A minimal `Expected<T>` for recoverable errors at module boundaries.
///
/// ecoHMEM modules report expected failures (parse errors, capacity
/// exhaustion, missing files) by value rather than by exception, following
/// the project convention in DESIGN.md §6. This is a small subset of
/// C++23 `std::expected` with `std::string` as the fixed error type.

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ecohmem {

/// Tag type carrying an error message.
struct Unexpected {
  std::string message;
};

inline Unexpected unexpected(std::string message) { return Unexpected{std::move(message)}; }

/// Either a value of type `T` or an error message.
template <typename T>
class Expected {
 public:
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Unexpected err) : state_(std::in_place_index<1>, std::move(err.message)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const { return state_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return std::get<0>(state_);
  }
  [[nodiscard]] T& value() & {
    assert(has_value());
    return std::get<0>(state_);
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::get<0>(std::move(state_));
  }

  [[nodiscard]] const std::string& error() const {
    assert(!has_value());
    return std::get<1>(state_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<0>(state_) : std::move(fallback);
  }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  std::variant<T, std::string> state_;
};

/// Expected<void> analogue: success or an error message.
class Status {
 public:
  Status() = default;
  Status(Unexpected err) : error_(std::move(err.message)), failed_(true) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const std::string& error() const {
    assert(failed_);
    return error_;
  }

 private:
  std::string error_;
  bool failed_ = false;
};

}  // namespace ecohmem
