#include "ecohmem/common/log.hpp"

#include <atomic>
#include <cstdio>

namespace ecohmem {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  std::fprintf(stderr, "[ecohmem %s] %s\n", level_name(level), message.c_str());
}

}  // namespace ecohmem
