#pragma once

/// \file faultinject.hpp
/// Deterministic fault injection for the trace pipeline's robustness
/// tests and the CI corruption-fuzz sweep.
///
/// A `Fault` is a single, precisely-located mutation of a byte buffer:
/// a bit flip, a truncation, or a short garble run. `schedule()` derives
/// a reproducible list of faults from a seed and the trace's codec
/// landmarks (header fields, block bodies, index entries, trailer), so
/// a failing sweep iteration is replayable from its seed alone — no
/// corpus files, no flaky randomness. `FailingStream` simulates an
/// input stream whose underlying device errors mid-read (badbit), the
/// case `slurp_stream` must distinguish from EOF.
///
/// Everything here is test/CI machinery: deterministic, allocation-only,
/// no I/O. See docs/robustness.md for how the sweep uses it.

#include <cstdint>
#include <istream>
#include <memory>
#include <streambuf>
#include <string>
#include <vector>

namespace ecohmem::faultinject {

enum class FaultKind : std::uint8_t {
  kBitFlip,   ///< flip bit `bit` of the byte at `offset`
  kTruncate,  ///< drop every byte from `offset` on
  kGarble,    ///< overwrite `length` bytes at `offset` with seeded noise
};

/// One deterministic mutation. `label` says which landmark the offset
/// was aimed at, so sweep failures read like "bit flip in block 3 body"
/// instead of a bare file offset.
struct Fault {
  FaultKind kind = FaultKind::kBitFlip;
  std::uint64_t offset = 0;
  std::uint32_t bit = 0;     ///< kBitFlip only (0-7)
  std::uint64_t length = 0;  ///< kGarble only
  std::uint64_t seed = 0;    ///< kGarble noise seed
  std::string label;
};

/// Returns a corrupted copy of `bytes` (the original is untouched).
/// Faults past the end of the buffer are no-ops, so a schedule built
/// for one file can be replayed against a shorter variant.
[[nodiscard]] std::vector<unsigned char> apply(const std::vector<unsigned char>& bytes,
                                               const Fault& fault);

/// Codec landmarks of a v3 trace, located structurally (not by decoding
/// events): where the event section, footer index, and trailer live.
struct Landmarks {
  std::uint64_t file_size = 0;
  std::uint64_t events_offset = 0;   ///< first event byte (0 if unknown)
  std::uint64_t footer_offset = 0;   ///< first index byte (0 if no index)
  std::uint64_t trailer_offset = 0;  ///< last 24 bytes (0 if no index)
  std::vector<std::uint64_t> block_offsets;  ///< per-index-entry block starts
};

/// Locates the landmarks of a well-formed v3 trace buffer; returns a
/// zeroed struct (except file_size) when the trailer is not readable.
/// `events_offset` must come from the caller (decode_header knows it).
[[nodiscard]] Landmarks landmarks_v3(const std::vector<unsigned char>& bytes,
                                     std::uint64_t events_offset);

/// Builds a deterministic schedule of `count` faults aimed at the
/// interesting places of a trace with the given landmarks: block
/// bodies, block boundaries, index entries, the trailer magic, the
/// header's count field, and truncations at all of the above. The same
/// (landmarks, seed, count) always yields the same schedule.
[[nodiscard]] std::vector<Fault> schedule(const Landmarks& lm, std::uint64_t seed,
                                          std::size_t count);

/// An istream over a byte buffer whose read position `fail_at` onward
/// raises a device error: the stream reports badbit mid-read instead of
/// a clean EOF. Reproduces a failing disk/pipe for `from_stream` tests.
class FailingStream : public std::istream {
 public:
  FailingStream(std::string bytes, std::size_t fail_at);
  ~FailingStream() override;

 private:
  class Buf;
  std::unique_ptr<Buf> buf_;
};

}  // namespace ecohmem::faultinject
