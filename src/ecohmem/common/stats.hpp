#pragma once

/// \file stats.hpp
/// Streaming statistics accumulators used by run metrics and benchmarks.

#include <cstddef>
#include <vector>

namespace ecohmem {

class Rng;

/// Welford-style streaming mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Relative standard deviation (stddev / mean), 0 when mean is 0.
  [[nodiscard]] double rsd() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact percentile over a retained sample set (intended for small N).
class PercentileSampler {
 public:
  void add(double x) { values_.push_back(x); }
  /// p in [0, 100]; linear interpolation between ranks; 0 for empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] std::size_t count() const { return values_.size(); }

 private:
  mutable std::vector<double> values_;
};

namespace ecohmem_detail {}

}  // namespace ecohmem
