#pragma once

/// \file lockdep.hpp
/// Ranked mutex wrappers + an opt-in runtime lock-order validator.
///
/// docs/threading.md promises a strict lock hierarchy: every production
/// mutex is a *leaf* (no code path acquires a second lock while holding
/// one), and any future non-leaf locks must be acquired in strictly
/// rank-increasing order. The Clang thread-safety analysis
/// (thread_annotations.hpp) checks the *guarded-by* contracts at compile
/// time; this file checks the *ordering* contract at run time, in the
/// style of the Linux kernel's lockdep:
///
///  - `RankedMutex` / `RankedSharedMutex` wrap `std::mutex` /
///    `std::shared_mutex` with a rank and class name from the
///    docs/threading.md lock-rank table.
///  - When `ECOHMEM_LOCKDEP=1` is set in the environment, every
///    acquisition is checked against a per-thread held-lock stack
///    (rank order + leaf rules) and recorded in a global
///    acquisition-order graph whose cycle detection catches inversions
///    that only ever happen on *different* threads. Violations report
///    both acquisition sites (file:line).
///  - When disabled (the default), each lock/unlock pays one relaxed
///    atomic load and a predicted branch — near-zero overhead, no
///    allocation, no global state touched.
///
/// The validator is wired into `ci.sh`: the concurrency suites run with
/// `ECOHMEM_LOCKDEP=1`, where any violation aborts the test. A seeded
/// negative test (tests/common/test_lockdep.cpp) proves the validator
/// fires on a deliberately inverted acquisition.

#include <source_location>
#include <string>

#include <mutex>         // srclint-ok: conc-raw-mutex (the wrapped primitive)
#include <shared_mutex>  // srclint-ok: conc-raw-mutex (the wrapped primitive)

#include "ecohmem/common/thread_annotations.hpp"

namespace ecohmem::common {

namespace lockdep {

/// The lock-rank table (keep in sync with docs/threading.md).
/// Acquisition order must be strictly rank-increasing; every rank below
/// is additionally a *leaf* — no further ranked lock may be acquired
/// while one is held. The serve-layer locks rank below the analyzer and
/// FlexMalloc leaves they sit above architecturally, but they too are
/// leaves: the daemon moves data between its queue, store and registry
/// one lock at a time (docs/threading.md, docs/serving.md).
enum class LockRank : int {
  kServeRegistryShard = 4,  ///< SessionManager shard map (serve/session.*)
  kServeSessionQueue = 6,   ///< per-session bounded ingest queue (serve/session.*)
  kServeSessionStore = 8,   ///< per-session incremental site store (serve/session.*)
  kWorkerPool = 10,         ///< WorkerPool phase hand-off (runtime/worker_pool.hpp)
  kOnlineShard = 15,        ///< per-shard sampler/hotness state (online/sharded.*)
  kModeFragments = 18,      ///< AppDirectMode sub-range fragment map (runtime/mode.*)
  kMatcherHr = 20,          ///< CallStackMatcher human-readable path (flexmalloc/matcher.*)
  kMatchCacheShard = 30,    ///< MatchCache shard shared_mutex (flexmalloc/matcher.*)
  kArenaHeap = 40,          ///< per-tier ArenaHeap leaf mutex (flexmalloc/heap_manager.*)
};

/// File:line of an acquisition, captured via std::source_location.
struct LockSite {
  const char* file = "?";
  unsigned line = 0;
};

enum class ViolationKind {
  kRankOrder,    ///< acquired a rank <= a rank already held
  kLeafNesting,  ///< acquired any ranked lock while holding a leaf lock
  kCycle,        ///< acquisition-order graph would become cyclic
  kNotHeld,      ///< assert_held() on a lock this thread does not hold
};

[[nodiscard]] const char* to_string(ViolationKind kind);

/// One detected ordering violation. `acquiring`/`acquiring_site` are the
/// acquisition that tripped the check; `held`/`held_site` identify the
/// conflicting held lock (rank/leaf violations) or the previously
/// recorded opposite-direction edge (cycles).
struct Violation {
  ViolationKind kind = ViolationKind::kRankOrder;
  const char* acquiring = "?";
  const char* held = "?";
  LockSite acquiring_site;
  LockSite held_site;
  std::string message;  ///< fully formatted, carries both sites
};

/// True when the validator is active (ECOHMEM_LOCKDEP=1 in the
/// environment, or forced by set_enabled_for_testing). Reads one
/// relaxed atomic; the environment is consulted once.
[[nodiscard]] bool enabled();

/// Test hook: force the validator on/off regardless of the environment.
void set_enabled_for_testing(bool on);

/// Violation sink. The default handler prints the message to stderr and
/// aborts (so CI runs with ECOHMEM_LOCKDEP=1 fail loudly). Tests install
/// a collector. Returns the previous handler; pass nullptr to restore
/// the default.
using Handler = void (*)(const Violation&);
Handler set_violation_handler(Handler handler);

/// Test hook: clears the global acquisition-order graph and the calling
/// thread's held-lock stack.
void reset_for_testing();

/// Number of ranked locks the calling thread currently holds (0 when
/// the validator is disabled).
[[nodiscard]] std::size_t held_count();

// Internal hooks called by the wrappers; `mutex` is the instance
// identity, `name` its class (the lock-rank table row).
void on_acquire(const void* mutex, const char* name, int rank, bool leaf,
                const std::source_location& where);
void on_release(const void* mutex);
void on_assert_held(const void* mutex, const char* name);

}  // namespace lockdep

/// `std::mutex` with a rank, a class name and lockdep bookkeeping.
/// Satisfies BasicLockable, so it composes with
/// `std::condition_variable_any` and `std::unique_lock`; prefer the
/// `ScopedLock` guard, which captures the acquisition site of the
/// guard's construction rather than a line inside the standard library.
class ECOHMEM_CAPABILITY("mutex") RankedMutex {
 public:
  explicit RankedMutex(lockdep::LockRank rank, const char* name, bool leaf = true)
      : rank_(static_cast<int>(rank)), leaf_(leaf), name_(name) {}

  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock(const std::source_location& where = std::source_location::current())
      ECOHMEM_ACQUIRE() {
    if (lockdep::enabled()) lockdep::on_acquire(this, name_, rank_, leaf_, where);
    mu_.lock();
  }

  [[nodiscard]] bool try_lock(
      const std::source_location& where = std::source_location::current())
      ECOHMEM_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    if (lockdep::enabled()) lockdep::on_acquire(this, name_, rank_, leaf_, where);
    return true;
  }

  void unlock() ECOHMEM_RELEASE() {
    if (lockdep::enabled()) lockdep::on_release(this);
    mu_.unlock();
  }

  /// Runtime + static assertion that the calling thread holds this
  /// mutex. Use inside condition-variable wait predicates, where the
  /// lock is held by contract but the static analysis cannot see it.
  void assert_held() const ECOHMEM_ASSERT_CAPABILITY(this) {
    if (lockdep::enabled()) lockdep::on_assert_held(this, name_);
  }

  [[nodiscard]] const char* name() const { return name_; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] bool leaf() const { return leaf_; }

 private:
  std::mutex mu_;  // srclint-ok: conc-raw-mutex (this IS the ranked wrapper)
  int rank_;
  bool leaf_;
  const char* name_;
};

/// `std::shared_mutex` with the same rank/lockdep treatment. Shared
/// holds participate in ordering checks exactly like exclusive ones
/// (the documented hierarchy makes no reader exception).
class ECOHMEM_CAPABILITY("shared_mutex") RankedSharedMutex {
 public:
  explicit RankedSharedMutex(lockdep::LockRank rank, const char* name, bool leaf = true)
      : rank_(static_cast<int>(rank)), leaf_(leaf), name_(name) {}

  RankedSharedMutex(const RankedSharedMutex&) = delete;
  RankedSharedMutex& operator=(const RankedSharedMutex&) = delete;

  void lock(const std::source_location& where = std::source_location::current())
      ECOHMEM_ACQUIRE() {
    if (lockdep::enabled()) lockdep::on_acquire(this, name_, rank_, leaf_, where);
    mu_.lock();
  }

  void unlock() ECOHMEM_RELEASE() {
    if (lockdep::enabled()) lockdep::on_release(this);
    mu_.unlock();
  }

  void lock_shared(const std::source_location& where = std::source_location::current())
      ECOHMEM_ACQUIRE_SHARED() {
    if (lockdep::enabled()) lockdep::on_acquire(this, name_, rank_, leaf_, where);
    mu_.lock_shared();
  }

  void unlock_shared() ECOHMEM_RELEASE_SHARED() {
    if (lockdep::enabled()) lockdep::on_release(this);
    mu_.unlock_shared();
  }

  [[nodiscard]] const char* name() const { return name_; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] bool leaf() const { return leaf_; }

 private:
  std::shared_mutex mu_;  // srclint-ok: conc-raw-mutex (this IS the ranked wrapper)
  int rank_;
  bool leaf_;
  const char* name_;
};

/// RAII exclusive guard over a RankedMutex, understood by the Clang
/// thread-safety analysis. Captures the guard's construction site as
/// the acquisition site.
class ECOHMEM_SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(RankedMutex& mu,
                      const std::source_location& where = std::source_location::current())
      ECOHMEM_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(where);
  }

  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

  ~ScopedLock() ECOHMEM_RELEASE_GENERIC() { mu_.unlock(); }

 private:
  RankedMutex& mu_;
};

/// RAII exclusive guard over a RankedSharedMutex (writer side).
class ECOHMEM_SCOPED_CAPABILITY ScopedWriteLock {
 public:
  explicit ScopedWriteLock(RankedSharedMutex& mu,
                           const std::source_location& where = std::source_location::current())
      ECOHMEM_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(where);
  }

  ScopedWriteLock(const ScopedWriteLock&) = delete;
  ScopedWriteLock& operator=(const ScopedWriteLock&) = delete;

  ~ScopedWriteLock() ECOHMEM_RELEASE_GENERIC() { mu_.unlock(); }

 private:
  RankedSharedMutex& mu_;
};

/// RAII shared guard over a RankedSharedMutex (reader side).
class ECOHMEM_SCOPED_CAPABILITY SharedScopedLock {
 public:
  explicit SharedScopedLock(RankedSharedMutex& mu,
                            const std::source_location& where = std::source_location::current())
      ECOHMEM_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared(where);
  }

  SharedScopedLock(const SharedScopedLock&) = delete;
  SharedScopedLock& operator=(const SharedScopedLock&) = delete;

  ~SharedScopedLock() ECOHMEM_RELEASE_GENERIC() { mu_.unlock_shared(); }

 private:
  RankedSharedMutex& mu_;
};

}  // namespace ecohmem::common
