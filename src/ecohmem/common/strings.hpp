#pragma once

/// \file strings.hpp
/// Small string utilities shared by the config, report and trace parsers.

#include <string>
#include <string_view>
#include <vector>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem::strings {

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on `sep`, trimming each piece; empty pieces are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits on the literal separator string (used by the call-stack formats
/// of Table I, whose frame separator is " > ").
[[nodiscard]] std::vector<std::string> split(std::string_view s, std::string_view sep);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a non-negative integer; fails on trailing garbage.
[[nodiscard]] Expected<std::uint64_t> parse_u64(std::string_view s);

/// Parses a floating point number; fails on trailing garbage.
[[nodiscard]] Expected<double> parse_double(std::string_view s);

/// Parses a byte size with optional suffix: "12GB", "512MB", "64KB", "128B",
/// binary units ("GiB" etc.) and bare byte counts are accepted.
[[nodiscard]] Expected<Bytes> parse_bytes(std::string_view s);

/// Formats a byte count with a human-friendly binary suffix ("11.0 GiB").
[[nodiscard]] std::string format_bytes(Bytes n);

/// Case-sensitive printf-free hex formatting "0x1a2b".
[[nodiscard]] std::string to_hex(std::uint64_t v);

/// Parses "0x..." hexadecimal (or decimal without prefix).
[[nodiscard]] Expected<std::uint64_t> parse_hex(std::string_view s);

}  // namespace ecohmem::strings
