#include "ecohmem/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "ecohmem/common/rng.hpp"

namespace ecohmem {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::rsd() const { return mean_ != 0.0 ? stddev() / std::abs(mean_) : 0.0; }

double PercentileSampler::percentile(double p) const {
  if (values_.empty()) return 0.0;
  std::sort(values_.begin(), values_.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Rng::gaussian(double mean, double stddev) {
  // Box–Muller; discard the second variate for statelessness.
  const double u1 = std::max(next_double(), 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace ecohmem
