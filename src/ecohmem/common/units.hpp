#pragma once

/// \file units.hpp
/// Fundamental unit types and conversion helpers used across ecoHMEM.
///
/// Conventions (see DESIGN.md §6):
///  - sizes are bytes (`Bytes`, unsigned 64-bit)
///  - timestamps are nanoseconds of *simulated* time (`Ns`, unsigned 64-bit)
///  - latencies and durations used in arithmetic are `double` nanoseconds
///  - bandwidths are GB/s where 1 GB = 1e9 bytes

#include <cstdint>

namespace ecohmem {

using Bytes = std::uint64_t;
using Ns = std::uint64_t;
using Cycles = std::uint64_t;

/// Nominal core frequency of the reference platform (Xeon Platinum 8260L).
inline constexpr double kCoreGhz = 2.3;

inline constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ull; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return v * 1024ull * 1024ull; }
inline constexpr Bytes operator""_GiB(unsigned long long v) { return v * 1024ull * 1024ull * 1024ull; }

/// Converts a byte count moved over a duration into GB/s (1 GB = 1e9 B).
constexpr double bytes_per_ns_to_gbs(double bytes_per_ns) { return bytes_per_ns; }

/// Bandwidth in GB/s for `bytes` moved in `duration_ns` nanoseconds.
constexpr double bandwidth_gbs(double bytes, double duration_ns) {
  return duration_ns > 0.0 ? bytes / duration_ns : 0.0;
}

/// Converts simulated cycles at the nominal frequency into nanoseconds.
constexpr double cycles_to_ns(double cycles) { return cycles / kCoreGhz; }

/// Converts nanoseconds into simulated cycles at the nominal frequency.
constexpr double ns_to_cycles(double ns) { return ns * kCoreGhz; }

inline constexpr Ns operator""_us(unsigned long long v) { return v * 1000ull; }
inline constexpr Ns operator""_ms(unsigned long long v) { return v * 1000'000ull; }
inline constexpr Ns operator""_s(unsigned long long v) { return v * 1000'000'000ull; }

/// Cache-line size assumed by every cache model in memsim.
inline constexpr Bytes kCacheLine = 64;

/// Page size assumed by the DRAM-cache (memory mode) and tiering models.
inline constexpr Bytes kPageSize = 4096;

}  // namespace ecohmem
