#include "ecohmem/common/lockdep.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

namespace ecohmem::common::lockdep {

namespace {

/// One entry of the per-thread held-lock stack.
struct Held {
  const void* mutex = nullptr;
  const char* name = "?";
  int rank = 0;
  bool leaf = false;
  LockSite site;
};

thread_local std::vector<Held> t_held;

/// -1 = environment not consulted yet, 0 = off, 1 = on.
std::atomic<int> g_mode{-1};

std::atomic<Handler> g_handler{nullptr};

[[noreturn]] void default_handler_abort(const Violation& violation) {
  std::fprintf(stderr, "ecohmem lockdep: %s\n", violation.message.c_str());
  std::abort();
}

std::string site_str(const LockSite& site) {
  return std::string(site.file) + ":" + std::to_string(site.line);
}

void report(Violation violation) {
  const Handler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(violation);
  } else {
    default_handler_abort(violation);
  }
}

/// The global acquisition-order graph, at lock-*class* granularity
/// (like kernel lockdep): one observed "acquired B while holding A"
/// anywhere in the process adds edge A -> B; a cycle means two code
/// paths disagree about the order and could deadlock given the right
/// interleaving, even if neither run ever deadlocked.
struct Edge {
  int to = -1;
  LockSite held_site;       ///< where the source (held) lock was acquired
  LockSite acquired_site;   ///< where the target lock was acquired
};

struct Graph {
  // Internal bookkeeping lock. Deliberately raw: it is unranked (it
  // must never appear in its own graph) and a strict leaf — nothing is
  // called while it is held.
  std::mutex mu;  // srclint-ok: conc-raw-mutex (lockdep's own bookkeeping)
  std::map<std::string, int> ids;
  std::vector<std::string> names;
  std::vector<std::vector<Edge>> out;

  int id_of(const char* name) {
    const auto [it, inserted] = ids.emplace(name, static_cast<int>(names.size()));
    if (inserted) {
      names.emplace_back(name);
      out.emplace_back();
    }
    return it->second;
  }

  [[nodiscard]] bool has_edge(int from, int to) const {
    for (const auto& e : out[static_cast<std::size_t>(from)]) {
      if (e.to == to) return true;
    }
    return false;
  }

  /// DFS for a path from `from` to `to`; on success `into_target` is
  /// the recorded edge that enters `to` on the found path (the
  /// previously observed opposite-direction acquisition).
  bool find_path(int from, int to, std::vector<bool>& seen, Edge& into_target) const {
    if (seen[static_cast<std::size_t>(from)]) return false;
    seen[static_cast<std::size_t>(from)] = true;
    for (const auto& e : out[static_cast<std::size_t>(from)]) {
      if (e.to == to) {
        into_target = e;
        return true;
      }
      if (find_path(e.to, to, seen, into_target)) return true;
    }
    return false;
  }
};

Graph& graph() {
  static Graph g;
  return g;
}

}  // namespace

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kRankOrder: return "rank-order";
    case ViolationKind::kLeafNesting: return "leaf-nesting";
    case ViolationKind::kCycle: return "cycle";
    case ViolationKind::kNotHeld: return "not-held";
  }
  return "?";
}

bool enabled() {
  int mode = g_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    const char* env = std::getenv("ECOHMEM_LOCKDEP");
    const int from_env = (env != nullptr && env[0] == '1') ? 1 : 0;
    int expected = -1;
    g_mode.compare_exchange_strong(expected, from_env, std::memory_order_relaxed);
    mode = g_mode.load(std::memory_order_relaxed);
  }
  return mode == 1;
}

void set_enabled_for_testing(bool on) {
  g_mode.store(on ? 1 : 0, std::memory_order_relaxed);
}

Handler set_violation_handler(Handler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void reset_for_testing() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);  // srclint-ok: conc-raw-mutex
  g.ids.clear();
  g.names.clear();
  g.out.clear();
  t_held.clear();
}

std::size_t held_count() { return t_held.size(); }

void on_acquire(const void* mutex, const char* name, int rank, bool leaf,
                const std::source_location& where) {
  const LockSite site{where.file_name(), where.line()};

  if (!t_held.empty()) {
    // Leaf rule: the most restrictive — cite the first held leaf.
    for (const auto& held : t_held) {
      if (!held.leaf) continue;
      Violation v;
      v.kind = ViolationKind::kLeafNesting;
      v.acquiring = name;
      v.held = held.name;
      v.acquiring_site = site;
      v.held_site = held.site;
      v.message = "leaf-nesting violation: acquiring '" + std::string(name) + "' at " +
                  site_str(site) + " while holding leaf lock '" + held.name +
                  "' acquired at " + site_str(held.site) +
                  "; leaf locks admit no nested acquisition (docs/threading.md)";
      report(std::move(v));
      break;
    }

    // Rank rule: strictly increasing; cite the highest-ranked offender.
    const Held* worst = nullptr;
    for (const auto& held : t_held) {
      if (held.rank >= rank && (worst == nullptr || held.rank > worst->rank)) {
        worst = &held;
      }
    }
    if (worst != nullptr) {
      Violation v;
      v.kind = ViolationKind::kRankOrder;
      v.acquiring = name;
      v.held = worst->name;
      v.acquiring_site = site;
      v.held_site = worst->site;
      v.message = std::string(worst->mutex == mutex ? "recursive acquisition" : "rank-order violation") +
                  ": acquiring '" + name + "' (rank " + std::to_string(rank) + ") at " +
                  site_str(site) + " while holding '" + worst->name + "' (rank " +
                  std::to_string(worst->rank) + ") acquired at " + site_str(worst->site) +
                  "; acquisition order must be strictly rank-increasing (docs/threading.md)";
      report(std::move(v));
    }

    // Acquisition-order graph: record held-class -> acquiring-class
    // edges and refuse cycles. This is what catches inversions whose
    // two halves only ever execute on different threads.
    Graph& g = graph();
    std::lock_guard<std::mutex> lock(g.mu);  // srclint-ok: conc-raw-mutex
    const int to = g.id_of(name);
    for (const auto& held : t_held) {
      const int from = g.id_of(held.name);
      if (from == to || g.has_edge(from, to)) continue;
      std::vector<bool> seen(g.names.size(), false);
      Edge into_target;
      if (g.find_path(to, from, seen, into_target)) {
        Violation v;
        v.kind = ViolationKind::kCycle;
        v.acquiring = name;
        v.held = held.name;
        v.acquiring_site = site;
        v.held_site = into_target.acquired_site;
        v.message = "lock-order cycle: acquiring '" + std::string(name) + "' at " +
                    site_str(site) + " while holding '" + held.name + "' (acquired at " +
                    site_str(held.site) + "), but the opposite order was previously observed: '" +
                    g.names[static_cast<std::size_t>(into_target.to)] + "' acquired at " +
                    site_str(into_target.acquired_site) + " while holding a lock acquired at " +
                    site_str(into_target.held_site);
        report(std::move(v));
        continue;  // do not record the cycle-closing edge
      }
      g.out[static_cast<std::size_t>(from)].push_back(Edge{to, held.site, site});
    }
  }

  t_held.push_back(Held{mutex, name, rank, leaf, site});
}

void on_release(const void* mutex) {
  // std::mutex permits non-LIFO unlock orders, so search from the top.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mutex == mutex) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Unlock of a lock acquired before the validator was enabled: ignore.
}

void on_assert_held(const void* mutex, const char* name) {
  for (const auto& held : t_held) {
    if (held.mutex == mutex) return;
  }
  Violation v;
  v.kind = ViolationKind::kNotHeld;
  v.acquiring = name;
  v.held = "";
  v.message = "assert_held: '" + std::string(name) + "' is not held by this thread";
  report(std::move(v));
}

}  // namespace ecohmem::common::lockdep
