#include "ecohmem/common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ecohmem::strings {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split(std::string_view s, std::string_view sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(trim(s.substr(start)));
      break;
    }
    out.emplace_back(trim(s.substr(start, pos - start)));
    start = pos + sep.size();
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Expected<std::uint64_t> parse_u64(std::string_view s) {
  s = trim(s);
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    return unexpected("invalid unsigned integer: '" + std::string(s) + "'");
  }
  return v;
}

Expected<double> parse_double(std::string_view s) {
  s = trim(s);
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    return unexpected("invalid number: '" + std::string(s) + "'");
  }
  return v;
}

Expected<Bytes> parse_bytes(std::string_view raw) {
  const std::string_view s = trim(raw);
  std::size_t unit_pos = s.size();
  while (unit_pos > 0 && (std::isalpha(static_cast<unsigned char>(s[unit_pos - 1])) != 0)) --unit_pos;
  const std::string_view num = trim(s.substr(0, unit_pos));
  const std::string_view unit = s.substr(unit_pos);

  const auto value = parse_double(num);
  if (!value) return unexpected("invalid byte size: '" + std::string(raw) + "'");
  if (*value < 0.0) return unexpected("negative byte size: '" + std::string(raw) + "'");

  double scale = 1.0;
  if (unit.empty() || unit == "B") {
    scale = 1.0;
  } else if (unit == "KB" || unit == "KiB" || unit == "K" || unit == "kB") {
    scale = 1024.0;
  } else if (unit == "MB" || unit == "MiB" || unit == "M") {
    scale = 1024.0 * 1024.0;
  } else if (unit == "GB" || unit == "GiB" || unit == "G") {
    scale = 1024.0 * 1024.0 * 1024.0;
  } else if (unit == "TB" || unit == "TiB" || unit == "T") {
    scale = 1024.0 * 1024.0 * 1024.0 * 1024.0;
  } else {
    return unexpected("unknown size unit: '" + std::string(unit) + "'");
  }
  return static_cast<Bytes>(std::llround(*value * scale));
}

std::string format_bytes(Bytes n) {
  static constexpr const char* kSuffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(n);
  int i = 0;
  while (v >= 1024.0 && i < 4) {
    v /= 1024.0;
    ++i;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), i == 0 ? "%.0f %s" : "%.1f %s", v, kSuffix[i]);
  return buf;
}

std::string to_hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

Expected<std::uint64_t> parse_hex(std::string_view s) {
  s = trim(s);
  int base = 10;
  if (starts_with(s, "0x") || starts_with(s, "0X")) {
    s.remove_prefix(2);
    base = 16;
  }
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v, base);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    return unexpected("invalid hex value: '" + std::string(s) + "'");
  }
  return v;
}

}  // namespace ecohmem::strings
