#include "ecohmem/common/config.hpp"

#include <fstream>
#include <sstream>

#include "ecohmem/common/strings.hpp"

namespace ecohmem {

void ConfigSection::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool ConfigSection::has(std::string_view key) const { return entries_.find(key) != entries_.end(); }

std::optional<std::string> ConfigSection::get(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

Expected<std::string> ConfigSection::get_string(std::string_view key, std::string def) const {
  const auto v = get(key);
  return v ? *v : std::move(def);
}

Expected<double> ConfigSection::get_double(std::string_view key, double def) const {
  const auto v = get(key);
  if (!v) return def;
  auto parsed = strings::parse_double(*v);
  if (!parsed) return unexpected("key '" + std::string(key) + "': " + parsed.error());
  return *parsed;
}

Expected<std::uint64_t> ConfigSection::get_u64(std::string_view key, std::uint64_t def) const {
  const auto v = get(key);
  if (!v) return def;
  auto parsed = strings::parse_u64(*v);
  if (!parsed) return unexpected("key '" + std::string(key) + "': " + parsed.error());
  return *parsed;
}

Expected<Bytes> ConfigSection::get_bytes(std::string_view key, Bytes def) const {
  const auto v = get(key);
  if (!v) return def;
  auto parsed = strings::parse_bytes(*v);
  if (!parsed) return unexpected("key '" + std::string(key) + "': " + parsed.error());
  return *parsed;
}

Expected<bool> ConfigSection::get_bool(std::string_view key, bool def) const {
  const auto v = get(key);
  if (!v) return def;
  const std::string_view s = strings::trim(*v);
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  return unexpected("key '" + std::string(key) + "': invalid boolean '" + std::string(s) + "'");
}

Expected<Config> Config::parse(std::string_view text) {
  Config cfg;
  ConfigSection* current = &cfg.global_;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    const std::string_view raw =
        text.substr(start, end == std::string_view::npos ? std::string_view::npos : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;

    const std::string_view line = strings::trim(raw);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        return unexpected("line " + std::to_string(line_no) + ": unterminated section header");
      }
      const std::string_view name = strings::trim(line.substr(1, line.size() - 2));
      if (name.empty()) {
        return unexpected("line " + std::to_string(line_no) + ": empty section name");
      }
      current = &cfg.add_section(std::string(name));
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return unexpected("line " + std::to_string(line_no) + ": expected 'key = value'");
    }
    const std::string_view key = strings::trim(line.substr(0, eq));
    const std::string_view value = strings::trim(line.substr(eq + 1));
    if (key.empty()) {
      return unexpected("line " + std::to_string(line_no) + ": empty key");
    }
    current->set(std::string(key), std::string(value));
  }
  return cfg;
}

Expected<Config> Config::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return unexpected("cannot open config file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

std::vector<const ConfigSection*> Config::sections_named(std::string_view name) const {
  std::vector<const ConfigSection*> out;
  for (const auto& s : sections_) {
    if (s.name() == name) out.push_back(&s);
  }
  return out;
}

const ConfigSection* Config::first_section(std::string_view name) const {
  for (const auto& s : sections_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

ConfigSection& Config::add_section(std::string name) {
  sections_.emplace_back(std::move(name));
  return sections_.back();
}

std::string Config::to_string() const {
  std::ostringstream out;
  for (const auto& [k, v] : global_.entries()) out << k << " = " << v << '\n';
  for (const auto& s : sections_) {
    out << '[' << s.name() << "]\n";
    for (const auto& [k, v] : s.entries()) out << k << " = " << v << '\n';
  }
  return out.str();
}

}  // namespace ecohmem
