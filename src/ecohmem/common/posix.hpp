#pragma once

/// \file posix.hpp
/// Thin POSIX wrappers for the serving layer: an owning file
/// descriptor, EINTR-safe whole-buffer I/O, and unix-domain socket
/// setup. Everything reports failures through `Expected`/`Status`
/// (errno rendered into the message) — no exceptions, no globals.
///
/// Kept deliberately small: the daemon (docs/serving.md) needs exactly
/// listen/accept/connect on `AF_UNIX` stream sockets, full reads and
/// writes for length-prefixed frames, and a self-pipe for signal-safe
/// shutdown. Anything fancier belongs in the serve subsystem itself.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "ecohmem/common/expected.hpp"

namespace ecohmem::common::posix {

/// Longest socket path accepted by `bind(2)` for `sockaddr_un` on this
/// platform (the buffer must also hold the terminating NUL).
[[nodiscard]] std::size_t max_socket_path();

/// An owning file descriptor. Move-only; closes on destruction
/// (EINTR-tolerant). A default-constructed instance holds nothing.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept;
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { reset(); }

  /// The wrapped descriptor, -1 when empty.
  [[nodiscard]] int get() const { return fd_; }

  /// True when a descriptor is held.
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Closes the held descriptor (if any) and adopts `fd`.
  void reset(int fd = -1);

  /// Releases ownership without closing.
  [[nodiscard]] int release() { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

/// Reads exactly `size` bytes, retrying on EINTR and short reads.
/// Fails on I/O errors and on end-of-stream before `size` bytes
/// ("unexpected EOF"), which is how a frame reader distinguishes a
/// clean close (first byte already missing — see `read_full_or_eof`)
/// from a truncated frame.
[[nodiscard]] Status read_full(int fd, void* data, std::size_t size);

/// Like `read_full`, but end-of-stream *before the first byte* returns
/// false instead of failing; true means the buffer is complete.
[[nodiscard]] Expected<bool> read_full_or_eof(int fd, void* data, std::size_t size);

/// Writes exactly `size` bytes, retrying on EINTR and short writes.
[[nodiscard]] Status write_full(int fd, const void* data, std::size_t size);

/// `write_full` for sockets: uses send(MSG_NOSIGNAL) so a peer that hung
/// up yields an EPIPE error instead of a process-killing SIGPIPE.
[[nodiscard]] Status send_full(int fd, const void* data, std::size_t size);

/// Creates a unix-domain stream socket listening on `path`. Any stale
/// socket file at `path` is removed first (daemons own their socket
/// path). `backlog` caps pending connections.
[[nodiscard]] Expected<UniqueFd> listen_unix(const std::string& path, int backlog = 16);

/// Accepts one connection from a listening socket. Retries on EINTR.
[[nodiscard]] Expected<UniqueFd> accept_unix(int listen_fd);

/// Connects to the unix-domain socket at `path`.
[[nodiscard]] Expected<UniqueFd> connect_unix(const std::string& path);

/// A self-pipe pair: `write_one_byte()` is async-signal-safe, so a
/// signal handler can wake a `poll` on `read_fd()` without touching
/// locks or the heap.
class WakePipe {
 public:
  /// Builds the pipe (O_NONBLOCK on both ends).
  [[nodiscard]] static Expected<WakePipe> create();

  [[nodiscard]] int read_fd() const { return read_end_.get(); }

  /// Signals the pipe. Async-signal-safe; a full pipe is fine (the
  /// wakeup is already pending).
  void write_one_byte() const;

  /// Drains pending wakeup bytes (call after poll reports readable).
  void drain() const;

 private:
  UniqueFd read_end_;
  UniqueFd write_end_;
};

}  // namespace ecohmem::common::posix
