#pragma once

/// \file config.hpp
/// INI-style configuration files, the format used by the HMem Advisor and
/// FlexMalloc configuration in the ecoHMEM workflow.
///
/// Grammar:
///   - `# comment` and `; comment` lines are ignored
///   - `[section]` opens a section; repeated sections with the same name
///     are kept as separate instances (the Advisor config has one
///     `[memory]` section per tier)
///   - `key = value` pairs belong to the most recent section; pairs before
///     any section header belong to the unnamed global section ""

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem {

/// One `[section]` instance with its key/value pairs.
class ConfigSection {
 public:
  ConfigSection() = default;
  explicit ConfigSection(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  void set(std::string key, std::string value);

  [[nodiscard]] bool has(std::string_view key) const;
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;

  /// Typed getters returning a parse error when the key is present but
  /// malformed, and the provided default when absent.
  [[nodiscard]] Expected<std::string> get_string(std::string_view key, std::string def = {}) const;
  [[nodiscard]] Expected<double> get_double(std::string_view key, double def) const;
  [[nodiscard]] Expected<std::uint64_t> get_u64(std::string_view key, std::uint64_t def) const;
  [[nodiscard]] Expected<Bytes> get_bytes(std::string_view key, Bytes def) const;
  [[nodiscard]] Expected<bool> get_bool(std::string_view key, bool def) const;

  [[nodiscard]] const std::map<std::string, std::string, std::less<>>& entries() const {
    return entries_;
  }

 private:
  std::string name_;
  std::map<std::string, std::string, std::less<>> entries_;
};

/// A parsed configuration file: an ordered list of section instances.
class Config {
 public:
  /// Parses config text; returns a message with a line number on error.
  [[nodiscard]] static Expected<Config> parse(std::string_view text);

  /// Reads and parses a file.
  [[nodiscard]] static Expected<Config> load(const std::string& path);

  /// The unnamed global section (always present, possibly empty).
  [[nodiscard]] const ConfigSection& global() const { return global_; }
  [[nodiscard]] ConfigSection& global() { return global_; }

  /// All section instances, in file order.
  [[nodiscard]] const std::vector<ConfigSection>& sections() const { return sections_; }

  /// All instances of sections named `name`, in file order.
  [[nodiscard]] std::vector<const ConfigSection*> sections_named(std::string_view name) const;

  /// First instance of `name`, or nullptr.
  [[nodiscard]] const ConfigSection* first_section(std::string_view name) const;

  ConfigSection& add_section(std::string name);

  /// Serializes back to config-file text.
  [[nodiscard]] std::string to_string() const;

 private:
  ConfigSection global_;
  std::vector<ConfigSection> sections_;
};

}  // namespace ecohmem
