/// \file faultinject.cpp
/// Deterministic fault injection (see faultinject.hpp).

#include "ecohmem/common/faultinject.hpp"

#include <algorithm>
#include <cstring>

#include "ecohmem/common/rng.hpp"

namespace ecohmem::faultinject {

std::vector<unsigned char> apply(const std::vector<unsigned char>& bytes, const Fault& fault) {
  std::vector<unsigned char> out = bytes;
  if (fault.offset >= out.size()) return out;
  switch (fault.kind) {
    case FaultKind::kBitFlip:
      out[static_cast<std::size_t>(fault.offset)] ^=
          static_cast<unsigned char>(1u << (fault.bit & 7u));
      break;
    case FaultKind::kTruncate:
      out.resize(static_cast<std::size_t>(fault.offset));
      break;
    case FaultKind::kGarble: {
      Rng noise(fault.seed ^ 0x9e3779b97f4a7c15ULL);
      const std::size_t end = static_cast<std::size_t>(
          std::min<std::uint64_t>(out.size(), fault.offset + std::max<std::uint64_t>(fault.length, 1)));
      for (std::size_t i = static_cast<std::size_t>(fault.offset); i < end; ++i) {
        out[i] = static_cast<unsigned char>(noise.next_u64() & 0xff);
      }
      break;
    }
  }
  return out;
}

Landmarks landmarks_v3(const std::vector<unsigned char>& bytes, std::uint64_t events_offset) {
  Landmarks lm;
  lm.file_size = bytes.size();
  lm.events_offset = events_offset;
  constexpr std::size_t kTrailer = 24;
  if (bytes.size() < kTrailer) return lm;
  const unsigned char* trailer = bytes.data() + bytes.size() - kTrailer;
  if (std::memcmp(trailer + 16, "ECOHMIDX", 8) != 0) return lm;
  std::uint64_t entry_count = 0;
  std::uint64_t footer_offset = 0;
  std::memcpy(&entry_count, trailer, 8);
  std::memcpy(&footer_offset, trailer + 8, 8);
  lm.trailer_offset = bytes.size() - kTrailer;
  if (footer_offset > lm.trailer_offset ||
      entry_count * 24 != lm.trailer_offset - footer_offset) {
    return lm;
  }
  lm.footer_offset = footer_offset;
  lm.block_offsets.reserve(static_cast<std::size_t>(entry_count));
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    std::uint64_t off = 0;
    std::memcpy(&off, bytes.data() + footer_offset + i * 24, 8);
    lm.block_offsets.push_back(off);
  }
  return lm;
}

std::vector<Fault> schedule(const Landmarks& lm, std::uint64_t seed, std::size_t count) {
  // Candidate targets: (label, region begin, region end). A fault picks
  // a target round-robin-weighted by the Rng, then an offset inside it.
  struct Target {
    const char* label;
    std::uint64_t begin;
    std::uint64_t end;  // exclusive
  };
  std::vector<Target> targets;
  const std::uint64_t events_end = lm.footer_offset != 0 ? lm.footer_offset : lm.file_size;
  if (lm.events_offset < events_end) {
    targets.push_back({"event section", lm.events_offset, events_end});
  }
  for (std::size_t b = 0; b < lm.block_offsets.size(); ++b) {
    const std::uint64_t begin = lm.block_offsets[b];
    const std::uint64_t end =
        b + 1 < lm.block_offsets.size() ? lm.block_offsets[b + 1] : events_end;
    if (begin < end && end <= lm.file_size) targets.push_back({"block body", begin, end});
  }
  if (lm.footer_offset != 0 && lm.footer_offset < lm.trailer_offset) {
    targets.push_back({"index entry", lm.footer_offset, lm.trailer_offset});
  }
  if (lm.trailer_offset != 0) {
    targets.push_back({"index trailer", lm.trailer_offset, lm.file_size});
  }
  if (lm.events_offset > 8) {
    // The last 8 header bytes are the event-count field (codec layout);
    // flipping them tests count/file disagreement handling.
    targets.push_back({"header count field", lm.events_offset - 8, lm.events_offset});
  }
  if (targets.empty()) targets.push_back({"whole file", 0, std::max<std::uint64_t>(lm.file_size, 1)});

  Rng rng(seed);
  std::vector<Fault> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Target& t = targets[static_cast<std::size_t>(rng.next_below(targets.size()))];
    Fault f;
    f.offset = t.begin + rng.next_below(std::max<std::uint64_t>(t.end - t.begin, 1));
    f.label = t.label;
    switch (rng.next_below(4)) {
      case 0:
        f.kind = FaultKind::kBitFlip;
        f.bit = static_cast<std::uint32_t>(rng.next_below(8));
        f.label += " bit flip";
        break;
      case 1:
        f.kind = FaultKind::kTruncate;
        f.label += " truncation";
        break;
      case 2:
        f.kind = FaultKind::kGarble;
        f.length = 1 + rng.next_below(16);
        f.seed = rng.next_u64();
        f.label += " garble";
        break;
      default:
        // Double bit flip in one byte: exercises multi-bit damage that
        // checksum-free formats can only catch structurally.
        f.kind = FaultKind::kBitFlip;
        f.bit = static_cast<std::uint32_t>(rng.next_below(8));
        f.label += " bit flip";
        break;
    }
    out.push_back(std::move(f));
  }
  return out;
}

// --------------------------------------------------------------------------
// FailingStream

/// A streambuf that serves `bytes` until `fail_at`, then throws from
/// underflow(). The owning istream is constructed with exceptions
/// masked off, so the throw surfaces as badbit — the only portable way
/// to make a std::istream go bad mid-read on demand.
class FailingStream::Buf : public std::streambuf {
 public:
  Buf(std::string bytes, std::size_t fail_at) : bytes_(std::move(bytes)), fail_at_(fail_at) {}

 protected:
  int_type underflow() override {
    // fail_at >= size means the device never fails: clean EOF.
    const std::size_t limit = std::min(fail_at_, bytes_.size());
    if (pos_ >= limit) {
      if (pos_ >= fail_at_) throw std::ios_base::failure("injected device error");
      return traits_type::eof();
    }
    // Serve small runs so a multi-chunk reader crosses the failure
    // point mid-loop rather than in the first fill.
    const std::size_t run = std::min<std::size_t>(limit - pos_, 4096);
    setg(bytes_.data() + pos_, bytes_.data() + pos_, bytes_.data() + pos_ + run);
    pos_ += run;
    return traits_type::to_int_type(*gptr());
  }

 private:
  std::string bytes_;
  std::size_t fail_at_;
  std::size_t pos_ = 0;
};

FailingStream::FailingStream(std::string bytes, std::size_t fail_at)
    : std::istream(nullptr), buf_(std::make_unique<Buf>(std::move(bytes), fail_at)) {
  rdbuf(buf_.get());
}

FailingStream::~FailingStream() = default;

}  // namespace ecohmem::faultinject
