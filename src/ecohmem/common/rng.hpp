#pragma once

/// \file rng.hpp
/// Deterministic random number generation (xoshiro256**).
///
/// Every stochastic component in ecoHMEM (PEBS sampling, per-rank jitter,
/// ASLR bases) draws from an explicitly seeded `Rng` so that traces,
/// placements and benchmark rows are bit-reproducible run to run.

#include <cstdint>

namespace ecohmem {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) (bound > 0); unbiased via rejection.
  std::uint64_t next_below(std::uint64_t bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Gaussian via Box–Muller (one value per call; no caching).
  double gaussian(double mean, double stddev);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace ecohmem
