#include "ecohmem/common/posix.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ecohmem::common::posix {

namespace {

[[nodiscard]] std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

std::size_t max_socket_path() {
  return sizeof(sockaddr_un{}.sun_path) - 1;
}

UniqueFd& UniqueFd::operator=(UniqueFd&& other) noexcept {
  if (this != &other) reset(std::exchange(other.fd_, -1));
  return *this;
}

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) {
    // POSIX leaves the descriptor state unspecified after EINTR from
    // close(2); Linux guarantees it is closed, so do not retry.
    ::close(fd_);
  }
  fd_ = fd;
}

Status read_full(int fd, void* data, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, p + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return unexpected(errno_message("read"));
    }
    if (n == 0) return unexpected("unexpected EOF");
    done += static_cast<std::size_t>(n);
  }
  return {};
}

Expected<bool> read_full_or_eof(int fd, void* data, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, p + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return unexpected(errno_message("read"));
    }
    if (n == 0) {
      if (done == 0) return false;  // clean EOF on a frame boundary
      return unexpected("unexpected EOF");
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

Status write_full(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, p + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return unexpected(errno_message("write"));
    }
    done += static_cast<std::size_t>(n);
  }
  return {};
}

Status send_full(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd, p + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return unexpected(errno_message("send"));
    }
    done += static_cast<std::size_t>(n);
  }
  return {};
}

namespace {

[[nodiscard]] Expected<sockaddr_un> make_unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty()) return unexpected("socket path is empty");
  if (path.size() > max_socket_path()) {
    return unexpected("socket path too long (" + std::to_string(path.size()) + " > " +
                      std::to_string(max_socket_path()) + "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Expected<UniqueFd> listen_unix(const std::string& path, int backlog) {
  auto addr = make_unix_address(path);
  if (!addr) return unexpected(addr.error());

  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return unexpected(errno_message("socket"));

  ::unlink(path.c_str());  // stale socket from a previous daemon
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) != 0) {
    return unexpected(errno_message(("bind " + path).c_str()));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return unexpected(errno_message("listen"));
  }
  return fd;
}

Expected<UniqueFd> accept_unix(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return UniqueFd(fd);
    if (errno == EINTR) continue;
    return unexpected(errno_message("accept"));
  }
}

Expected<UniqueFd> connect_unix(const std::string& path) {
  auto addr = make_unix_address(path);
  if (!addr) return unexpected(addr.error());

  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return unexpected(errno_message("socket"));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) != 0) {
    return unexpected(errno_message(("connect " + path).c_str()));
  }
  return fd;
}

Expected<WakePipe> WakePipe::create() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) return unexpected(errno_message("pipe"));
  WakePipe pipe;
  pipe.read_end_.reset(fds[0]);
  pipe.write_end_.reset(fds[1]);
  for (const int fd : fds) {
    const int flags = ::fcntl(fd, F_GETFL);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
      return unexpected(errno_message("fcntl"));
    }
  }
  return pipe;
}

void WakePipe::write_one_byte() const {
  const char byte = 1;
  // Best effort: EAGAIN means a wakeup is already pending.
  [[maybe_unused]] const ssize_t n = ::write(write_end_.get(), &byte, 1);
}

void WakePipe::drain() const {
  char buf[64];
  while (::read(read_end_.get(), buf, sizeof buf) > 0) {
  }
}

}  // namespace ecohmem::common::posix
