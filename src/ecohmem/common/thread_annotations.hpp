#pragma once

/// \file thread_annotations.hpp
/// Clang thread-safety-analysis macros (docs/threading.md).
///
/// The locking contracts of the concurrent layers — FlexMalloc's leaf
/// mutexes, the match-cache shards, the worker pool's phase hand-off —
/// are machine-checked at compile time by Clang's `-Wthread-safety`
/// analysis. The `clang-tsa` CMake preset builds the tree with the
/// analysis promoted to an error; under GCC (which has no equivalent
/// analysis) every macro expands to nothing, so the annotations cost
/// nothing outside that preset.
///
/// Usage mirrors the upstream Clang/Abseil idiom:
///
///   class ECOHMEM_CAPABILITY("mutex") RankedMutex { ... };
///
///   common::RankedMutex mu_;
///   std::map<K, V> live_ ECOHMEM_GUARDED_BY(mu_);
///
///   void drain() ECOHMEM_REQUIRES(mu_);   // caller must hold mu_
///
/// The capability-bearing types live in lockdep.hpp (`RankedMutex`,
/// `RankedSharedMutex`) together with the scoped guards the analysis
/// understands (`ScopedLock`, `SharedScopedLock`). New mutex-protected
/// state must carry `ECOHMEM_GUARDED_BY`; see the annotation how-to in
/// docs/threading.md.

#if defined(__clang__) && (!defined(SWIG))
#define ECOHMEM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ECOHMEM_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability (a mutex-like type).
#define ECOHMEM_CAPABILITY(x) ECOHMEM_THREAD_ANNOTATION(capability(x))

/// Marks a class as a scoped (RAII) capability guard.
#define ECOHMEM_SCOPED_CAPABILITY ECOHMEM_THREAD_ANNOTATION(scoped_lockable)

/// Data member is protected by the given capability.
#define ECOHMEM_GUARDED_BY(x) ECOHMEM_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data is protected by the given capability.
#define ECOHMEM_PT_GUARDED_BY(x) ECOHMEM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held (exclusively / shared).
#define ECOHMEM_REQUIRES(...) \
  ECOHMEM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ECOHMEM_REQUIRES_SHARED(...) \
  ECOHMEM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability.
#define ECOHMEM_ACQUIRE(...) \
  ECOHMEM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ECOHMEM_ACQUIRE_SHARED(...) \
  ECOHMEM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define ECOHMEM_RELEASE(...) \
  ECOHMEM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ECOHMEM_RELEASE_SHARED(...) \
  ECOHMEM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define ECOHMEM_RELEASE_GENERIC(...) \
  ECOHMEM_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// try_lock-style function: acquires the capability when it returns
/// the given value.
#define ECOHMEM_TRY_ACQUIRE(...) \
  ECOHMEM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ECOHMEM_TRY_ACQUIRE_SHARED(...) \
  ECOHMEM_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called while holding the capability.
#define ECOHMEM_EXCLUDES(...) ECOHMEM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability; the
/// analysis treats the capability as held afterwards. Used to inform
/// the analysis inside condition-variable wait predicates, where the
/// lock is held by contract but the analysis cannot prove it.
#define ECOHMEM_ASSERT_CAPABILITY(x) \
  ECOHMEM_THREAD_ANNOTATION(assert_capability(x))
#define ECOHMEM_ASSERT_SHARED_CAPABILITY(x) \
  ECOHMEM_THREAD_ANNOTATION(assert_shared_capability(x))

/// Function returns a reference to the given capability.
#define ECOHMEM_RETURN_CAPABILITY(x) ECOHMEM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions the analysis cannot follow (e.g. the
/// worker pool's condition-variable phase hand-off). Use sparingly and
/// say why at the use site.
#define ECOHMEM_NO_THREAD_SAFETY_ANALYSIS \
  ECOHMEM_THREAD_ANNOTATION(no_thread_safety_analysis)
