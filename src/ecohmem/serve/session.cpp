#include "ecohmem/serve/session.hpp"

#include <algorithm>
#include <utility>

namespace ecohmem::serve {

Session::Session(std::uint64_t id, trace::codec::HeaderInfo header, SessionOptions options)
    : id_(id),
      header_(std::move(header)),
      options_(std::move(options)),
      store_(header_.stacks, header_.functions, options_.analyzer) {
  applier_ = std::thread([this] { applier_loop(); });
}

Session::~Session() {
  {
    common::ScopedLock lock(queue_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  applier_.join();
}

Session::Enqueue Session::enqueue_block(std::vector<trace::Event> events) {
  {
    common::ScopedLock lock(queue_mu_);
    if (stopping_) return Enqueue::kClosed;
    if (queue_.size() >= options_.queue_blocks) return Enqueue::kBusy;
    queue_.push_back(std::move(events));
    ++accepted_blocks_;
  }
  work_cv_.notify_one();
  return Enqueue::kAccepted;
}

void Session::note_dropped_block(std::uint64_t declared_events) {
  common::ScopedLock lock(store_mu_);
  ++dropped_blocks_;
  dropped_events_ += declared_events;
}

void Session::applier_loop() {
  for (;;) {
    std::vector<trace::Event> block;
    {
      common::ScopedLock lock(queue_mu_);
      work_cv_.wait(queue_mu_, [this] {
        queue_mu_.assert_held();
        return stopping_ || !queue_.empty();
      });
      // Drain semantics: keep applying until the queue is empty even
      // when stopping — accepted blocks are never dropped.
      if (queue_.empty()) return;
      block = std::move(queue_.front());
      queue_.pop_front();
    }
    if (options_.before_apply) options_.before_apply();
    {
      common::ScopedLock lock(store_mu_);
      // A failed ingest poisons the store; later blocks keep the
      // sticky error (snapshot() reports it), but the queue still
      // drains so flush waiters never hang.
      (void)store_.ingest(block);
      ++epoch_;
    }
    {
      common::ScopedLock lock(queue_mu_);
      ++applied_blocks_;
    }
    applied_cv_.notify_all();
  }
}

void Session::flush() {
  common::ScopedLock lock(queue_mu_);
  const std::uint64_t target = accepted_blocks_;
  applied_cv_.wait(queue_mu_, [this, target] {
    queue_mu_.assert_held();
    return applied_blocks_ >= target;
  });
}

Expected<Session::Snapshot> Session::snapshot() {
  // Flush barrier: every block accepted before this call must be
  // applied. Blocks accepted *during* the wait may also land — the
  // snapshot is then simply a later consistent prefix.
  flush();

  common::ScopedLock lock(store_mu_);
  if (!store_.error().empty()) return unexpected(store_.error());
  if (cached_ != nullptr && cached_epoch_ == epoch_) {
    return Snapshot{epoch_, store_.events_ingested(), cached_};
  }
  trace::TraceCoverage coverage;
  coverage.events_seen = store_.events_ingested();
  coverage.events_declared = store_.events_ingested() + dropped_events_;
  coverage.salvaged = dropped_blocks_ > 0;
  auto analysis = store_.finalize(coverage);
  if (!analysis) return unexpected(analysis.error());
  cached_ = std::make_shared<const analyzer::AnalysisResult>(std::move(*analysis));
  cached_epoch_ = epoch_;
  return Snapshot{epoch_, store_.events_ingested(), cached_};
}

SessionStats Session::stats() {
  SessionStats out;
  out.session_id = id_;
  out.attached_clients = attach_count_.load(std::memory_order_relaxed);
  {
    common::ScopedLock lock(queue_mu_);
    out.blocks_accepted = accepted_blocks_;
    out.queue_depth = static_cast<std::uint32_t>(queue_.size());
  }
  {
    common::ScopedLock lock(store_mu_);
    out.epoch = epoch_;
    out.blocks_dropped = dropped_blocks_;
    out.events_seen = store_.events_ingested();
    out.events_declared = store_.events_ingested() + dropped_events_;
    out.error = store_.error();
  }
  return out;
}

SessionManager::SessionManager(SessionOptions defaults, std::size_t max_sessions)
    : defaults_(std::move(defaults)), max_sessions_(max_sessions) {}

Expected<std::shared_ptr<Session>> SessionManager::create(trace::codec::HeaderInfo header) {
  if (count_.load(std::memory_order_relaxed) >= max_sessions_) {
    return unexpected("session limit reached (" + std::to_string(max_sessions_) + ")");
  }
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto session = std::make_shared<Session>(id, std::move(header), defaults_);
  Shard& shard = shard_of(id);
  {
    common::ScopedWriteLock lock(shard.mu);
    shard.sessions.emplace(id, session);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  return session;
}

std::shared_ptr<Session> SessionManager::find(std::uint64_t id) {
  Shard& shard = shard_of(id);
  common::SharedScopedLock lock(shard.mu);
  const auto it = shard.sessions.find(id);
  return it == shard.sessions.end() ? nullptr : it->second;
}

bool SessionManager::erase(std::uint64_t id) {
  std::shared_ptr<Session> victim;  // destroyed after the lock drops
  Shard& shard = shard_of(id);
  {
    common::ScopedWriteLock lock(shard.mu);
    const auto it = shard.sessions.find(id);
    if (it == shard.sessions.end()) return false;
    victim = std::move(it->second);
    shard.sessions.erase(it);
  }
  count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

std::vector<std::shared_ptr<Session>> SessionManager::all() {
  std::vector<std::shared_ptr<Session>> out;
  for (auto& shard : shards_) {
    common::SharedScopedLock lock(shard.mu);
    // srclint-ok: det-unordered-iter (sorted by id below)
    for (const auto& [id, session] : shard.sessions) {
      (void)id;
      out.push_back(session);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) { return a->id() < b->id(); });
  return out;
}

}  // namespace ecohmem::serve
