#pragma once

/// \file protocol.hpp
/// Wire protocol of the `ecohmem-serve` daemon — the byte-level codec
/// behind docs/serving.md, which is the normative spec (frame layout
/// tables, state machine, error semantics). Keep the two in sync.
///
/// Every frame is a little-endian length-prefixed envelope:
///
///     u32 length   — bytes that follow (type + payload), >= 1
///     u8  type     — FrameType
///     u8[length-1] — payload, layout per type
///
/// Payloads reuse the trace codec primitives (trace/codec.hpp): fixed
/// little-endian scalars via `codec::put`, length-prefixed strings via
/// `codec::put_string`. The HELLO payload embeds a verbatim v3 trace
/// header (`codec::encode_header`) and INGEST_BLOCK carries a verbatim
/// v3 event block (compact codec, per-block delta base 0) — a daemon
/// session speaks the same bytes a v3 trace file stores.
///
/// Decoders are strict: unknown types, short payloads and trailing
/// bytes are all `kMalformedFrame`-class errors. The *server* is
/// salvage-tolerant one level up — a bad INGEST_BLOCK body drops the
/// block and degrades coverage instead of killing the session
/// (docs/serving.md §errors).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ecohmem/advisor/advisor_config.hpp"
#include "ecohmem/common/expected.hpp"

namespace ecohmem::serve {

/// Protocol revision negotiated in HELLO. Bumped on any incompatible
/// frame-layout change.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Default ceiling on `length` (type byte + payload). Frames above the
/// negotiated ceiling are rejected with `kFrameTooLarge`.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 16u << 20;

/// Frame types. Client-to-server types have the high bit clear,
/// server-to-client replies have it set; 0xE0+ are error-channel
/// replies valid in any state.
enum class FrameType : std::uint8_t {
  // client -> server
  kHello = 0x01,           ///< open/attach a session (first frame, exactly once)
  kIngestBlock = 0x02,     ///< one v3 event block for the session store
  kQueryPlacement = 0x03,  ///< run the Advisor against a snapshot
  kSnapshot = 0x04,        ///< fetch the per-site CSV of a snapshot
  kStats = 0x05,           ///< session/ingest counters
  kBye = 0x06,             ///< orderly close
  // server -> client
  kHelloOk = 0x81,       ///< session opened/attached
  kBlockOk = 0x82,       ///< block accepted into the ingest queue
  kReport = 0x83,        ///< placement report text
  kSnapshotData = 0x84,  ///< per-site CSV text
  kStatsData = 0x85,     ///< counters
  kByeOk = 0x86,         ///< goodbye acknowledged, server closes after
  kError = 0xE0,         ///< ErrorReply payload
  kBusy = 0xE1,          ///< ingest queue full — backpressure, resend later
};

/// `FrameType` name for diagnostics ("HELLO", "BLOCK_OK", ...);
/// "?" for unknown values.
[[nodiscard]] const char* to_string(FrameType type);

/// Error codes carried by `kError` replies (docs/serving.md lists the
/// close-vs-continue behavior per code).
enum class ErrorCode : std::uint16_t {
  kMalformedFrame = 1,   ///< envelope/payload undecodable — connection closes
  kUnknownType = 2,      ///< unrecognized frame type — connection closes
  kBadSequence = 3,      ///< frame illegal in this session state — connection closes
  kBadBlock = 4,         ///< INGEST_BLOCK body undecodable — block dropped, session continues
  kSessionPoisoned = 5,  ///< session store hit a semantic error; queries keep failing
  kShuttingDown = 6,     ///< daemon draining — connection closes after this reply
  kFrameTooLarge = 7,    ///< length exceeds the negotiated ceiling — connection closes
  kNoSuchSession = 8,    ///< HELLO attach to an unknown session id — connection closes
  kBadConfig = 9,        ///< QUERY_PLACEMENT tier list invalid — session continues
  kInternal = 10,        ///< unexpected server-side failure
};

/// Stable token for an error code ("malformed-frame", ...), used in
/// logs and docs/serving.md.
[[nodiscard]] const char* to_string(ErrorCode code);

/// A parsed frame: type + raw payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Appends the framed envelope (length, type, payload) to `out`.
void append_frame(std::string& out, FrameType type, std::string_view payload);

/// Parses one complete frame from the front of `data`. Fails on short
/// buffers (any strict prefix of a valid frame is an error), zero
/// lengths, and lengths above `max_frame_bytes`. On success
/// `*consumed` is the envelope size in bytes.
[[nodiscard]] Expected<Frame> parse_frame(const unsigned char* data, std::size_t size,
                                          std::size_t* consumed,
                                          std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

// ---------------------------------------------------------------------
// Payload structs + codecs. Every decode_* rejects trailing bytes.

/// HELLO payload. `session_id` 0 opens a new session, in which case
/// `header` must hold a v3 trace header (`codec::encode_header` bytes,
/// event count 0); nonzero attaches to an existing session and the
/// header must be absent.
struct HelloRequest {
  std::uint32_t proto_version = kProtocolVersion;
  std::uint64_t session_id = 0;
  std::uint32_t flags = 0;  ///< reserved, must be 0
  std::string header;       ///< v3 header blob (create only)
};

/// HELLO_OK payload: the negotiated session parameters.
struct HelloOk {
  std::uint32_t proto_version = kProtocolVersion;
  std::uint64_t session_id = 0;
  std::uint64_t epoch = 0;  ///< blocks applied so far (0 for a fresh session)
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::uint32_t queue_blocks = 0;  ///< ingest queue bound (backpressure point)
};

/// INGEST_BLOCK payload: one independently decodable event block.
struct IngestBlock {
  std::uint64_t block_seq = 0;    ///< per-connection, starts at 0, +1 each block
  std::uint64_t event_count = 0;  ///< events encoded in `block`
  std::string block;              ///< v3 block body (compact events, delta base 0)
};

/// BLOCK_OK payload: the block was accepted into the ingest queue.
struct BlockOk {
  std::uint64_t block_seq = 0;
  std::uint64_t accepted_events = 0;
};

/// BUSY payload: the ingest queue was full; the block was **not**
/// accepted and must be resent after backing off.
struct Busy {
  std::uint64_t block_seq = 0;
  std::uint32_t queue_depth = 0;    ///< configured bound that was hit
  std::uint32_t retry_hint_ms = 0;  ///< suggested client backoff
};

/// One tier row of a QUERY_PLACEMENT (mirrors advisor::TierPolicy; the
/// fill order is the row position).
struct QueryTier {
  std::string name;
  std::uint64_t limit = 0;
  double load_coef = 1.0;
  double store_coef = 0.0;
  std::uint8_t flags = 0;  ///< bit 0: fallback tier
};

/// QUERY_PLACEMENT payload: the Advisor configuration to run against a
/// fresh snapshot of the session store.
struct QueryPlacement {
  /// bit 0: run the §VII bandwidth-aware pass after the knapsack;
  /// bit 1: charge footprints by max_size instead of peak_live.
  std::uint32_t flags = 0;
  /// Peak PMem bandwidth for the region thresholds; 0 = use the
  /// snapshot's observed peak (the offline tool's default).
  double peak_pmem_bw_gbs = 0.0;
  std::vector<QueryTier> tiers;

  static constexpr std::uint32_t kBandwidthAware = 1u << 0;
  static constexpr std::uint32_t kFootprintMaxSize = 1u << 1;

  /// The advisor configuration the tier rows describe.
  [[nodiscard]] Expected<advisor::AdvisorConfig> to_config() const;
  /// Builds the tier rows (and footprint flag) from `config`.
  static QueryPlacement from_config(const advisor::AdvisorConfig& config);
};

/// REPORT payload: the placement report text (BOM format — byte-equal
/// to `ecohmem-advisor --out` on the same events and config).
struct Report {
  std::uint64_t epoch = 0;            ///< snapshot epoch the query ran against
  std::uint64_t events_analyzed = 0;  ///< events folded into that snapshot
  std::string text;
};

/// SNAPSHOT_DATA payload: the per-site CSV of a snapshot.
struct SnapshotData {
  std::uint64_t epoch = 0;
  std::uint64_t events_analyzed = 0;
  std::string csv;
};

/// STATS_DATA payload: session counters (QUERY/SNAPSHOT-independent).
struct StatsData {
  std::uint64_t session_id = 0;
  std::uint64_t epoch = 0;  ///< blocks applied to the store
  std::uint64_t blocks_accepted = 0;
  std::uint64_t blocks_dropped = 0;  ///< undecodable INGEST_BLOCK bodies
  std::uint64_t events_seen = 0;     ///< events applied to the store
  std::uint64_t events_declared = 0; ///< events clients claimed to send
  std::uint32_t queue_depth = 0;     ///< blocks waiting to be applied
  std::uint32_t attached_clients = 0;
  std::uint8_t poisoned = 0;  ///< 1 after a semantic ingest error
  std::string error;          ///< first ingest error, empty while healthy
};

/// BYE payload.
struct Bye {
  std::uint32_t flags = 0;  ///< bit 0: also retire the session
  static constexpr std::uint32_t kCloseSession = 1u << 0;
};

/// ERROR payload.
struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string detail;
};

void encode_hello(std::string& out, const HelloRequest& msg);
[[nodiscard]] Expected<HelloRequest> decode_hello(const std::string& payload);

void encode_hello_ok(std::string& out, const HelloOk& msg);
[[nodiscard]] Expected<HelloOk> decode_hello_ok(const std::string& payload);

void encode_ingest_block(std::string& out, const IngestBlock& msg);
[[nodiscard]] Expected<IngestBlock> decode_ingest_block(const std::string& payload);

void encode_block_ok(std::string& out, const BlockOk& msg);
[[nodiscard]] Expected<BlockOk> decode_block_ok(const std::string& payload);

void encode_busy(std::string& out, const Busy& msg);
[[nodiscard]] Expected<Busy> decode_busy(const std::string& payload);

void encode_query_placement(std::string& out, const QueryPlacement& msg);
[[nodiscard]] Expected<QueryPlacement> decode_query_placement(const std::string& payload);

void encode_report(std::string& out, const Report& msg);
[[nodiscard]] Expected<Report> decode_report(const std::string& payload);

void encode_snapshot_data(std::string& out, const SnapshotData& msg);
[[nodiscard]] Expected<SnapshotData> decode_snapshot_data(const std::string& payload);

void encode_stats_data(std::string& out, const StatsData& msg);
[[nodiscard]] Expected<StatsData> decode_stats_data(const std::string& payload);

void encode_bye(std::string& out, const Bye& msg);
[[nodiscard]] Expected<Bye> decode_bye(const std::string& payload);

void encode_error(std::string& out, const ErrorReply& msg);
[[nodiscard]] Expected<ErrorReply> decode_error(const std::string& payload);

}  // namespace ecohmem::serve
