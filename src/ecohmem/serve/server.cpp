#include "ecohmem/serve/server.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "ecohmem/advisor/bandwidth_aware.hpp"
#include "ecohmem/advisor/knapsack.hpp"
#include "ecohmem/advisor/report.hpp"
#include "ecohmem/analyzer/site_report.hpp"
#include "ecohmem/trace/codec.hpp"

namespace ecohmem::serve {
namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Decodes the v3 block body of an INGEST_BLOCK: exactly `event_count`
/// compact events with a fresh delta base, no trailing bytes.
Expected<std::vector<trace::Event>> decode_block(const IngestBlock& msg,
                                                 std::uint32_t stack_count) {
  trace::codec::ByteReader r(reinterpret_cast<const unsigned char*>(msg.block.data()),
                             msg.block.size(), 0);
  std::vector<trace::Event> events;
  // Bound the reserve by what the bytes could possibly hold (every
  // compact event is at least 2 bytes) so a hostile count can't OOM us.
  const std::uint64_t plausible = msg.block.size() / 2 + 1;
  events.reserve(static_cast<std::size_t>(std::min(msg.event_count, plausible)));
  // Batch decode in bounded chunks: a hostile count fails on the first
  // starved chunk instead of sizing the vector for the full claim, and
  // the errors stay identical to a per-event decode.
  Ns last_time = 0;
  std::uint64_t remaining = msg.event_count;
  while (remaining > 0) {
    const std::uint64_t chunk = std::min<std::uint64_t>(remaining, 16 * 1024);
    const std::size_t base = events.size();
    events.resize(base + static_cast<std::size_t>(chunk));
    auto status =
        trace::codec::decode_compact_events(r, stack_count, last_time, events.data() + base, chunk);
    if (!status.ok()) return unexpected(status.error());
    remaining -= chunk;
  }
  if (r.remaining() != 0) {
    return unexpected("block has " + std::to_string(r.remaining()) +
                      " trailing bytes after " + std::to_string(msg.event_count) + " events");
  }
  return events;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  SessionOptions defaults;
  defaults.analyzer = options_.analyzer;
  defaults.queue_blocks = options_.queue_blocks;
  defaults.before_apply = options_.before_apply;
  sessions_ = std::make_unique<SessionManager>(std::move(defaults), options_.max_sessions);
}

Expected<std::unique_ptr<Server>> Server::create(ServerOptions options) {
  if (options.socket_path.empty()) return unexpected("socket path must not be empty");
  if (options.socket_path.size() > common::posix::max_socket_path()) {
    return unexpected("socket path exceeds " +
                      std::to_string(common::posix::max_socket_path()) + " bytes: " +
                      options.socket_path);
  }
  if (options.queue_blocks == 0) return unexpected("queue bound must be at least 1 block");
  if (options.max_frame_bytes < 64) return unexpected("frame ceiling must be at least 64 bytes");
  auto server = std::unique_ptr<Server>(new Server(std::move(options)));
  auto wake = common::posix::WakePipe::create();
  if (!wake) return unexpected(wake.error());
  server->wake_ = std::move(*wake);
  auto listen = common::posix::listen_unix(server->options_.socket_path,
                                           server->options_.backlog);
  if (!listen) return unexpected(listen.error());
  server->listen_fd_ = std::move(*listen);
  return server;
}

void Server::request_stop() {
  stopping_.store(true, std::memory_order_release);
  wake_.write_one_byte();
}

void Server::reap_connections(bool join_all) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    ConnectionHandle& handle = connections_[i];
    if (join_all || handle.done->load(std::memory_order_acquire)) {
      handle.thread.join();
    } else {
      // Compact in place; guard against self-move-assignment, which for
      // a joinable std::thread would call std::terminate().
      if (kept != i) connections_[kept] = std::move(handle);
      ++kept;
    }
  }
  connections_.resize(join_all ? 0 : kept);
}

Status Server::run() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_.get(), POLLIN, 0}, {wake_.read_fd(), POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return unexpected(errno_message("poll on listen socket"));
    }
    if ((fds[1].revents & POLLIN) != 0) wake_.drain();
    if (stopping_.load(std::memory_order_acquire)) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    auto conn = common::posix::accept_unix(listen_fd_.get());
    if (!conn) continue;  // transient accept failure; keep serving
    reap_connections(/*join_all=*/false);
    auto done = std::make_shared<std::atomic<bool>>(false);
    ConnectionHandle handle;
    handle.done = done;
    handle.thread = std::thread([this, done, fd = std::move(*conn)]() mutable {
      handle_connection(std::move(fd));
      done->store(true, std::memory_order_release);
    });
    connections_.push_back(std::move(handle));
  }

  // Graceful drain: stop accepting, let in-flight frames finish (each
  // handler notices stopping_ within its poll interval and replies
  // ERROR shutting-down), then apply every accepted block.
  listen_fd_.reset();
  reap_connections(/*join_all=*/true);
  for (const auto& session : sessions_->all()) session->flush();
  ::unlink(options_.socket_path.c_str());
  return {};
}

void Server::handle_connection(common::posix::UniqueFd fd) {
  std::shared_ptr<Session> session;
  std::uint64_t expected_seq = 0;

  const auto send = [&](FrameType type, const std::string& payload) -> bool {
    std::string out;
    append_frame(out, type, payload);
    return common::posix::send_full(fd.get(), out.data(), out.size()).ok();
  };
  const auto send_error = [&](ErrorCode code, std::string detail) -> bool {
    std::string payload;
    encode_error(payload, ErrorReply{code, std::move(detail)});
    return send(FrameType::kError, payload);
  };

  for (;;) {
    // Wait for the next frame, checking the drain flag at a bounded
    // interval so shutdown never waits on an idle client.
    pollfd pfd{fd.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (stopping_.load(std::memory_order_acquire)) {
      (void)send_error(ErrorCode::kShuttingDown, "daemon is draining");
      break;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;

    // Envelope: u32 length, then type byte + payload.
    std::uint32_t length = 0;
    auto first = common::posix::read_full_or_eof(fd.get(), &length, sizeof(length));
    if (!first || !*first) break;  // I/O error or clean close
    if (length == 0) {
      (void)send_error(ErrorCode::kMalformedFrame, "zero-length frame");
      break;
    }
    if (length > options_.max_frame_bytes) {
      (void)send_error(ErrorCode::kFrameTooLarge,
                       "frame length " + std::to_string(length) + " exceeds the ceiling " +
                           std::to_string(options_.max_frame_bytes));
      break;
    }
    std::string body(length, '\0');
    if (!common::posix::read_full(fd.get(), body.data(), body.size()).ok()) break;

    const auto raw_type = static_cast<std::uint8_t>(body[0]);
    const std::string payload = body.substr(1);
    const auto type = static_cast<FrameType>(raw_type);
    switch (type) {
      case FrameType::kHello:
      case FrameType::kIngestBlock:
      case FrameType::kQueryPlacement:
      case FrameType::kSnapshot:
      case FrameType::kStats:
      case FrameType::kBye:
        break;
      default:
        (void)send_error(ErrorCode::kUnknownType,
                         "unknown frame type " + std::to_string(raw_type));
        goto done;
    }

    // State machine: HELLO first, exactly once.
    if (session == nullptr && type != FrameType::kHello) {
      (void)send_error(ErrorCode::kBadSequence,
                       std::string(to_string(type)) + " before HELLO");
      break;
    }
    if (session != nullptr && type == FrameType::kHello) {
      (void)send_error(ErrorCode::kBadSequence, "second HELLO on this connection");
      break;
    }

    switch (type) {
      case FrameType::kHello: {
        auto msg = decode_hello(payload);
        if (!msg) {
          (void)send_error(ErrorCode::kMalformedFrame, msg.error());
          goto done;
        }
        if (msg->proto_version != kProtocolVersion) {
          (void)send_error(ErrorCode::kBadSequence,
                           "protocol version " + std::to_string(msg->proto_version) +
                               " not supported (server speaks " +
                               std::to_string(kProtocolVersion) + ")");
          goto done;
        }
        if (msg->session_id == 0) {
          trace::codec::ByteReader reader(
              reinterpret_cast<const unsigned char*>(msg->header.data()),
              msg->header.size(), 0);
          auto header = trace::codec::decode_header(reader);
          if (!header) {
            (void)send_error(ErrorCode::kMalformedFrame, header.error());
            goto done;
          }
          if (reader.remaining() != 0) {
            (void)send_error(ErrorCode::kMalformedFrame,
                             "HELLO header blob has trailing bytes");
            goto done;
          }
          auto created = sessions_->create(std::move(*header));
          if (!created) {
            (void)send_error(ErrorCode::kInternal, created.error());
            goto done;
          }
          session = std::move(*created);
        } else {
          session = sessions_->find(msg->session_id);
          if (session == nullptr) {
            (void)send_error(ErrorCode::kNoSuchSession,
                             "no session " + std::to_string(msg->session_id));
            goto done;
          }
        }
        session->attach();
        HelloOk ok;
        ok.proto_version = kProtocolVersion;
        ok.session_id = session->id();
        ok.epoch = session->stats().epoch;
        ok.max_frame_bytes = options_.max_frame_bytes;
        ok.queue_blocks = static_cast<std::uint32_t>(options_.queue_blocks);
        std::string reply;
        encode_hello_ok(reply, ok);
        if (!send(FrameType::kHelloOk, reply)) goto done;
        break;
      }

      case FrameType::kIngestBlock: {
        auto msg = decode_ingest_block(payload);
        if (!msg) {
          (void)send_error(ErrorCode::kMalformedFrame, msg.error());
          goto done;
        }
        if (msg->block_seq != expected_seq) {
          (void)send_error(ErrorCode::kBadSequence,
                           "block_seq " + std::to_string(msg->block_seq) + ", expected " +
                               std::to_string(expected_seq));
          goto done;
        }
        const auto stack_count = static_cast<std::uint32_t>(session->header().stacks.size());
        auto events = decode_block(*msg, stack_count);
        if (!events) {
          // Salvage semantics: the block is lost coverage, not a fatal
          // session error. seq advances — the block was consumed.
          session->note_dropped_block(msg->event_count);
          ++expected_seq;
          if (!send_error(ErrorCode::kBadBlock, events.error())) goto done;
          break;
        }
        const auto accepted = static_cast<std::uint64_t>(events->size());
        switch (session->enqueue_block(std::move(*events))) {
          case Session::Enqueue::kAccepted: {
            ++expected_seq;
            std::string reply;
            encode_block_ok(reply, BlockOk{msg->block_seq, accepted});
            if (!send(FrameType::kBlockOk, reply)) goto done;
            break;
          }
          case Session::Enqueue::kBusy: {
            // seq does NOT advance: the client must resend this block.
            std::string reply;
            encode_busy(reply, Busy{msg->block_seq,
                                    static_cast<std::uint32_t>(options_.queue_blocks),
                                    options_.busy_retry_hint_ms});
            if (!send(FrameType::kBusy, reply)) goto done;
            break;
          }
          case Session::Enqueue::kClosed:
            (void)send_error(ErrorCode::kShuttingDown, "session is draining");
            goto done;
        }
        break;
      }

      case FrameType::kQueryPlacement: {
        auto msg = decode_query_placement(payload);
        if (!msg) {
          (void)send_error(ErrorCode::kMalformedFrame, msg.error());
          goto done;
        }
        auto config = msg->to_config();
        if (!config) {
          if (!send_error(ErrorCode::kBadConfig, config.error())) goto done;
          break;
        }
        auto snap = session->snapshot();
        if (!snap) {
          if (!send_error(ErrorCode::kSessionPoisoned, snap.error())) goto done;
          break;
        }
        auto placement = advisor::place_by_density(snap->analysis->sites, *config);
        if (!placement) {
          if (!send_error(ErrorCode::kBadConfig, placement.error())) goto done;
          break;
        }
        if ((msg->flags & QueryPlacement::kBandwidthAware) != 0) {
          advisor::BandwidthAwareOptions bw;
          bw.peak_pmem_bw_gbs = msg->peak_pmem_bw_gbs > 0
                                    ? msg->peak_pmem_bw_gbs
                                    : snap->analysis->observed_peak_bw_gbs;
          bw.dram_tier = config->tiers.front().name;
          bw.pmem_tier = config->fallback_tier().name;
          auto refined =
              advisor::place_bandwidth_aware(snap->analysis->sites, *placement, *config, bw);
          if (!refined) {
            if (!send_error(ErrorCode::kBadConfig, refined.error())) goto done;
            break;
          }
          *placement = std::move(refined->placement);
        }
        // Report rendering resolves client-declared stacks against the
        // client-declared module table; a mismatch (stack frame naming a
        // module the HELLO never declared) must poison the reply, not
        // the daemon.
        std::string text;
        try {
          auto rendered = advisor::report_to_string(*placement, advisor::ReportFormat::kBom,
                                                    session->header().modules);
          if (!rendered) {
            if (!send_error(ErrorCode::kInternal, rendered.error())) goto done;
            break;
          }
          text = std::move(*rendered);
        } catch (const std::exception& e) {
          if (!send_error(ErrorCode::kInternal,
                          std::string("report generation failed: ") + e.what())) {
            goto done;
          }
          break;
        }
        std::string reply;
        encode_report(reply, Report{snap->epoch, snap->events, std::move(text)});
        if (!send(FrameType::kReport, reply)) goto done;
        break;
      }

      case FrameType::kSnapshot: {
        if (!payload.empty()) {
          (void)send_error(ErrorCode::kMalformedFrame, "SNAPSHOT carries no payload");
          goto done;
        }
        auto snap = session->snapshot();
        if (!snap) {
          if (!send_error(ErrorCode::kSessionPoisoned, snap.error())) goto done;
          break;
        }
        std::ostringstream csv;
        try {
          analyzer::write_site_csv(csv, *snap->analysis, session->header().modules);
        } catch (const std::exception& e) {
          if (!send_error(ErrorCode::kInternal,
                          std::string("snapshot generation failed: ") + e.what())) {
            goto done;
          }
          break;
        }
        std::string reply;
        encode_snapshot_data(reply, SnapshotData{snap->epoch, snap->events, csv.str()});
        if (!send(FrameType::kSnapshotData, reply)) goto done;
        break;
      }

      case FrameType::kStats: {
        if (!payload.empty()) {
          (void)send_error(ErrorCode::kMalformedFrame, "STATS carries no payload");
          goto done;
        }
        const SessionStats stats = session->stats();
        StatsData out;
        out.session_id = stats.session_id;
        out.epoch = stats.epoch;
        out.blocks_accepted = stats.blocks_accepted;
        out.blocks_dropped = stats.blocks_dropped;
        out.events_seen = stats.events_seen;
        out.events_declared = stats.events_declared;
        out.queue_depth = stats.queue_depth;
        out.attached_clients = stats.attached_clients;
        out.poisoned = stats.error.empty() ? 0 : 1;
        out.error = stats.error;
        std::string reply;
        encode_stats_data(reply, out);
        if (!send(FrameType::kStatsData, reply)) goto done;
        break;
      }

      case FrameType::kBye: {
        auto msg = decode_bye(payload);
        if (!msg) {
          (void)send_error(ErrorCode::kMalformedFrame, msg.error());
          goto done;
        }
        // Retire before acknowledging: when BYE_OK reaches the client
        // the session id is already gone from the registry, so a
        // follow-up attach can never race the close.
        if ((msg->flags & Bye::kCloseSession) != 0) {
          const std::uint64_t id = session->id();
          session->detach();
          session.reset();
          sessions_->erase(id);
        }
        std::string reply;
        encode_bye(reply, Bye{});  // BYE_OK carries the same (empty-flags) shape
        (void)send(FrameType::kByeOk, reply);
        goto done;
      }

      default:
        break;  // unreachable: filtered above
    }
  }
done:
  if (session != nullptr) session->detach();
}

}  // namespace ecohmem::serve
