#include "ecohmem/serve/protocol.hpp"

#include <algorithm>
#include <cstring>

#include "ecohmem/trace/codec.hpp"

namespace ecohmem::serve {

namespace codec = trace::codec;

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kIngestBlock: return "INGEST_BLOCK";
    case FrameType::kQueryPlacement: return "QUERY_PLACEMENT";
    case FrameType::kSnapshot: return "SNAPSHOT";
    case FrameType::kStats: return "STATS";
    case FrameType::kBye: return "BYE";
    case FrameType::kHelloOk: return "HELLO_OK";
    case FrameType::kBlockOk: return "BLOCK_OK";
    case FrameType::kReport: return "REPORT";
    case FrameType::kSnapshotData: return "SNAPSHOT_DATA";
    case FrameType::kStatsData: return "STATS_DATA";
    case FrameType::kByeOk: return "BYE_OK";
    case FrameType::kError: return "ERROR";
    case FrameType::kBusy: return "BUSY";
  }
  return "?";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformedFrame: return "malformed-frame";
    case ErrorCode::kUnknownType: return "unknown-type";
    case ErrorCode::kBadSequence: return "bad-sequence";
    case ErrorCode::kBadBlock: return "bad-block";
    case ErrorCode::kSessionPoisoned: return "session-poisoned";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kFrameTooLarge: return "frame-too-large";
    case ErrorCode::kNoSuchSession: return "no-such-session";
    case ErrorCode::kBadConfig: return "bad-config";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

namespace {

[[nodiscard]] bool known_frame_type(std::uint8_t raw) {
  switch (static_cast<FrameType>(raw)) {
    case FrameType::kHello:
    case FrameType::kIngestBlock:
    case FrameType::kQueryPlacement:
    case FrameType::kSnapshot:
    case FrameType::kStats:
    case FrameType::kBye:
    case FrameType::kHelloOk:
    case FrameType::kBlockOk:
    case FrameType::kReport:
    case FrameType::kSnapshotData:
    case FrameType::kStatsData:
    case FrameType::kByeOk:
    case FrameType::kError:
    case FrameType::kBusy:
      return true;
  }
  return false;
}

/// Reader over a payload string; all payload decoders funnel through
/// this so short payloads and trailing bytes fail uniformly.
[[nodiscard]] codec::ByteReader payload_reader(const std::string& payload) {
  return codec::ByteReader(reinterpret_cast<const unsigned char*>(payload.data()),
                           payload.size(), 0);
}

[[nodiscard]] Unexpected short_payload(const char* frame) {
  return unexpected(std::string("truncated ") + frame + " payload");
}

[[nodiscard]] Unexpected trailing_bytes(const char* frame) {
  return unexpected(std::string(frame) + " payload has trailing bytes");
}

}  // namespace

void append_frame(std::string& out, FrameType type, std::string_view payload) {
  codec::put(out, static_cast<std::uint32_t>(payload.size() + 1));
  codec::put(out, static_cast<std::uint8_t>(type));
  out.append(payload);
}

Expected<Frame> parse_frame(const unsigned char* data, std::size_t size, std::size_t* consumed,
                            std::uint32_t max_frame_bytes) {
  if (size < sizeof(std::uint32_t)) return unexpected("truncated frame length");
  std::uint32_t length = 0;
  std::memcpy(&length, data, sizeof(length));
  if (length == 0) return unexpected("zero-length frame");
  if (length > max_frame_bytes) {
    return unexpected("frame length " + std::to_string(length) + " exceeds the ceiling " +
                      std::to_string(max_frame_bytes));
  }
  if (size - sizeof(length) < length) return unexpected("truncated frame body");
  const std::uint8_t raw_type = data[sizeof(length)];
  if (!known_frame_type(raw_type)) {
    return unexpected("unknown frame type " + std::to_string(raw_type));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.payload.assign(reinterpret_cast<const char*>(data) + sizeof(length) + 1, length - 1);
  if (consumed != nullptr) *consumed = sizeof(length) + length;
  return frame;
}

// ---------------------------------------------------------------------
// HELLO

void encode_hello(std::string& out, const HelloRequest& msg) {
  codec::put(out, msg.proto_version);
  codec::put(out, msg.session_id);
  codec::put(out, msg.flags);
  out.append(msg.header);
}

Expected<HelloRequest> decode_hello(const std::string& payload) {
  auto r = payload_reader(payload);
  HelloRequest msg;
  if (!r.get(msg.proto_version) || !r.get(msg.session_id) || !r.get(msg.flags)) {
    return short_payload("HELLO");
  }
  msg.header.assign(payload, payload.size() - r.remaining(), r.remaining());
  if (msg.session_id != 0 && !msg.header.empty()) {
    return unexpected("HELLO attach carries a trace header");
  }
  return msg;
}

// ---------------------------------------------------------------------
// HELLO_OK

void encode_hello_ok(std::string& out, const HelloOk& msg) {
  codec::put(out, msg.proto_version);
  codec::put(out, msg.session_id);
  codec::put(out, msg.epoch);
  codec::put(out, msg.max_frame_bytes);
  codec::put(out, msg.queue_blocks);
}

Expected<HelloOk> decode_hello_ok(const std::string& payload) {
  auto r = payload_reader(payload);
  HelloOk msg;
  if (!r.get(msg.proto_version) || !r.get(msg.session_id) || !r.get(msg.epoch) ||
      !r.get(msg.max_frame_bytes) || !r.get(msg.queue_blocks)) {
    return short_payload("HELLO_OK");
  }
  if (r.remaining() != 0) return trailing_bytes("HELLO_OK");
  return msg;
}

// ---------------------------------------------------------------------
// INGEST_BLOCK

void encode_ingest_block(std::string& out, const IngestBlock& msg) {
  codec::put(out, msg.block_seq);
  codec::put(out, msg.event_count);
  out.append(msg.block);
}

Expected<IngestBlock> decode_ingest_block(const std::string& payload) {
  auto r = payload_reader(payload);
  IngestBlock msg;
  if (!r.get(msg.block_seq) || !r.get(msg.event_count)) {
    return short_payload("INGEST_BLOCK");
  }
  msg.block.assign(payload, payload.size() - r.remaining(), r.remaining());
  return msg;
}

// ---------------------------------------------------------------------
// BLOCK_OK / BUSY

void encode_block_ok(std::string& out, const BlockOk& msg) {
  codec::put(out, msg.block_seq);
  codec::put(out, msg.accepted_events);
}

Expected<BlockOk> decode_block_ok(const std::string& payload) {
  auto r = payload_reader(payload);
  BlockOk msg;
  if (!r.get(msg.block_seq) || !r.get(msg.accepted_events)) return short_payload("BLOCK_OK");
  if (r.remaining() != 0) return trailing_bytes("BLOCK_OK");
  return msg;
}

void encode_busy(std::string& out, const Busy& msg) {
  codec::put(out, msg.block_seq);
  codec::put(out, msg.queue_depth);
  codec::put(out, msg.retry_hint_ms);
}

Expected<Busy> decode_busy(const std::string& payload) {
  auto r = payload_reader(payload);
  Busy msg;
  if (!r.get(msg.block_seq) || !r.get(msg.queue_depth) || !r.get(msg.retry_hint_ms)) {
    return short_payload("BUSY");
  }
  if (r.remaining() != 0) return trailing_bytes("BUSY");
  return msg;
}

// ---------------------------------------------------------------------
// QUERY_PLACEMENT

void encode_query_placement(std::string& out, const QueryPlacement& msg) {
  codec::put(out, msg.flags);
  codec::put(out, msg.peak_pmem_bw_gbs);
  codec::put(out, static_cast<std::uint8_t>(msg.tiers.size()));
  for (const auto& tier : msg.tiers) {
    codec::put_string(out, tier.name);
    codec::put(out, tier.limit);
    codec::put(out, tier.load_coef);
    codec::put(out, tier.store_coef);
    codec::put(out, tier.flags);
  }
}

Expected<QueryPlacement> decode_query_placement(const std::string& payload) {
  auto r = payload_reader(payload);
  QueryPlacement msg;
  std::uint8_t tier_count = 0;
  if (!r.get(msg.flags) || !r.get(msg.peak_pmem_bw_gbs) || !r.get(tier_count)) {
    return short_payload("QUERY_PLACEMENT");
  }
  msg.tiers.reserve(tier_count);
  for (std::uint8_t i = 0; i < tier_count; ++i) {
    QueryTier tier;
    if (!r.get_string(tier.name) || !r.get(tier.limit) || !r.get(tier.load_coef) ||
        !r.get(tier.store_coef) || !r.get(tier.flags)) {
      return short_payload("QUERY_PLACEMENT tier");
    }
    msg.tiers.push_back(std::move(tier));
  }
  if (r.remaining() != 0) return trailing_bytes("QUERY_PLACEMENT");
  return msg;
}

Expected<advisor::AdvisorConfig> QueryPlacement::to_config() const {
  if (tiers.empty()) return unexpected("query names no tiers");
  advisor::AdvisorConfig config;
  config.footprint_mode = (flags & kFootprintMaxSize) != 0
                              ? advisor::FootprintMode::kMaxSize
                              : advisor::FootprintMode::kPeakLive;
  int fallbacks = 0;
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const QueryTier& t = tiers[i];
    if (t.name.empty()) return unexpected("query tier " + std::to_string(i) + " has no name");
    advisor::TierPolicy policy;
    policy.name = t.name;
    policy.limit = t.limit;
    policy.load_coef = t.load_coef;
    policy.store_coef = t.store_coef;
    policy.order = static_cast<int>(i);
    policy.fallback = (t.flags & 1u) != 0;
    fallbacks += policy.fallback ? 1 : 0;
    config.tiers.push_back(std::move(policy));
  }
  if (fallbacks != 1) {
    return unexpected("query must name exactly one fallback tier, got " +
                      std::to_string(fallbacks));
  }
  return config;
}

QueryPlacement QueryPlacement::from_config(const advisor::AdvisorConfig& config) {
  QueryPlacement msg;
  if (config.footprint_mode == advisor::FootprintMode::kMaxSize) {
    msg.flags |= kFootprintMaxSize;
  }
  for (const auto& tier : config.tiers) {
    QueryTier row;
    row.name = tier.name;
    row.limit = tier.limit;
    row.load_coef = tier.load_coef;
    row.store_coef = tier.store_coef;
    row.flags = tier.fallback ? 1 : 0;
    msg.tiers.push_back(std::move(row));
  }
  return msg;
}

// ---------------------------------------------------------------------
// REPORT / SNAPSHOT_DATA

void encode_report(std::string& out, const Report& msg) {
  codec::put(out, msg.epoch);
  codec::put(out, msg.events_analyzed);
  out.append(msg.text);
}

Expected<Report> decode_report(const std::string& payload) {
  auto r = payload_reader(payload);
  Report msg;
  if (!r.get(msg.epoch) || !r.get(msg.events_analyzed)) return short_payload("REPORT");
  msg.text.assign(payload, payload.size() - r.remaining(), r.remaining());
  return msg;
}

void encode_snapshot_data(std::string& out, const SnapshotData& msg) {
  codec::put(out, msg.epoch);
  codec::put(out, msg.events_analyzed);
  out.append(msg.csv);
}

Expected<SnapshotData> decode_snapshot_data(const std::string& payload) {
  auto r = payload_reader(payload);
  SnapshotData msg;
  if (!r.get(msg.epoch) || !r.get(msg.events_analyzed)) return short_payload("SNAPSHOT_DATA");
  msg.csv.assign(payload, payload.size() - r.remaining(), r.remaining());
  return msg;
}

// ---------------------------------------------------------------------
// STATS_DATA

void encode_stats_data(std::string& out, const StatsData& msg) {
  codec::put(out, msg.session_id);
  codec::put(out, msg.epoch);
  codec::put(out, msg.blocks_accepted);
  codec::put(out, msg.blocks_dropped);
  codec::put(out, msg.events_seen);
  codec::put(out, msg.events_declared);
  codec::put(out, msg.queue_depth);
  codec::put(out, msg.attached_clients);
  codec::put(out, msg.poisoned);
  codec::put_string(out, msg.error);
}

Expected<StatsData> decode_stats_data(const std::string& payload) {
  auto r = payload_reader(payload);
  StatsData msg;
  if (!r.get(msg.session_id) || !r.get(msg.epoch) || !r.get(msg.blocks_accepted) ||
      !r.get(msg.blocks_dropped) || !r.get(msg.events_seen) || !r.get(msg.events_declared) ||
      !r.get(msg.queue_depth) || !r.get(msg.attached_clients) || !r.get(msg.poisoned) ||
      !r.get_string(msg.error)) {
    return short_payload("STATS_DATA");
  }
  if (r.remaining() != 0) return trailing_bytes("STATS_DATA");
  return msg;
}

// ---------------------------------------------------------------------
// BYE / ERROR

void encode_bye(std::string& out, const Bye& msg) { codec::put(out, msg.flags); }

Expected<Bye> decode_bye(const std::string& payload) {
  auto r = payload_reader(payload);
  Bye msg;
  if (!r.get(msg.flags)) return short_payload("BYE");
  if (r.remaining() != 0) return trailing_bytes("BYE");
  return msg;
}

void encode_error(std::string& out, const ErrorReply& msg) {
  codec::put(out, static_cast<std::uint16_t>(msg.code));
  codec::put_string(out, msg.detail);
}

Expected<ErrorReply> decode_error(const std::string& payload) {
  auto r = payload_reader(payload);
  std::uint16_t code = 0;
  ErrorReply msg;
  if (!r.get(code) || !r.get_string(msg.detail)) return short_payload("ERROR");
  if (r.remaining() != 0) return trailing_bytes("ERROR");
  msg.code = static_cast<ErrorCode>(code);
  return msg;
}

}  // namespace ecohmem::serve
