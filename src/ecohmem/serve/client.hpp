#pragma once

/// \file client.hpp
/// Loopback client for the `ecohmem-serve` daemon: the reference
/// implementation of the docs/serving.md protocol, used by the
/// `ecohmem-serve` tool's client mode, the tests and ci.sh.
///
/// The protocol is strictly request/response per connection, and the
/// client enforces that shape: every method writes one frame, then
/// blocks reading exactly one reply. ERROR replies surface as
/// `Expected` failures formatted `server error (<token>): <detail>`;
/// BUSY surfaces either as a distinct outcome (`ingest_block_once`) or
/// is retried with the server's backoff hint (`ingest_block`).

#include <cstdint>
#include <string>
#include <vector>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/posix.hpp"
#include "ecohmem/serve/protocol.hpp"
#include "ecohmem/trace/codec.hpp"
#include "ecohmem/trace/events.hpp"

namespace ecohmem::serve {

/// One connection to a daemon. Not thread-safe: the request/response
/// discipline means one in-flight request per connection by design.
class Client {
 public:
  /// Connects to the daemon socket at `path` (no frames exchanged yet).
  [[nodiscard]] static Expected<Client> connect(const std::string& path);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// HELLO with a fresh session: the header blob is built from the
  /// given tables (v3 header, declared event count 0).
  [[nodiscard]] Status hello_create(const trace::StackTable& stacks,
                                    const trace::FunctionTable& functions,
                                    const bom::ModuleTable& modules, double sample_rate_hz);

  /// HELLO attaching to an existing session.
  [[nodiscard]] Status hello_attach(std::uint64_t session_id);

  /// The session id negotiated by HELLO (0 before).
  [[nodiscard]] std::uint64_t session_id() const { return session_id_; }

  /// The HELLO_OK parameters (valid after a successful hello).
  [[nodiscard]] const HelloOk& negotiated() const { return negotiated_; }

  /// One ingest attempt's outcome.
  enum class Ingest {
    kAccepted,  ///< BLOCK_OK — block queued
    kBusy,      ///< BUSY — backpressure, resend the same block
  };

  /// Sends one block of events (encoded with a fresh delta base) and
  /// returns the server's verdict without retrying.
  [[nodiscard]] Expected<Ingest> ingest_block_once(const std::vector<trace::Event>& events);

  /// Like `ingest_block_once`, but retries BUSY replies (sleeping the
  /// server's hint) until accepted or `max_retries` is exhausted.
  [[nodiscard]] Status ingest_block(const std::vector<trace::Event>& events,
                                    std::size_t max_retries = 1000);

  /// Streams `events` in blocks of `block_events`, retrying BUSY.
  [[nodiscard]] Status ingest_events(const std::vector<trace::Event>& events,
                                     std::size_t block_events);

  /// QUERY_PLACEMENT: runs the Advisor on a fresh snapshot. `config`
  /// supplies the tiers; when `bandwidth_aware`, the §VII refinement
  /// runs with `peak_pmem_bw_gbs` (0 = the snapshot's observed peak).
  [[nodiscard]] Expected<Report> query(const advisor::AdvisorConfig& config,
                                       bool bandwidth_aware = false,
                                       double peak_pmem_bw_gbs = 0.0);

  /// SNAPSHOT: the per-site CSV of a fresh snapshot.
  [[nodiscard]] Expected<SnapshotData> snapshot_csv();

  /// STATS: current session counters.
  [[nodiscard]] Expected<StatsData> stats();

  /// The last BUSY reply (valid after `ingest_block_once` returned
  /// `kBusy`; carries the server's retry hint).
  [[nodiscard]] const Busy& last_busy() const { return last_busy_; }

  /// BYE; with `close_session` the daemon also retires the session.
  /// The connection is unusable afterwards.
  [[nodiscard]] Status bye(bool close_session = false);

  /// Sends raw envelope bytes (tests: malformed/truncated frames).
  [[nodiscard]] Status send_raw(const std::string& bytes);

  /// Reads one reply frame (tests). Fails on I/O errors and EOF.
  [[nodiscard]] Expected<Frame> read_reply();

 private:
  explicit Client(common::posix::UniqueFd fd) : fd_(std::move(fd)) {}

  [[nodiscard]] Status send_frame(FrameType type, const std::string& payload);
  /// One request/response round. Fails unless the reply has
  /// `expect` type (ERROR replies become formatted failures).
  [[nodiscard]] Expected<Frame> round_trip(FrameType type, const std::string& payload,
                                           FrameType expect);
  [[nodiscard]] Status finish_hello(const HelloRequest& request);

  common::posix::UniqueFd fd_;
  std::uint64_t session_id_ = 0;
  std::uint64_t next_block_seq_ = 0;
  HelloOk negotiated_;
  Busy last_busy_;
};

}  // namespace ecohmem::serve
