#include "ecohmem/serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace ecohmem::serve {
namespace {

std::string format_server_error(const std::string& payload) {
  auto err = decode_error(payload);
  if (!err) return "undecodable ERROR reply: " + err.error();
  return "server error (" + std::string(to_string(err->code)) + "): " + err->detail;
}

}  // namespace

Expected<Client> Client::connect(const std::string& path) {
  auto fd = common::posix::connect_unix(path);
  if (!fd) return unexpected(fd.error());
  return Client(std::move(*fd));
}

Status Client::send_frame(FrameType type, const std::string& payload) {
  std::string out;
  append_frame(out, type, payload);
  return common::posix::send_full(fd_.get(), out.data(), out.size());
}

Status Client::send_raw(const std::string& bytes) {
  return common::posix::send_full(fd_.get(), bytes.data(), bytes.size());
}

Expected<Frame> Client::read_reply() {
  std::uint32_t length = 0;
  auto status = common::posix::read_full(fd_.get(), &length, sizeof(length));
  if (!status.ok()) return unexpected(status.error());
  if (length == 0) return unexpected("server sent a zero-length frame");
  std::string body(length, '\0');
  status = common::posix::read_full(fd_.get(), body.data(), body.size());
  if (!status.ok()) return unexpected(status.error());
  Frame frame;
  frame.type = static_cast<FrameType>(static_cast<std::uint8_t>(body[0]));
  frame.payload = body.substr(1);
  return frame;
}

Expected<Frame> Client::round_trip(FrameType type, const std::string& payload,
                                   FrameType expect) {
  auto status = send_frame(type, payload);
  if (!status.ok()) return unexpected(status.error());
  auto reply = read_reply();
  if (!reply) return unexpected(reply.error());
  if (reply->type == FrameType::kError) return unexpected(format_server_error(reply->payload));
  if (reply->type != expect) {
    return unexpected(std::string("unexpected reply ") + to_string(reply->type) + " to " +
                      to_string(type));
  }
  return reply;
}

Status Client::finish_hello(const HelloRequest& request) {
  std::string payload;
  encode_hello(payload, request);
  auto reply = round_trip(FrameType::kHello, payload, FrameType::kHelloOk);
  if (!reply) return unexpected(reply.error());
  auto ok = decode_hello_ok(reply->payload);
  if (!ok) return unexpected(ok.error());
  negotiated_ = *ok;
  session_id_ = ok->session_id;
  next_block_seq_ = 0;
  return {};
}

Status Client::hello_create(const trace::StackTable& stacks,
                            const trace::FunctionTable& functions,
                            const bom::ModuleTable& modules, double sample_rate_hz) {
  HelloRequest request;
  trace::codec::encode_header(request.header, stacks, functions, sample_rate_hz, modules,
                              trace::codec::kVersionIndexed, /*event_count=*/0);
  return finish_hello(request);
}

Status Client::hello_attach(std::uint64_t session_id) {
  HelloRequest request;
  request.session_id = session_id;
  return finish_hello(request);
}

Expected<Client::Ingest> Client::ingest_block_once(const std::vector<trace::Event>& events) {
  IngestBlock msg;
  msg.block_seq = next_block_seq_;
  msg.event_count = events.size();
  Ns last_time = 0;  // per-block delta base, like a v3 file block
  for (const auto& event : events) {
    trace::codec::encode_event_compact(msg.block, event, last_time);
  }
  std::string payload;
  encode_ingest_block(payload, msg);
  auto status = send_frame(FrameType::kIngestBlock, payload);
  if (!status.ok()) return unexpected(status.error());
  auto reply = read_reply();
  if (!reply) return unexpected(reply.error());
  switch (reply->type) {
    case FrameType::kBlockOk: {
      auto ok = decode_block_ok(reply->payload);
      if (!ok) return unexpected(ok.error());
      if (ok->block_seq != msg.block_seq) {
        return unexpected("BLOCK_OK for seq " + std::to_string(ok->block_seq) +
                          ", expected " + std::to_string(msg.block_seq));
      }
      ++next_block_seq_;
      return Ingest::kAccepted;
    }
    case FrameType::kBusy: {
      auto busy = decode_busy(reply->payload);
      if (!busy) return unexpected(busy.error());
      last_busy_ = *busy;
      return Ingest::kBusy;
    }
    case FrameType::kError:
      return unexpected(format_server_error(reply->payload));
    default:
      return unexpected(std::string("unexpected reply ") + to_string(reply->type) +
                        " to INGEST_BLOCK");
  }
}

Status Client::ingest_block(const std::vector<trace::Event>& events, std::size_t max_retries) {
  for (std::size_t attempt = 0; attempt <= max_retries; ++attempt) {
    auto outcome = ingest_block_once(events);
    if (!outcome) return unexpected(outcome.error());
    if (*outcome == Ingest::kAccepted) return {};
    const auto hint = std::max<std::uint32_t>(1, last_busy_.retry_hint_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(hint));
  }
  return unexpected("ingest still busy after " + std::to_string(max_retries) + " retries");
}

Status Client::ingest_events(const std::vector<trace::Event>& events,
                             std::size_t block_events) {
  if (block_events == 0) return unexpected("block size must be at least 1 event");
  for (std::size_t begin = 0; begin < events.size(); begin += block_events) {
    const std::size_t end = std::min(events.size(), begin + block_events);
    const std::vector<trace::Event> block(events.begin() + static_cast<std::ptrdiff_t>(begin),
                                          events.begin() + static_cast<std::ptrdiff_t>(end));
    auto status = ingest_block(block);
    if (!status.ok()) return status;
  }
  return {};
}

Expected<Report> Client::query(const advisor::AdvisorConfig& config, bool bandwidth_aware,
                               double peak_pmem_bw_gbs) {
  QueryPlacement msg = QueryPlacement::from_config(config);
  if (bandwidth_aware) msg.flags |= QueryPlacement::kBandwidthAware;
  msg.peak_pmem_bw_gbs = peak_pmem_bw_gbs;
  std::string payload;
  encode_query_placement(payload, msg);
  auto reply = round_trip(FrameType::kQueryPlacement, payload, FrameType::kReport);
  if (!reply) return unexpected(reply.error());
  return decode_report(reply->payload);
}

Expected<SnapshotData> Client::snapshot_csv() {
  auto reply = round_trip(FrameType::kSnapshot, "", FrameType::kSnapshotData);
  if (!reply) return unexpected(reply.error());
  return decode_snapshot_data(reply->payload);
}

Expected<StatsData> Client::stats() {
  auto reply = round_trip(FrameType::kStats, "", FrameType::kStatsData);
  if (!reply) return unexpected(reply.error());
  return decode_stats_data(reply->payload);
}

Status Client::bye(bool close_session) {
  Bye msg;
  if (close_session) msg.flags |= Bye::kCloseSession;
  std::string payload;
  encode_bye(payload, msg);
  auto reply = round_trip(FrameType::kBye, payload, FrameType::kByeOk);
  if (!reply) return unexpected(reply.error());
  fd_.reset();
  return {};
}

}  // namespace ecohmem::serve
