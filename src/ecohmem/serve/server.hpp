#pragma once

/// \file server.hpp
/// The `ecohmem-serve` daemon core: a unix-domain socket accept loop
/// dispatching the docs/serving.md protocol onto `Session` stores.
///
/// Threading model: `run()` owns the accept loop (one thread); each
/// accepted connection gets a dedicated handler thread that reads one
/// frame, dispatches it, writes the reply, and repeats — the protocol
/// is strictly request/response per connection. Handler threads take
/// session locks only through the `Session` API (all leaf locks, see
/// docs/threading.md); the accept loop joins finished handlers as it
/// goes and joins all of them on shutdown.
///
/// Shutdown: `request_stop()` is async-signal-safe (atomic flag + a
/// self-pipe wakeup), so `tools/ecohmem_serve.cpp` calls it straight
/// from the SIGTERM/SIGINT handler. The drain is graceful: the listen
/// socket closes, in-flight frames finish and get their replies,
/// handlers then send ERROR shutting-down and close, queued ingest
/// blocks are applied to the stores, and the socket file is unlinked
/// before `run()` returns.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/posix.hpp"
#include "ecohmem/serve/protocol.hpp"
#include "ecohmem/serve/session.hpp"

namespace ecohmem::serve {

struct ServerOptions {
  /// Path of the unix-domain socket to listen on (required). A stale
  /// socket file from a dead daemon is replaced.
  std::string socket_path;

  /// Registry bound: HELLO-create fails beyond it.
  std::size_t max_sessions = 256;

  /// Per-session ingest queue bound (the backpressure point).
  std::size_t queue_blocks = 64;

  /// Ceiling on accepted frame sizes.
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// listen(2) backlog.
  int backlog = 16;

  /// Backoff suggested to clients in BUSY replies.
  std::uint32_t busy_retry_hint_ms = 5;

  /// Analyzer knobs for the session stores.
  analyzer::AnalyzerOptions analyzer;

  /// Test hook, forwarded to every session (SessionOptions::before_apply).
  std::function<void()> before_apply;
};

/// The daemon. Construct via `create` (binds the socket), then call
/// `run()` from the serving thread; `request_stop()` from anywhere —
/// including a signal handler — makes `run()` drain and return.
class Server {
 public:
  /// Binds and listens on `options.socket_path`.
  [[nodiscard]] static Expected<std::unique_ptr<Server>> create(ServerOptions options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept/dispatch loop; blocks until `request_stop()`, then drains
  /// (connections joined, session queues applied, socket unlinked).
  [[nodiscard]] Status run();

  /// Makes `run()` stop accepting and drain. Async-signal-safe;
  /// idempotent.
  void request_stop();

  /// The bound socket path.
  [[nodiscard]] const std::string& socket_path() const { return options_.socket_path; }

  /// The session registry (tests and in-process embedding).
  [[nodiscard]] SessionManager& sessions() { return *sessions_; }

 private:
  struct ConnectionHandle {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;  ///< set by the handler on exit
  };

  explicit Server(ServerOptions options);

  void handle_connection(common::posix::UniqueFd fd);
  void reap_connections(bool join_all);

  ServerOptions options_;
  std::unique_ptr<SessionManager> sessions_;
  common::posix::UniqueFd listen_fd_;
  common::posix::WakePipe wake_;
  std::atomic<bool> stopping_{false};
  std::vector<ConnectionHandle> connections_;  ///< touched only by run()'s thread
};

}  // namespace ecohmem::serve
