#pragma once

/// \file session.hpp
/// Per-client analysis sessions for the `ecohmem-serve` daemon.
///
/// A `Session` is the serving-side refactor of the offline analyzer: a
/// bounded ingest queue feeding an `IncrementalAggregator` (the site
/// store) from a dedicated applier thread, so connection threads never
/// block on analysis. Placement queries run against **epoch-based
/// snapshots**: `snapshot()` waits until every block accepted before
/// the call has been applied, then finalizes (or reuses the cached
/// result for that epoch) — ingestion continues concurrently, and the
/// snapshot for epoch E is bit-identical to `analyze()` over the first
/// E blocks (docs/serving.md §snapshot-consistency).
///
/// Locking (all leaves; ranks in docs/threading.md):
///  - `serve_session_queue` guards the ingest queue + block counters
///    and carries both condition variables (applier wakeup, flush).
///  - `serve_session_store` guards the aggregator, the drop/coverage
///    counters and the snapshot cache.
/// The applier moves one block at a time: pop under the queue lock,
/// apply under the store lock, acknowledge under the queue lock — at
/// most one ranked lock held at any point.
///
/// `SessionManager` is the daemon's registry: id-sharded, each shard
/// behind a `serve_registry_shard` shared mutex. Lookups copy the
/// `shared_ptr` out and release the shard lock before touching the
/// session, so registry and session locks never nest.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ecohmem/analyzer/incremental.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/lockdep.hpp"
#include "ecohmem/common/thread_annotations.hpp"
#include "ecohmem/trace/codec.hpp"
#include "ecohmem/trace/events.hpp"

namespace ecohmem::serve {

struct SessionOptions {
  /// Analyzer knobs for the session store (threads is ignored — the
  /// incremental path folds on the applier thread).
  analyzer::AnalyzerOptions analyzer;

  /// Ingest queue bound: blocks accepted but not yet applied. A full
  /// queue makes `enqueue_block` report backpressure (wire: BUSY).
  std::size_t queue_blocks = 64;

  /// Test hook: runs on the applier thread before each block is
  /// applied. Lets tests hold the queue full deterministically.
  std::function<void()> before_apply;
};

/// Counter snapshot for STATS replies; field meanings match
/// protocol::StatsData.
struct SessionStats {
  std::uint64_t session_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t blocks_accepted = 0;
  std::uint64_t blocks_dropped = 0;
  std::uint64_t events_seen = 0;
  std::uint64_t events_declared = 0;
  std::uint32_t queue_depth = 0;
  std::uint32_t attached_clients = 0;
  std::string error;  ///< first ingest error, empty while healthy
};

/// One tenant's analysis state. Thread-safe; created via SessionManager.
class Session {
 public:
  /// `header` carries the trace tables every event refers into
  /// (immutable for the session's lifetime). Spawns the applier thread.
  Session(std::uint64_t id, trace::codec::HeaderInfo header, SessionOptions options);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Drains the queue and joins the applier.
  ~Session();

  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// The session's trace header (stacks/functions/modules/rate).
  [[nodiscard]] const trace::codec::HeaderInfo& header() const { return header_; }

  /// Outcome of an enqueue attempt.
  enum class Enqueue {
    kAccepted,  ///< queued; will be applied in arrival order
    kBusy,      ///< queue full — backpressure, caller must resend
    kClosed,    ///< session is draining (daemon shutdown)
  };

  /// Hands one decoded block to the applier. Blocks are applied in
  /// acceptance order across all connections of this session.
  [[nodiscard]] Enqueue enqueue_block(std::vector<trace::Event> events);

  /// Coverage accounting for an INGEST_BLOCK whose body failed to
  /// decode: the declared events count as lost (salvage semantics —
  /// the session survives, its coverage degrades).
  void note_dropped_block(std::uint64_t declared_events);

  /// A consistent view of the session store.
  struct Snapshot {
    std::uint64_t epoch = 0;   ///< blocks applied when the snapshot was cut
    std::uint64_t events = 0;  ///< events folded into the analysis
    std::shared_ptr<const analyzer::AnalysisResult> analysis;
  };

  /// Flushes (waits until every block accepted before this call is
  /// applied) and finalizes the store. Consecutive snapshots of the
  /// same epoch share one cached result. Fails when the store is
  /// poisoned (a block hit a semantic error, e.g. a double free).
  [[nodiscard]] Expected<Snapshot> snapshot();

  /// The flush barrier alone: waits until every block accepted before
  /// this call has been applied to the store (shutdown drain, tests).
  void flush();

  /// Current counters (two brief lock hold periods, no flush).
  [[nodiscard]] SessionStats stats();

  /// Connection refcount, for STATS only — sessions outlive their
  /// connections (a later client may attach and query).
  void attach() { attach_count_.fetch_add(1, std::memory_order_relaxed); }
  void detach() { attach_count_.fetch_sub(1, std::memory_order_relaxed); }

 private:
  void applier_loop();

  const std::uint64_t id_;
  const trace::codec::HeaderInfo header_;
  const SessionOptions options_;

  common::RankedMutex queue_mu_{common::lockdep::LockRank::kServeSessionQueue,
                                "serve_session_queue"};
  std::condition_variable_any work_cv_;     ///< queue_mu_: applier wakeup
  std::condition_variable_any applied_cv_;  ///< queue_mu_: flush waiters
  std::deque<std::vector<trace::Event>> queue_ ECOHMEM_GUARDED_BY(queue_mu_);
  std::uint64_t accepted_blocks_ ECOHMEM_GUARDED_BY(queue_mu_) = 0;
  std::uint64_t applied_blocks_ ECOHMEM_GUARDED_BY(queue_mu_) = 0;
  bool stopping_ ECOHMEM_GUARDED_BY(queue_mu_) = false;

  common::RankedMutex store_mu_{common::lockdep::LockRank::kServeSessionStore,
                                "serve_session_store"};
  analyzer::IncrementalAggregator store_ ECOHMEM_GUARDED_BY(store_mu_);
  std::uint64_t epoch_ ECOHMEM_GUARDED_BY(store_mu_) = 0;
  std::uint64_t dropped_blocks_ ECOHMEM_GUARDED_BY(store_mu_) = 0;
  std::uint64_t dropped_events_ ECOHMEM_GUARDED_BY(store_mu_) = 0;
  std::uint64_t cached_epoch_ ECOHMEM_GUARDED_BY(store_mu_) = 0;
  std::shared_ptr<const analyzer::AnalysisResult> cached_ ECOHMEM_GUARDED_BY(store_mu_);

  std::atomic<std::uint32_t> attach_count_{0};

  std::thread applier_;  ///< started last, joined in the destructor
};

/// The daemon's session registry: sharded by id so concurrent HELLOs
/// and lookups from many connection threads do not serialize.
class SessionManager {
 public:
  /// `defaults` seeds every new session's options; `max_sessions`
  /// bounds the registry (create fails beyond it).
  explicit SessionManager(SessionOptions defaults = {}, std::size_t max_sessions = 256);

  /// Opens a new session around `header`, assigning a fresh id.
  [[nodiscard]] Expected<std::shared_ptr<Session>> create(trace::codec::HeaderInfo header);

  /// The session with `id`, or nullptr. The returned pointer keeps the
  /// session alive independently of the registry.
  [[nodiscard]] std::shared_ptr<Session> find(std::uint64_t id);

  /// Retires `id` from the registry (live references stay valid).
  bool erase(std::uint64_t id);

  /// Every registered session (shutdown drain, tests).
  [[nodiscard]] std::vector<std::shared_ptr<Session>> all();

  /// Registered session count.
  [[nodiscard]] std::size_t size() const { return count_.load(std::memory_order_relaxed); }

 private:
  static constexpr std::size_t kShards = 8;

  struct Shard {
    common::RankedSharedMutex mu{common::lockdep::LockRank::kServeRegistryShard,
                                 "serve_registry_shard"};
    std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions
        ECOHMEM_GUARDED_BY(mu);
  };

  Shard& shard_of(std::uint64_t id) { return shards_[id % kShards]; }

  const SessionOptions defaults_;
  const std::size_t max_sessions_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> count_{0};
  std::array<Shard, kShards> shards_;
};

}  // namespace ecohmem::serve
