#include "ecohmem/learn/policy.hpp"

#include <algorithm>
#include <numeric>

namespace ecohmem::learn {

Expected<advisor::Placement> place_by_ranker(const analyzer::AnalysisResult& analysis,
                                             const advisor::AdvisorConfig& config,
                                             const Model& model) {
  if (config.tiers.empty()) return unexpected("advisor config has no tiers");
  if (model.schema_hash != feature_schema_hash()) {
    return unexpected("model feature schema hash does not match this build "
                      "(retrain with ecohmem-train)");
  }

  const std::vector<analyzer::SiteRecord>& sites = analysis.sites;
  const FeatureMatrix features = extract_features(analysis);

  std::vector<double> scores(sites.size(), 0.0);
  for (std::size_t i = 0; i < features.size(); ++i) {
    scores[i] = model.score(features.rows[i]);
  }

  advisor::Placement placement;
  placement.fallback_tier = config.fallback_tier().name;

  // One global ranked order (the model already folds in everything the
  // per-tier density recomputation captured); stable_sort keeps site
  // order as the tie-break so equal scores stay deterministic.
  std::vector<std::size_t> remaining(sites.size());
  std::iota(remaining.begin(), remaining.end(), std::size_t{0});
  std::stable_sort(remaining.begin(), remaining.end(),
                   [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  for (const advisor::TierPolicy& tier : config.tiers) {
    if (remaining.empty()) break;

    Bytes used = 0;
    std::vector<std::size_t> next_remaining;
    next_remaining.reserve(remaining.size());
    for (const std::size_t idx : remaining) {
      const analyzer::SiteRecord& site = sites[idx];
      const Bytes footprint = advisor::site_footprint(site, config.footprint_mode);

      // Same rule as the greedy knapsack: sites with no observed misses
      // carry no value, so they never occupy a non-fallback tier.
      const bool worthless =
          site.density(tier.load_coef, tier.store_coef) <= 0.0 && !tier.fallback;

      if (!worthless && used + footprint <= tier.limit) {
        used += footprint;
        advisor::PlacementDecision d;
        d.stack = site.stack;
        d.callstack = site.callstack;
        d.tier = tier.name;
        d.footprint = footprint;
        d.density = scores[idx];
        placement.decisions.push_back(std::move(d));
      } else {
        next_remaining.push_back(idx);
      }
    }
    remaining = std::move(next_remaining);
  }

  for (const std::size_t idx : remaining) {
    const analyzer::SiteRecord& site = sites[idx];
    advisor::PlacementDecision d;
    d.stack = site.stack;
    d.callstack = site.callstack;
    d.tier = placement.fallback_tier;
    d.footprint = advisor::site_footprint(site, config.footprint_mode);
    d.density = scores[idx];
    placement.decisions.push_back(std::move(d));
  }

  return placement;
}

}  // namespace ecohmem::learn
