#pragma once

/// \file ranker.hpp
/// Pairwise learning-to-rank over site features (docs/learned.md).
///
/// The model is a linear scorer w·x over the feature columns of
/// features.hpp; training minimizes the pairwise logistic loss
///
///   L(w) = sum over preference pairs (a better than b) of
///          log(1 + exp(-(w·x_a - w·x_b))) + (l2/2)|w|^2
///
/// by plain SGD. Pair visit order is shuffled per epoch with an
/// explicitly seeded `ecohmem::Rng` (the srclint det-rand contract), so
/// training is bit-reproducible: same pairs + same options = same
/// weights. Scores are only ever *compared*, never interpreted, so the
/// model has no bias term (it cancels in every difference).

#include <cstdint>
#include <string>
#include <vector>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/learn/features.hpp"

namespace ecohmem::learn {

/// A trained linear ranking model.
struct Model {
  /// Pinned feature schema (feature_schema_hash() at training time).
  std::uint64_t schema_hash = 0;

  /// One weight per feature column.
  std::array<double, kFeatureCount> weights{};

  /// Names of the workloads the model was trained on (provenance only;
  /// stored in the model file, never used for scoring).
  std::vector<std::string> corpus;

  /// Ranking score of one feature row (higher = more DRAM-worthy).
  [[nodiscard]] double score(const FeatureRow& x) const {
    double s = 0.0;
    for (std::size_t i = 0; i < kFeatureCount; ++i) s += weights[i] * x[i];
    return s;
  }
};

/// One training preference: `better` should outscore `worse`. `weight`
/// scales the pair's gradient (decisive memsim gaps teach harder).
struct PairSample {
  FeatureRow better{};
  FeatureRow worse{};
  double weight = 1.0;
};

struct TrainOptions {
  int epochs = 400;
  double learning_rate = 0.05;
  double l2 = 1e-4;
  std::uint64_t seed = 0x5eed;
};

struct TrainStats {
  std::size_t pairs = 0;        ///< training pairs seen
  int epochs = 0;               ///< epochs run
  double final_loss = 0.0;      ///< mean pairwise logistic loss, last epoch
  double pair_accuracy = 0.0;   ///< fraction of pairs ranked correctly
};

/// Trains `model.weights` from scratch on `pairs`. Fails on an empty
/// pair set or non-finite/invalid options. Stamps `model.schema_hash`.
[[nodiscard]] Expected<TrainStats> train_pairwise(Model& model,
                                                  const std::vector<PairSample>& pairs,
                                                  const TrainOptions& options = {});

}  // namespace ecohmem::learn
