#include "ecohmem/learn/ranker.hpp"

#include <cmath>
#include <numeric>

#include "ecohmem/common/rng.hpp"

namespace ecohmem::learn {

Expected<TrainStats> train_pairwise(Model& model,
                                    const std::vector<PairSample>& pairs,
                                    const TrainOptions& options) {
  if (pairs.empty()) return unexpected("train_pairwise: empty pair set");
  if (options.epochs <= 0)
    return unexpected("train_pairwise: epochs must be positive");
  if (!(options.learning_rate > 0.0) || !std::isfinite(options.learning_rate))
    return unexpected("train_pairwise: learning_rate must be positive and finite");
  if (options.l2 < 0.0 || !std::isfinite(options.l2))
    return unexpected("train_pairwise: l2 must be non-negative and finite");
  for (const auto& p : pairs) {
    if (!(p.weight > 0.0) || !std::isfinite(p.weight))
      return unexpected("train_pairwise: pair weight must be positive and finite");
    for (std::size_t i = 0; i < kFeatureCount; ++i) {
      if (!std::isfinite(p.better[i]) || !std::isfinite(p.worse[i]))
        return unexpected("train_pairwise: non-finite feature value in pair set");
    }
  }

  model.schema_hash = feature_schema_hash();
  model.weights.fill(0.0);

  // Feature scales are wildly mixed (log-bytes ~30, shares ~0..1). A
  // single learning rate on raw diffs lets the large-scale columns
  // dominate the gradient, so standardize each diff column to unit RMS
  // for training and fold the scale back into the stored weights at the
  // end — exact for a pairwise linear ranker, since score differences
  // w·(a-b) = (w/s)·(s*(a-b)) are unchanged.
  std::array<double, kFeatureCount> scale{};
  for (const auto& p : pairs) {
    for (std::size_t i = 0; i < kFeatureCount; ++i) {
      const double d = p.better[i] - p.worse[i];
      scale[i] += d * d;
    }
  }
  for (auto& s : scale) {
    s = std::sqrt(s / static_cast<double>(pairs.size()));
    if (s < 1e-12) s = 1.0;  // constant column: leave raw (weight stays 0-ish)
  }

  std::vector<std::size_t> order(pairs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  Rng rng(options.seed);
  double mean_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Fisher-Yates with the seeded Rng: the visit order — and therefore
    // the final weights — depends only on (pairs, options).
    for (std::size_t i = order.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
      std::swap(order[i - 1], order[j]);
    }

    double loss = 0.0;
    for (const std::size_t idx : order) {
      const PairSample& p = pairs[idx];
      double margin = 0.0;
      for (std::size_t i = 0; i < kFeatureCount; ++i)
        margin += model.weights[i] * (p.better[i] - p.worse[i]) / scale[i];

      // d/dm log(1 + exp(-m)) = -sigmoid(-m); clamp exp input to keep
      // the loss finite for very confident pairs.
      const double m = std::min(std::max(margin, -50.0), 50.0);
      loss += p.weight * std::log1p(std::exp(-m));
      const double g = p.weight / (1.0 + std::exp(m));  // sigmoid(-m)

      for (std::size_t i = 0; i < kFeatureCount; ++i) {
        const double diff = (p.better[i] - p.worse[i]) / scale[i];
        model.weights[i] +=
            options.learning_rate * (g * diff - options.l2 * model.weights[i]);
      }
    }
    mean_loss = loss / static_cast<double>(pairs.size());
  }

  // Fold the standardization into the weights so Model::score applies
  // directly to raw feature rows.
  for (std::size_t i = 0; i < kFeatureCount; ++i) model.weights[i] /= scale[i];

  TrainStats stats;
  stats.pairs = pairs.size();
  stats.epochs = options.epochs;
  stats.final_loss = mean_loss;
  std::size_t correct = 0;
  for (const auto& p : pairs) {
    if (model.score(p.better) > model.score(p.worse)) ++correct;
  }
  stats.pair_accuracy =
      static_cast<double>(correct) / static_cast<double>(pairs.size());
  return stats;
}

}  // namespace ecohmem::learn
