#include "ecohmem/learn/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ecohmem/apps/apps.hpp"
#include "ecohmem/core/ecohmem.hpp"

namespace ecohmem::learn {

namespace {

/// Pair weight from the relative total_ns gap between the two outcomes:
/// 1.0 for a barely-significant gap, saturating at 4.0 for decisive ones.
double gap_weight(double better_ns, double worse_ns) {
  const double gap = (worse_ns - better_ns) / better_ns;
  return 1.0 + std::min(gap * 20.0, 3.0);
}

/// Row index of `stack` in the feature matrix (matrix order = site order).
const FeatureRow* row_of(const FeatureMatrix& features, trace::StackId stack) {
  for (std::size_t i = 0; i < features.stacks.size(); ++i) {
    if (features.stacks[i] == stack) return &features.rows[i];
  }
  return nullptr;
}

}  // namespace

Expected<Corpus> build_corpus(const std::vector<std::string>& apps,
                              const memsim::MemorySystem& system,
                              const CorpusOptions& options) {
  if (apps.empty()) return unexpected("build_corpus: empty app list");
  const std::vector<std::string> known = apps::app_names();
  for (const auto& name : apps) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      return unexpected("build_corpus: unknown app '" + name + "'");
    }
  }
  if (system.tier_count() < 2) {
    return unexpected("build_corpus: need a fast tier and a fallback tier");
  }
  const std::string dram_name = system.tier(0).name();
  const std::string pmem_name = system.tier(system.fallback_index()).name();

  Corpus corpus;
  corpus.apps = apps;

  apps::AppOptions app_opt;
  app_opt.iterations = options.app_iterations;
  app_opt.scale = options.app_scale;

  for (const auto& app_name : apps) {
    const runtime::Workload workload = apps::make_app(app_name, app_opt);

    core::WorkflowOptions wf_opt;
    wf_opt.dram_limit = options.dram_limit;
    wf_opt.store_coef = options.store_coef;
    const auto wf = core::run_workflow(workload, system, wf_opt);
    if (!wf) return unexpected("build_corpus: " + app_name + ": " + wf.error());

    const analyzer::AnalysisResult& analysis = wf->analysis;
    const FeatureMatrix features = extract_features(analysis);

    AppCorpusStats stats;
    stats.app = app_name;
    stats.sites = analysis.sites.size();

    // ---- 0. All-PMem baseline: the reference point that turns each solo
    // probe's total_ns into a DRAM *gain* for that one site.
    double base_ns = 0.0;
    {
      advisor::Placement probe;
      probe.fallback_tier = pmem_name;
      for (const auto& site : analysis.sites) {
        advisor::PlacementDecision d;
        d.stack = site.stack;
        d.callstack = site.callstack;
        d.tier = pmem_name;
        d.footprint = advisor::site_footprint(site, advisor::FootprintMode::kPeakLive);
        probe.decisions.push_back(std::move(d));
      }
      const auto metrics =
          core::run_with_placement(workload, system, probe, options.dram_limit);
      if (!metrics) {
        return unexpected("build_corpus: " + app_name + " base probe: " + metrics.error());
      }
      base_ns = static_cast<double>(metrics->total_ns);
      ++stats.sim_runs;
    }

    // ---- 1. Solo probes: each candidate site alone in DRAM.
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < analysis.sites.size(); ++i) {
      const analyzer::SiteRecord& s = analysis.sites[i];
      const Bytes fp = advisor::site_footprint(s, advisor::FootprintMode::kPeakLive);
      if (s.load_misses + s.store_misses <= 0.0) continue;
      if (fp > options.dram_limit) continue;
      candidates.push_back(i);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](std::size_t a, std::size_t b) {
                       const auto& sa = analysis.sites[a];
                       const auto& sb = analysis.sites[b];
                       return sa.load_misses + sa.store_misses >
                              sb.load_misses + sb.store_misses;
                     });
    if (candidates.size() > options.max_single_sites) {
      candidates.resize(options.max_single_sites);
    }

    std::vector<double> solo_ns(candidates.size(), 0.0);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const analyzer::SiteRecord& solo = analysis.sites[candidates[c]];
      advisor::Placement probe;
      probe.fallback_tier = pmem_name;
      for (const auto& site : analysis.sites) {
        advisor::PlacementDecision d;
        d.stack = site.stack;
        d.callstack = site.callstack;
        d.tier = site.stack == solo.stack ? dram_name : pmem_name;
        d.footprint = advisor::site_footprint(site, advisor::FootprintMode::kPeakLive);
        probe.decisions.push_back(std::move(d));
      }
      const auto metrics =
          core::run_with_placement(workload, system, probe, options.dram_limit);
      if (!metrics) {
        return unexpected("build_corpus: " + app_name + " solo probe: " + metrics.error());
      }
      solo_ns[c] = static_cast<double>(metrics->total_ns);
      ++stats.sim_runs;
    }

    // Label by gain *per byte of DRAM consumed*, not raw gain: under a
    // binding capacity the knapsack-correct ranking is value density,
    // and labelling by absolute gain would teach the ranker to promote
    // huge mediocre objects over small hot ones. Packing exceptions
    // (a big object worth evicting several dense small ones for) are
    // covered by the promote probes below, which compare whole
    // placements through memsim.
    std::vector<double> solo_density(candidates.size(), 0.0);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const Bytes fp = advisor::site_footprint(analysis.sites[candidates[c]],
                                               advisor::FootprintMode::kPeakLive);
      solo_density[c] =
          (base_ns - solo_ns[c]) / static_cast<double>(std::max<Bytes>(fp, 1));
    }
    for (std::size_t a = 0; a < candidates.size(); ++a) {
      for (std::size_t b = a + 1; b < candidates.size(); ++b) {
        const std::size_t winner = solo_density[a] >= solo_density[b] ? a : b;
        const std::size_t loser = winner == a ? b : a;
        const double scale =
            std::max(std::abs(solo_density[winner]), std::abs(solo_density[loser]));
        if (scale <= 0.0) continue;
        const double gap = (solo_density[winner] - solo_density[loser]) / scale;
        if (gap < options.min_rel_gap) continue;
        PairSample p;
        p.better = features.rows[candidates[winner]];
        p.worse = features.rows[candidates[loser]];
        p.weight = 1.0 + std::min(gap * 2.0, 3.0);
        corpus.pairs.push_back(p);
        ++stats.pairs;
      }
    }

    // ---- 2. Promote probes: pull a fallback site into DRAM, evicting
    // as many of the weakest-density DRAM members as capacity demands,
    // and replay the whole perturbed placement through memsim. These are
    // the packing experiments solo probes cannot express: whether one
    // big object is worth several dense small ones. Each probe labels
    // the promoted site against every evicted site, in the direction the
    // simulated runtime actually moved.
    const advisor::Placement& greedy = wf->placement;
    const double greedy_ns = static_cast<double>(wf->production_metrics.total_ns);

    std::vector<std::size_t> dram_members;
    std::vector<std::size_t> fallback_members;
    for (std::size_t i = 0; i < greedy.decisions.size(); ++i) {
      if (greedy.decisions[i].tier == dram_name) dram_members.push_back(i);
      else if (greedy.decisions[i].tier == pmem_name) fallback_members.push_back(i);
    }
    // Weakest DRAM members first (ascending decision value) — the
    // cheapest evictions; biggest fallback members first — the promotions
    // greedy's per-byte density ranking most plausibly got wrong.
    std::stable_sort(dram_members.begin(), dram_members.end(),
                     [&](std::size_t a, std::size_t b) {
                       return greedy.decisions[a].density < greedy.decisions[b].density;
                     });
    std::stable_sort(fallback_members.begin(), fallback_members.end(),
                     [&](std::size_t a, std::size_t b) {
                       return greedy.decisions[a].footprint > greedy.decisions[b].footprint;
                     });

    Bytes dram_used = 0;
    for (const std::size_t i : dram_members) dram_used += greedy.decisions[i].footprint;

    std::size_t probes = 0;
    for (const std::size_t pi : fallback_members) {
      if (probes >= options.max_swaps) break;
      const advisor::PlacementDecision& promote = greedy.decisions[pi];
      const FeatureRow* promote_row = row_of(features, promote.stack);
      if (promote_row == nullptr) continue;
      if (promote.footprint > options.dram_limit) continue;

      std::vector<std::size_t> evicted;
      Bytes freed = 0;
      for (const std::size_t di : dram_members) {
        if (dram_used - freed + promote.footprint <= options.dram_limit) break;
        evicted.push_back(di);
        freed += greedy.decisions[di].footprint;
      }
      if (dram_used - freed + promote.footprint > options.dram_limit) continue;
      // Fits without evicting anything: greedy skipped it as worthless
      // (zero miss density), not for capacity — nothing to learn here.
      if (evicted.empty()) continue;

      advisor::Placement perturbed = greedy;
      for (const std::size_t di : evicted) perturbed.set_tier(di, pmem_name);
      perturbed.set_tier(pi, dram_name);
      const auto metrics =
          core::run_with_placement(workload, system, perturbed, options.dram_limit);
      if (!metrics) {
        return unexpected("build_corpus: " + app_name + " promote probe: " +
                          metrics.error());
      }
      const double probe_ns = static_cast<double>(metrics->total_ns);
      ++stats.sim_runs;
      ++probes;

      const double gap = std::abs(probe_ns - greedy_ns) / std::max(greedy_ns, 1.0);
      if (gap < options.min_rel_gap) continue;
      const bool promote_won = probe_ns < greedy_ns;
      const double weight = promote_won ? gap_weight(probe_ns, greedy_ns)
                                        : gap_weight(greedy_ns, probe_ns);
      for (const std::size_t di : evicted) {
        const FeatureRow* evicted_row = row_of(features, greedy.decisions[di].stack);
        if (evicted_row == nullptr) continue;
        PairSample p;
        p.better = promote_won ? *promote_row : *evicted_row;
        p.worse = promote_won ? *evicted_row : *promote_row;
        p.weight = weight;
        corpus.pairs.push_back(p);
        ++stats.pairs;
      }
    }

    corpus.sim_runs += stats.sim_runs;
    corpus.per_app.push_back(std::move(stats));
  }

  if (corpus.pairs.empty()) {
    return unexpected("build_corpus: no informative pairs (all probes tied)");
  }
  return corpus;
}

}  // namespace ecohmem::learn
