#pragma once

/// \file model.hpp
/// Versioned on-disk format for trained ranking models (docs/learned.md).
///
/// Layout (all integers little-endian, doubles as IEEE-754 bit patterns):
///
///   offset  size  field
///   0       8     magic "ECOHMODL"
///   8       4     u32 format version (kModelVersion)
///   12      8     u64 feature schema hash (features.hpp)
///   20      4     u32 feature count
///   24      4     u32 corpus entry count C
///   28      ...   C length-prefixed app names (u32 len + bytes each)
///   ...     8*N   N f64 weights
///   end-8   8     u64 FNV-1a checksum of every preceding byte
///
/// Loading is strict, mirroring the trace loaders: every failure carries
/// the absolute byte offset it was detected at, any truncated prefix is
/// rejected, the schema hash must match the running binary's
/// `feature_schema_hash()`, and the trailing checksum must verify.

#include <string>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/learn/ranker.hpp"

namespace ecohmem::learn {

inline constexpr char kModelMagic[8] = {'E', 'C', 'O', 'H', 'M', 'O', 'D', 'L'};
inline constexpr std::uint32_t kModelVersion = 1;

/// Serializes `model` to the documented byte layout.
[[nodiscard]] std::string encode_model(const Model& model);

/// Strictly decodes a model from bytes; errors name absolute offsets.
[[nodiscard]] Expected<Model> decode_model(std::string_view bytes);

/// Writes `model` to `path` (encode + single write; fails on IO error).
[[nodiscard]] Status save_model(const Model& model, const std::string& path);

/// Reads and strictly decodes a model file.
[[nodiscard]] Expected<Model> load_model(const std::string& path);

/// Stable hex digest of the model's serialized bytes. Stamped into
/// placement reports (`# model = <hash>`) so ecohmem-lint can verify a
/// report against the model file that produced it.
[[nodiscard]] std::string model_content_hash(const Model& model);

}  // namespace ecohmem::learn
