#pragma once

/// \file policy.hpp
/// The `--policy learned` advisor: rank sites with a trained model, then
/// fill tiers in ranked order under the *same* capacity accounting as
/// the greedy knapsack (docs/learned.md).
///
/// Only the site ordering changes relative to `place_by_density` — the
/// footprint charging, per-tier limits, zero-miss fallback rule and
/// leftover handling are identical, so the emitted placement report is
/// byte-compatible with everything downstream (FlexMalloc, lint, serve).

#include "ecohmem/advisor/knapsack.hpp"
#include "ecohmem/learn/model.hpp"

namespace ecohmem::learn {

/// Places the analyzed sites by model rank. `decision.density` records
/// the model score (diagnostics, like greedy's density column). Fails on
/// an empty tier list or a model whose schema hash does not match this
/// build.
[[nodiscard]] Expected<advisor::Placement> place_by_ranker(
    const analyzer::AnalysisResult& analysis, const advisor::AdvisorConfig& config,
    const Model& model);

}  // namespace ecohmem::learn
