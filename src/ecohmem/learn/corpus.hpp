#pragma once

/// \file corpus.hpp
/// Training-label construction from memsim outcomes (docs/learned.md).
///
/// For each corpus app the builder profiles and analyzes the workload
/// once, then enumerates placement perturbations and scores each with
/// the memory simulator:
///
///   1. *Solo probes*: one site alone in DRAM, everything else on the
///      fallback tier, against an all-fallback baseline. Each probe
///      yields the site's DRAM gain; sites are compared by gain *per
///      byte* — the knapsack-correct value density under a binding
///      capacity — independent of greedy.
///   2. *Promote probes*: starting from the greedy placement, pull a
///      fallback site into DRAM and evict as many of the weakest-density
///      DRAM members as capacity demands. These are the packing
///      experiments value density cannot express: whether one big object
///      is worth several dense small ones. The simulated runtime labels
///      the promoted site against every evicted site.
///
/// Each preference becomes a `PairSample` whose weight grows with the
/// relative total_ns gap, so decisive outcomes teach harder than noise.
/// Everything is deterministic: fixed profile seeds, fixed enumeration
/// order, no clocks.

#include <string>
#include <vector>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/learn/ranker.hpp"
#include "ecohmem/memsim/tier.hpp"

namespace ecohmem::learn {

struct CorpusOptions {
  /// DRAM budget for the greedy baseline and capacity checks.
  Bytes dram_limit = 12ull * 1024 * 1024 * 1024;

  /// Store-miss coefficient for the greedy baseline (bench convention).
  double store_coef = 0.125;

  /// Solo probes: at most this many sites per app (largest traffic first).
  std::size_t max_single_sites = 16;

  /// Promote probes: at most this many per app (biggest fallback
  /// members first).
  std::size_t max_swaps = 12;

  /// Relative total_ns gap below which two outcomes are treated as a tie
  /// (no pair emitted; memsim noise floor).
  double min_rel_gap = 1e-4;

  /// Forwarded to the app models (0/1.0 = each app's defaults).
  int app_iterations = 0;
  double app_scale = 1.0;
};

/// Per-app accounting, reported by ecohmem-train.
struct AppCorpusStats {
  std::string app;
  std::size_t sites = 0;
  std::size_t pairs = 0;
  std::size_t sim_runs = 0;
};

struct Corpus {
  std::vector<PairSample> pairs;
  std::vector<std::string> apps;
  std::vector<AppCorpusStats> per_app;
  std::size_t sim_runs = 0;  ///< total memsim evaluations
};

/// Builds training pairs for `apps` (names accepted by `apps::make_app`)
/// on `system`. Fails on an unknown app name or a workflow error.
[[nodiscard]] Expected<Corpus> build_corpus(const std::vector<std::string>& apps,
                                            const memsim::MemorySystem& system,
                                            const CorpusOptions& options = {});

}  // namespace ecohmem::learn
