#pragma once

/// \file features.hpp
/// Deterministic feature extraction for the learning-to-rank advisor
/// policy (docs/learned.md).
///
/// One row per analyzed allocation site, in site order. Every column is
/// a pure function of the `analyzer::AnalysisResult` — no randomness, no
/// clocks, no iteration over unordered containers — so the matrix is
/// bitwise identical across runs and analyzer thread counts (the
/// analyzer itself guarantees bit-identical SiteRecords for every
/// thread count; see docs/threading.md).
///
/// The column set is versioned: `feature_schema_hash()` digests the
/// schema version and every column name, and model files pin that hash
/// so a model trained against one schema can never silently score
/// another (model.hpp).

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "ecohmem/analyzer/aggregator.hpp"

namespace ecohmem::learn {

/// Number of feature columns (kFeatureSchemaVersion pins their meaning).
inline constexpr std::size_t kFeatureCount = 14;

/// Bumped whenever a column is added, removed, reordered or redefined.
inline constexpr std::uint32_t kFeatureSchemaVersion = 1;

/// Column names, in column order (docs/learned.md documents each).
[[nodiscard]] const std::array<std::string_view, kFeatureCount>& feature_names();

/// FNV-1a digest of the schema version and the column names. Stored in
/// every model file; loaders reject a model whose hash differs.
[[nodiscard]] std::uint64_t feature_schema_hash();

/// One feature row (column order = `feature_names()` order).
using FeatureRow = std::array<double, kFeatureCount>;

/// The extracted matrix. Rows align 1:1 with `analysis.sites` (row i
/// describes `sites[i]`); `stacks` repeats the site stack ids for
/// convenience when rows are shuffled into training pairs.
struct FeatureMatrix {
  std::vector<trace::StackId> stacks;
  std::vector<FeatureRow> rows;

  [[nodiscard]] std::size_t size() const { return rows.size(); }
};

/// Extracts the documented feature matrix from an analysis. Per-trace
/// normalizations (miss share, footprint share, bandwidth share, trace
/// duration) are computed over the whole `analysis`, so rows from
/// different traces are comparable after extraction.
[[nodiscard]] FeatureMatrix extract_features(const analyzer::AnalysisResult& analysis);

}  // namespace ecohmem::learn
