#include "ecohmem/learn/model.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <type_traits>

#include "ecohmem/common/strings.hpp"

namespace ecohmem::learn {

namespace {

/// Sanity cap on corpus name lengths, matching the trace codec's string cap.
constexpr std::uint32_t kMaxNameBytes = 1u << 20;
/// Sanity cap on corpus entry count.
constexpr std::uint32_t kMaxCorpusEntries = 1u << 16;

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
void put(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounded cursor over the model bytes; offsets are absolute file offsets.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint64_t offset() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  bool read(void* out, std::size_t n) {
    if (n > remaining()) return false;
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  template <typename T>
  bool get(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return read(&v, sizeof(v));
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

Unexpected truncated_at(const char* what, std::uint64_t offset) {
  return unexpected(std::string(what) + " at offset " + std::to_string(offset));
}

}  // namespace

std::string encode_model(const Model& model) {
  std::string out;
  out.append(kModelMagic, sizeof(kModelMagic));
  put(out, kModelVersion);
  put(out, model.schema_hash);
  put(out, static_cast<std::uint32_t>(kFeatureCount));
  put(out, static_cast<std::uint32_t>(model.corpus.size()));
  for (const auto& name : model.corpus) {
    put(out, static_cast<std::uint32_t>(name.size()));
    out.append(name);
  }
  for (const double w : model.weights) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &w, sizeof(bits));
    put(out, bits);
  }
  put(out, fnv1a(out));
  return out;
}

Expected<Model> decode_model(std::string_view bytes) {
  Cursor c(bytes);
  char magic[8];
  if (!c.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kModelMagic, sizeof(kModelMagic)) != 0) {
    return unexpected("not an ecoHMEM model (bad magic)");
  }

  std::uint32_t version = 0;
  if (!c.get(version)) return truncated_at("truncated model header", c.offset());
  if (version != kModelVersion) {
    return unexpected("unsupported model version " + std::to_string(version) +
                      " (this build reads version " + std::to_string(kModelVersion) + ")");
  }

  Model model;
  if (!c.get(model.schema_hash)) {
    return truncated_at("truncated model header", c.offset());
  }
  if (model.schema_hash != feature_schema_hash()) {
    return unexpected("model feature schema hash " + strings::to_hex(model.schema_hash) +
                      " does not match this build's schema " +
                      strings::to_hex(feature_schema_hash()) +
                      " (retrain with ecohmem-train)");
  }

  std::uint32_t feature_count = 0;
  if (!c.get(feature_count)) return truncated_at("truncated model header", c.offset());
  if (feature_count != kFeatureCount) {
    return unexpected("model declares " + std::to_string(feature_count) +
                      " features but this build's schema has " +
                      std::to_string(kFeatureCount) + " at offset 20");
  }

  std::uint32_t corpus_count = 0;
  if (!c.get(corpus_count)) return truncated_at("truncated corpus table", c.offset());
  if (corpus_count > kMaxCorpusEntries) {
    return truncated_at("corrupt corpus table (implausible entry count)", c.offset() - 4);
  }
  model.corpus.reserve(corpus_count);
  for (std::uint32_t i = 0; i < corpus_count; ++i) {
    std::uint32_t len = 0;
    if (!c.get(len)) return truncated_at("truncated corpus table", c.offset());
    if (len > kMaxNameBytes || len > c.remaining()) {
      return truncated_at("truncated corpus name", c.offset());
    }
    std::string name(len, '\0');
    if (len > 0 && !c.read(name.data(), len)) {
      return truncated_at("truncated corpus name", c.offset());
    }
    model.corpus.push_back(std::move(name));
  }

  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    std::uint64_t bits = 0;
    if (!c.get(bits)) return truncated_at("truncated weight vector", c.offset());
    std::memcpy(&model.weights[i], &bits, sizeof(bits));
  }

  const std::uint64_t payload_end = c.offset();
  std::uint64_t stored_checksum = 0;
  if (!c.get(stored_checksum)) return truncated_at("truncated model checksum", c.offset());
  const std::uint64_t computed =
      fnv1a(bytes.substr(0, static_cast<std::size_t>(payload_end)));
  if (stored_checksum != computed) {
    return unexpected("model checksum mismatch at offset " + std::to_string(payload_end) +
                      " (stored " + strings::to_hex(stored_checksum) + ", computed " +
                      strings::to_hex(computed) + ")");
  }
  if (c.remaining() != 0) {
    return unexpected("model has " + std::to_string(c.remaining()) +
                      " trailing bytes at offset " + std::to_string(c.offset()));
  }
  return model;
}

Status save_model(const Model& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return unexpected("cannot open " + path + " for writing");
  const std::string bytes = encode_model(model);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return unexpected("write failed for " + path);
  return {};
}

Expected<Model> load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return unexpected("cannot open model file " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return unexpected("read failed for model file " + path);
  return decode_model(buf.str());
}

std::string model_content_hash(const Model& model) {
  return strings::to_hex(fnv1a(encode_model(model)));
}

}  // namespace ecohmem::learn
