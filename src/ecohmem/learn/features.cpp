#include "ecohmem/learn/features.hpp"

#include <algorithm>
#include <cmath>

namespace ecohmem::learn {

namespace {

/// log2(1 + x), the monotone squash used for all heavy-tailed columns.
/// Exact for x = 0 and deterministic across platforms for the IEEE
/// doubles the analyzer produces.
double log_squash(double x) { return std::log2(1.0 + std::max(x, 0.0)); }

/// x / denom with a zero-safe denominator.
double share(double x, double denom) { return denom > 0.0 ? x / denom : 0.0; }

}  // namespace

const std::array<std::string_view, kFeatureCount>& feature_names() {
  static const std::array<std::string_view, kFeatureCount> names = {
      "log_footprint_bytes",     // log2(1 + max(peak_live, max_size))
      "log_max_size_bytes",      // log2(1 + max_size)
      "log_alloc_count",         // log2(1 + alloc_count)
      "log_load_misses",         // log2(1 + load_misses)
      "log_store_misses",        // log2(1 + store_misses)
      "log_miss_density",        // log2(1 + (loads+stores)/footprint)
      "miss_share",              // (loads+stores) / trace total
      "footprint_share",         // footprint / sum of all footprints
      "log_avg_load_latency_ns", // log2(1 + avg sampled load latency)
      "lifetime_fraction",       // total lifetime / trace duration
      "log_mean_lifetime_ns",    // log2(1 + mean window duration)
      "exec_bw_share",           // site demand bw / observed system peak
      "alloc_time_bw_share",     // system bw at allocation / observed peak
      "has_writes",              // 0/1 store flag
  };
  return names;
}

std::uint64_t feature_schema_hash() {
  // FNV-1a over the schema version digits and every column name, with a
  // separator byte so renames cannot collide by concatenation.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](unsigned char byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  std::uint32_t v = kFeatureSchemaVersion;
  for (int i = 0; i < 4; ++i) {
    mix(static_cast<unsigned char>(v & 0xff));
    v >>= 8;
  }
  for (const std::string_view name : feature_names()) {
    for (const char c : name) mix(static_cast<unsigned char>(c));
    mix('\n');
  }
  return h;
}

FeatureMatrix extract_features(const analyzer::AnalysisResult& analysis) {
  FeatureMatrix m;
  m.stacks.reserve(analysis.sites.size());
  m.rows.reserve(analysis.sites.size());

  // Per-trace normalizers, folded in site order (deterministic).
  double total_misses = 0.0;
  double total_footprint = 0.0;
  for (const auto& s : analysis.sites) {
    total_misses += s.load_misses + s.store_misses;
    total_footprint +=
        static_cast<double>(std::max(s.peak_live_bytes, s.max_size));
  }
  const double trace_ns = static_cast<double>(analysis.trace_end);
  const double peak_bw = analysis.observed_peak_bw_gbs;

  for (const auto& s : analysis.sites) {
    const double footprint =
        static_cast<double>(std::max(s.peak_live_bytes, s.max_size));
    const double misses = s.load_misses + s.store_misses;

    FeatureRow row;
    row[0] = log_squash(footprint);
    row[1] = log_squash(static_cast<double>(s.max_size));
    row[2] = log_squash(static_cast<double>(s.alloc_count));
    row[3] = log_squash(s.load_misses);
    row[4] = log_squash(s.store_misses);
    row[5] = log_squash(share(misses, footprint));
    row[6] = share(misses, total_misses);
    row[7] = share(footprint, total_footprint);
    row[8] = log_squash(s.avg_load_latency_ns);
    row[9] = std::min(share(s.total_lifetime_ns, trace_ns), 1.0);
    row[10] = log_squash(s.mean_lifetime_ns);
    row[11] = std::min(share(s.exec_bw_gbs, peak_bw), 1.0);
    row[12] = std::min(share(s.alloc_time_system_bw_gbs, peak_bw), 1.0);
    row[13] = s.has_writes ? 1.0 : 0.0;

    m.stacks.push_back(s.stack);
    m.rows.push_back(row);
  }
  return m;
}

}  // namespace ecohmem::learn
