// Real-process interposition: FlexMalloc matching against *actual* call
// stacks of this very process, discovered via /proc/self/maps and
// backtrace(3) — no simulation involved.
//
// Phase 1 ("profiling"): two allocation helpers capture their own call
// stacks; we pretend the profiler found the first hot and the second
// cold and write a placement report in BOM format.
// Phase 2 ("production"): the report is parsed back and the same helpers
// allocate through FlexMalloc — their stacks must match and route to the
// advised tiers.
//
// Build & run:  ./build/examples/host_interposition

#include <cstdio>

#include "ecohmem/advisor/report.hpp"
#include "ecohmem/bom/host_introspection.hpp"
#include "ecohmem/flexmalloc/flexmalloc.hpp"

using namespace ecohmem;

namespace {

// noinline keeps the call sites distinct and stable across both phases.
// Depth 1 identifies the allocation *function*: deeper frames would also
// encode the caller's exact call site, which differs between our
// "profiling" and "production" invocations below (in a real app both
// runs execute the same code path, so deeper stacks match too — the
// depth is FlexMalloc configuration).
// The volatile markers keep the two functions structurally distinct so
// the linker's identical-code-folding cannot merge them into one symbol
// (which would merge their call stacks too — a real deployment caveat).
volatile int g_hot_marker = 1;
volatile int g_cold_marker = 2;

[[gnu::noinline]] bom::CallStack hot_allocation_site(const bom::ModuleTable& modules) {
  g_hot_marker = g_hot_marker + 1;
  return bom::capture_callstack(modules, /*skip=*/0, /*max_depth=*/1);
}

[[gnu::noinline]] bom::CallStack cold_allocation_site(const bom::ModuleTable& modules) {
  g_cold_marker = g_cold_marker + 2;
  return bom::capture_callstack(modules, /*skip=*/0, /*max_depth=*/1);
}

}  // namespace

int main() {
  // --- Process introspection (what FlexMalloc does at init).
  const auto modules = bom::modules_from_self();
  if (!modules) {
    std::fprintf(stderr, "module discovery failed: %s\n", modules.error().c_str());
    return 1;
  }
  std::printf("discovered %zu executable modules in this process:\n", modules->size());
  for (const auto& m : modules->modules()) {
    std::printf("  %-40s base 0x%llx  text %llu KiB\n", m.name.c_str(),
                static_cast<unsigned long long>(m.base),
                static_cast<unsigned long long>(m.text_size >> 10));
  }

  // --- Phase 1: "profile" the two sites and emit a report.
  const bom::CallStack hot = hot_allocation_site(*modules);
  const bom::CallStack cold = cold_allocation_site(*modules);
  if (hot.empty() || cold.empty() || hot == cold) {
    std::fprintf(stderr, "stack capture failed to distinguish the sites\n");
    return 1;
  }

  advisor::Placement placement;
  placement.fallback_tier = "pmem";
  advisor::PlacementDecision d_hot;
  d_hot.callstack = hot;
  d_hot.tier = "dram";
  d_hot.footprint = 1 << 20;
  advisor::PlacementDecision d_cold;
  d_cold.callstack = cold;
  d_cold.tier = "pmem";
  d_cold.footprint = 16 << 20;
  placement.decisions.push_back(d_hot);
  placement.decisions.push_back(d_cold);

  const auto report_text =
      advisor::report_to_string(placement, advisor::ReportFormat::kBom, *modules);
  if (!report_text) {
    std::fprintf(stderr, "%s\n", report_text.error().c_str());
    return 1;
  }
  std::printf("\nreport (real return addresses, ASLR-stable offsets):\n%s\n",
              report_text->c_str());

  // --- Phase 2: "production" — parse the report and allocate again.
  const auto parsed = flexmalloc::parse_report(*report_text, *modules);
  if (!parsed) {
    std::fprintf(stderr, "%s\n", parsed.error().c_str());
    return 1;
  }
  auto fm = flexmalloc::FlexMalloc::create({{"dram", 64ull << 20}, {"pmem", 1ull << 30}},
                                           *parsed, nullptr);
  if (!fm) {
    std::fprintf(stderr, "%s\n", fm.error().c_str());
    return 1;
  }

  const auto a_hot = fm->malloc(hot_allocation_site(*modules), 4096);
  const auto a_cold = fm->malloc(cold_allocation_site(*modules), 4096);
  if (!a_hot || !a_cold) {
    std::fprintf(stderr, "allocation failed\n");
    return 1;
  }
  std::printf("hot  site -> tier %s (%s)\n", fm->tier_name(a_hot->tier_index).c_str(),
              a_hot->matched ? "matched" : "fallback");
  std::printf("cold site -> tier %s (%s)\n", fm->tier_name(a_cold->tier_index).c_str(),
              a_cold->matched ? "matched" : "fallback");

  const bool ok = a_hot->matched && a_cold->matched &&
                  fm->tier_name(a_hot->tier_index) == "dram" &&
                  fm->tier_name(a_cold->tier_index) == "pmem";
  std::printf("%s\n", ok ? "real-process BOM matching works" : "MISMATCH");
  return ok ? 0 : 1;
}
