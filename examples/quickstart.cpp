// Quickstart: the whole ecoHMEM workflow on a hand-built toy workload.
//
//   1. describe an "application": a binary, allocation sites, objects,
//      kernels (in a real deployment this is your unmodified binary;
//      here it is a workload model driving the hardware simulator),
//   2. profile it (Extrae role) and analyze the trace (Paramedir role),
//   3. let the HMem Advisor compute a placement,
//   4. run "production" through FlexMalloc and compare against the
//      memory-mode baseline.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "ecohmem/apps/apps.hpp"
#include "ecohmem/core/ecohmem.hpp"

using namespace ecohmem;

int main() {
  // --- The "application": one hot gather buffer, one cold stream.
  runtime::WorkloadBuilder builder("quickstart");
  builder.ranks(4).threads(2);

  const auto exe = builder.add_module("quickstart.x", 2ull << 20, 16ull << 20);
  const auto hot_site = builder.add_site(exe, "HashTable::buckets", "src/table.cc", 42);
  const auto cold_site = builder.add_site(exe, "Log::ring_buffer", "src/log.cc", 77);

  const auto hot = builder.add_object(hot_site, 2ull << 30, runtime::AccessPattern::kRandom,
                                      /*llc_friendliness=*/0.2, /*dram_locality=*/0.5);
  const auto cold = builder.add_object(cold_site, 24ull << 30,
                                       runtime::AccessPattern::kSequential, 0.0, 0.5);

  const auto kernel = builder.add_kernel(
      "lookup_loop", /*instructions=*/2e9, /*compute_cycles=*/4e8,
      {runtime::KernelAccess{hot, 3e7, 1e6, 2.0 * (1ull << 30)},
       runtime::KernelAccess{cold, 5e7, 2e7, 8.0 * (1ull << 30)}});

  builder.alloc(hot).alloc(cold);
  for (int i = 0; i < 20; ++i) builder.run_kernel(kernel);
  builder.free(hot).free(cold);
  const runtime::Workload workload = builder.build();

  // --- The machine: the paper's DDR4 (16 GB) + Optane PMem node.
  const auto system = memsim::paper_system(/*pmem_dimms=*/6);
  if (!system) {
    std::fprintf(stderr, "system setup failed: %s\n", system.error().c_str());
    return 1;
  }

  // --- The workflow: profile -> analyze -> advise -> production run.
  core::WorkflowOptions options;
  options.dram_limit = 4ull << 30;  // give the Advisor 4 GB of DRAM
  options.store_coef = 0.125;       // Loads+stores heuristic (§V)

  const auto result = core::run_workflow(workload, *system, options);
  if (!result) {
    std::fprintf(stderr, "workflow failed: %s\n", result.error().c_str());
    return 1;
  }

  std::printf("== Advisor report (what FlexMalloc reads at startup) ==\n%s\n",
              result->report_text.c_str());

  std::printf("== profile summary ==\n");
  for (const auto& site : result->analysis.sites) {
    std::printf("  site with %llu alloc(s), %.0f load misses, %.0f store events -> %s\n",
                static_cast<unsigned long long>(site.alloc_count), site.load_misses,
                site.store_misses, result->placement.tier_of(site.stack).c_str());
  }

  const double base_s = static_cast<double>(result->baseline_metrics.total_ns) * 1e-9;
  const double prod_s = static_cast<double>(result->production_metrics.total_ns) * 1e-9;
  std::printf("\nmemory-mode baseline: %.2f s\n", base_s);
  std::printf("ecoHMEM placement:    %.2f s  (speedup %.2fx)\n", prod_s, result->speedup());

  // The hot gather buffer should have landed in DRAM.
  const bool hot_in_dram = result->placement.tier_of(result->analysis.sites[0].stack) == "dram";
  std::printf("hot buffer in DRAM: %s\n", hot_in_dram ? "yes" : "no");
  return hot_in_dram && result->speedup() > 1.0 ? 0 : 1;
}
