// Trace round trip: profile an application model, persist the trace in
// the on-disk format, reload it in a "different tool" and run the
// Paramedir-style analysis — the offline half of the ecoHMEM workflow.
//
// Usage:  ./build/examples/trace_inspector [app] [trace-path]
//         app defaults to "lulesh", path to /tmp/ecohmem_example.trc

#include <cstdio>
#include <string>

#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/apps/apps.hpp"
#include "ecohmem/common/strings.hpp"
#include "ecohmem/core/ecohmem.hpp"
#include "ecohmem/profiler/profiler.hpp"
#include "ecohmem/trace/trace_file.hpp"

using namespace ecohmem;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "lulesh";
  const std::string path = argc > 2 ? argv[2] : "/tmp/ecohmem_example.trc";

  apps::AppOptions app_opt;
  app_opt.iterations = 6;
  const runtime::Workload w = apps::make_app(app, app_opt);
  const auto system = memsim::paper_system(6);
  if (!system) {
    std::fprintf(stderr, "%s\n", system.error().c_str());
    return 1;
  }

  // --- Profiling run (memory mode, 100 Hz PEBS-equivalent sampling).
  profiler::Profiler prof;
  runtime::EngineOptions eopt;
  eopt.observer = &prof;
  {
    memsim::DramCacheModel cache(system->tier(0).capacity());
    runtime::MemoryModeExec mode(&*system, 0, system->fallback_index(), cache);
    runtime::ExecutionEngine engine(&*system, eopt);
    const auto metrics = engine.run(w, mode);
    if (!metrics) {
      std::fprintf(stderr, "profiling run failed: %s\n", metrics.error().c_str());
      return 1;
    }
    std::printf("profiled %s: %.1f s simulated, %llu allocations\n", app.c_str(),
                static_cast<double>(metrics->total_ns) * 1e-9,
                static_cast<unsigned long long>(metrics->allocations));
  }

  // --- Persist and reload.
  const trace::Trace t = prof.take_trace();
  if (const auto s = trace::save_trace(path, t, *w.modules); !s) {
    std::fprintf(stderr, "save: %s\n", s.error().c_str());
    return 1;
  }
  const auto bundle = trace::load_trace(path);
  if (!bundle) {
    std::fprintf(stderr, "load: %s\n", bundle.error().c_str());
    return 1;
  }
  std::printf("trace: %zu events, %zu call stacks, %zu modules -> %s\n",
              bundle->trace.events.size(), bundle->trace.stacks.size(),
              bundle->modules.size(), path.c_str());

  // --- Paramedir role: aggregate into per-site records.
  const auto analysis = analyzer::analyze(bundle->trace);
  if (!analysis) {
    std::fprintf(stderr, "analysis: %s\n", analysis.error().c_str());
    return 1;
  }

  std::printf("\ntop allocation sites by LLC load misses:\n");
  std::printf("%-44s %10s %12s %12s\n", "call stack (BOM)", "allocs", "load miss", "size");
  std::vector<const analyzer::SiteRecord*> sites;
  for (const auto& s : analysis->sites) sites.push_back(&s);
  std::sort(sites.begin(), sites.end(), [](const auto* a, const auto* b) {
    return a->load_misses > b->load_misses;
  });
  for (std::size_t i = 0; i < sites.size() && i < 10; ++i) {
    const auto& s = *sites[i];
    std::printf("%-44s %10llu %12.2e %12s\n",
                bom::format_bom(s.callstack, bundle->modules).substr(0, 43).c_str(),
                static_cast<unsigned long long>(s.alloc_count), s.load_misses,
                strings::format_bytes(s.max_size).c_str());
  }
  std::printf("\nobserved peak system bandwidth: %.2f GB/s over %.1f s\n",
              analysis->observed_peak_bw_gbs,
              static_cast<double>(analysis->trace_end) * 1e-9);
  return 0;
}
