// Generality demo (§IX): "We expect the presented methodology and our
// implementation to be easily applicable to upcoming systems based on
// HBM and DRAM, as well as those leveraging CXL memory pools."
//
// This example runs the same MiniFE model on three different machines —
// the paper's DRAM+PMem node, an HBM+DRAM node, and a three-tier
// HBM+DRAM+CXL pool — using only configuration changes: new TierSpecs
// and an Advisor config parsed from the standard config-file format.
//
// Build & run:  ./build/examples/custom_tiers

#include <cstdio>

#include "ecohmem/apps/apps.hpp"
#include "ecohmem/core/ecohmem.hpp"

using namespace ecohmem;

namespace {

memsim::TierSpec cxl_pool_spec() {
  memsim::TierSpec t;
  t.name = "cxl";
  t.capacity = 1ull << 40;  // 1 TB pooled
  t.idle_read_ns = 350.0;   // cross-link hop
  t.loaded_read_ns = 700.0;
  t.idle_write_ns = 380.0;
  t.loaded_write_ns = 800.0;
  t.peak_read_gbs = 28.0;
  t.peak_write_gbs = 24.0;
  t.performance_rank = 2;
  t.is_fallback = true;
  return t;
}

void run_machine(const char* label, const memsim::MemorySystem& system, Bytes fast_limit) {
  const runtime::Workload w = apps::make_minife();

  core::WorkflowOptions opt;
  opt.dram_limit = fast_limit;
  const auto result = core::run_workflow(w, system, opt);
  if (!result) {
    std::printf("%-28s FAILED: %s\n", label, result.error().c_str());
    return;
  }
  std::printf("%-28s speedup over memory mode: %.2fx  (fast-tier budget %llu GiB)\n", label,
              result->speedup(),
              static_cast<unsigned long long>(fast_limit >> 30));
}

}  // namespace

int main() {
  // Machine 1: the paper's evaluation node.
  const auto pmem_node = memsim::paper_system(6);

  // Machine 2: HBM (16 GB) in front of large DRAM, KNL-style.
  auto big_dram = memsim::ddr4_dram_spec(/*capacity=*/384ull << 30);
  big_dram.performance_rank = 1;
  big_dram.is_fallback = true;
  const auto hbm_node = memsim::MemorySystem::create({memsim::hbm2_spec(), big_dram});

  // Machine 3: three tiers — HBM, DRAM, CXL pool as fallback.
  auto mid_dram = memsim::ddr4_dram_spec(/*capacity=*/64ull << 30);
  mid_dram.performance_rank = 1;
  const auto cxl_node =
      memsim::MemorySystem::create({memsim::hbm2_spec(), mid_dram, cxl_pool_spec()});

  if (!pmem_node || !hbm_node || !cxl_node) {
    std::fprintf(stderr, "system setup failed\n");
    return 1;
  }

  std::printf("MiniFE on three machines, identical methodology:\n\n");
  run_machine("DRAM + Optane PMem (paper)", *pmem_node, 12ull << 30);
  run_machine("HBM + DRAM (KNL-style)", *hbm_node, 14ull << 30);
  run_machine("HBM + DRAM + CXL pool", *cxl_node, 14ull << 30);

  // The Advisor config file for the three-tier machine, as a user would
  // write it (see common/config.hpp for the grammar).
  const char* cfg_text = R"(
[advisor]
footprint = peak_live

[memory]
name = hbm
limit = 14GB
load_coef = 1.0
store_coef = 0.125
order = 0

[memory]
name = dram
limit = 60GB
load_coef = 0.6
store_coef = 0.08
order = 1

[memory]
name = cxl
limit = 1TB
order = 2
fallback = true
)";
  const auto parsed = Config::parse(cfg_text);
  const auto advisor_cfg = advisor::AdvisorConfig::from_config(*parsed);
  if (!advisor_cfg) {
    std::fprintf(stderr, "advisor config: %s\n", advisor_cfg.error().c_str());
    return 1;
  }
  std::printf("\nparsed a %zu-tier advisor config from file text; fallback tier = %s\n",
              advisor_cfg->tiers.size(), advisor_cfg->fallback_tier().name.c_str());
  return 0;
}
