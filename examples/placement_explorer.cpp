// Placement explorer: run the Advisor (base and bandwidth-aware) on any
// application model and print, per allocation site, what the profile saw
// and where each algorithm puts the object — Table IV's categories
// included. Useful for understanding *why* a placement came out the way
// it did.
//
// Usage:  ./build/examples/placement_explorer [app] [dram-limit-gib]
//         e.g. ./build/examples/placement_explorer openfoam 11

#include <cstdio>
#include <string>

#include "ecohmem/apps/apps.hpp"
#include "ecohmem/common/strings.hpp"
#include "ecohmem/core/ecohmem.hpp"

using namespace ecohmem;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "lulesh";
  const Bytes dram_limit =
      (argc > 2 ? strings::parse_u64(argv[2]).value_or(12) : 12) * (1ull << 30);

  const runtime::Workload w = apps::make_app(app);
  const auto system = memsim::paper_system(6);

  core::WorkflowOptions base_opt;
  base_opt.dram_limit = dram_limit;
  core::WorkflowOptions bw_opt = base_opt;
  bw_opt.bandwidth_aware = true;

  const auto base = core::run_workflow(w, *system, base_opt);
  const auto bw = core::run_workflow(w, *system, bw_opt);
  if (!base || !bw) {
    std::fprintf(stderr, "workflow failed: %s\n", (base ? bw : base).error().c_str());
    return 1;
  }

  std::printf("%s with a %llu GiB DRAM budget\n", app.c_str(),
              static_cast<unsigned long long>(dram_limit >> 30));
  std::printf("  base (density) speedup:      %.2fx over memory mode\n", base->speedup());
  std::printf("  bandwidth-aware speedup:     %.2fx over memory mode\n", bw->speedup());
  if (bw->bandwidth_aware) {
    std::printf("  Algorithm 1: %zu Thrashing<->Fitting swaps, %zu Streaming-D moves\n",
                bw->bandwidth_aware->swaps, bw->bandwidth_aware->streaming_moved);
  }

  const auto moves = advisor::diff_placements(base->placement, bw->placement);
  std::printf("  objects moved by the bandwidth-aware pass: %zu\n", moves.size());

  std::printf("\n%-34s %8s %10s %9s %9s %7s  %6s -> %-6s %s\n", "site", "allocs", "size",
              "loadMiss", "allocBW", "execBW", "base", "bw", "category");
  for (const auto& s : bw->analysis.sites) {
    std::string label = "?";
    for (const auto& site : w.sites) {
      if (site.stack == s.callstack) label = site.label;
    }
    std::string category = "-";
    for (const auto& c : bw->bandwidth_aware->categories) {
      if (c.stack == s.stack) category = advisor::to_string(c.category);
    }
    std::printf("%-34s %8llu %10s %9.2e %8.2f %7.2f  %6s -> %-6s %s\n", label.c_str(),
                static_cast<unsigned long long>(s.alloc_count),
                strings::format_bytes(std::max(s.peak_live_bytes, s.max_size)).c_str(),
                s.load_misses, s.alloc_time_system_bw_gbs, s.exec_time_system_bw_gbs,
                base->placement.tier_of(s.stack).c_str(),
                bw->placement.tier_of(s.stack).c_str(), category.c_str());
  }
  return 0;
}
