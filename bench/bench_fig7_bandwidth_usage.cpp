// Fig. 7: "PMem bandwidth usage with the main HMem Advisor algorithm
// (baseline) and the bandwidth-aware algorithm" for LULESH and OpenFOAM.
//
// Expected shape: the bandwidth-aware curve tracks the main curve but
// shaves the high-bandwidth peaks (the Thrashing temporaries moved to
// DRAM); for LULESH the relief follows the phase's demand curve, for
// OpenFOAM it clips the assembly-phase spikes.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace ecohmem;

namespace {

void compare_series(const std::string& app, Bytes dram_limit) {
  const auto sys = *memsim::paper_system(6);
  const runtime::Workload w = apps::make_app(app);

  core::WorkflowOptions main_opt;
  main_opt.dram_limit = dram_limit;
  core::WorkflowOptions bw_opt = main_opt;
  bw_opt.bandwidth_aware = true;

  const auto main_run = core::run_workflow(w, sys, main_opt);
  const auto bw_run = core::run_workflow(w, sys, bw_opt);
  if (!main_run || !bw_run) {
    std::printf("%s: run failed\n", app.c_str());
    return;
  }

  const std::size_t pmem = sys.fallback_index();
  const auto& a = main_run->production_metrics.tier_bw[pmem];
  const auto& b = bw_run->production_metrics.tier_bw[pmem];

  auto bucket_avg = [](const std::vector<memsim::BandwidthPoint>& series, std::size_t buckets,
                       std::size_t i) {
    if (series.empty()) return 0.0;
    const std::size_t lo = i * series.size() / buckets;
    const std::size_t hi = std::max(lo + 1, (i + 1) * series.size() / buckets);
    double sum = 0.0;
    for (std::size_t k = lo; k < hi && k < series.size(); ++k) sum += series[k].gbs;
    return sum / static_cast<double>(hi - lo);
  };

  std::printf("\n%s (speedup: main %.2f, bandwidth-aware %.2f)\n", app.c_str(),
              main_run->speedup(), bw_run->speedup());
  std::printf("%6s %12s %12s\n", "bucket", "main(GB/s)", "bw-aware(GB/s)");
  constexpr std::size_t kBuckets = 32;
  double main_peak = 0.0;
  double bw_peak = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const double ma = bucket_avg(a, kBuckets, i);
    const double bb = bucket_avg(b, kBuckets, i);
    main_peak = std::max(main_peak, ma);
    bw_peak = std::max(bw_peak, bb);
    std::printf("%6zu %12.2f %12.2f\n", i, ma, bb);
  }
  std::printf("peak PMem bandwidth: main %.2f GB/s -> bandwidth-aware %.2f GB/s\n", main_peak,
              bw_peak);
}

}  // namespace

int main() {
  bench::print_header("bench_fig7_bandwidth_usage",
                      "Fig. 7 (PMem bandwidth: main vs bandwidth-aware)");
  compare_series("lulesh", 12 * bench::kGiB);
  compare_series("openfoam", 11 * bench::kGiB);
  return 0;
}
