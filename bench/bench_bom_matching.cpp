// §VI + Table I + §VIII-D: the Binary Object Matching ablation.
//
// Two parts:
//  1. google-benchmark microbenchmarks of call-stack matching: BOM
//     (integer frame comparison) vs human-readable (symbolization +
//     string comparison), across call-stack depths — the §VI overhead
//     claim, measured on this machine.
//  2. The §VIII-D end-to-end experiment: OpenFOAM with the
//     bandwidth-aware algorithm, BOM report vs human-readable report.
//     Expected shape: the HR run loses most of the bandwidth-aware win
//     (paper: 1.061 -> 0.66), dominated by the per-rank debug info
//     shrinking the DRAM budget.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "ecohmem/flexmalloc/matcher.hpp"

using namespace ecohmem;

namespace {

struct MatchFixture {
  bom::ModuleTable modules;
  bom::SymbolTable symbols{&modules};
  flexmalloc::ParsedReport bom_report;
  flexmalloc::ParsedReport hr_report;
  std::vector<bom::CallStack> probes;

  explicit MatchFixture(int depth, int sites = 256) {
    modules.add_module("app.x", 64 << 20, 512 << 20);
    bom_report.is_bom = true;
    bom_report.fallback_tier = "pmem";
    hr_report.is_bom = false;
    hr_report.fallback_tier = "pmem";
    for (int s = 0; s < sites; ++s) {
      bom::CallStack cs;
      bom::HumanStack hs;
      for (int d = 0; d < depth; ++d) {
        const std::uint64_t offset = 0x1000 + static_cast<std::uint64_t>(s) * 0x1000 +
                                     static_cast<std::uint64_t>(d) * 0x40;
        cs.frames.push_back(bom::Frame{0, offset});
        symbols.add_entry(0, {offset, "src/some/deep/path/translation_unit_" +
                                          std::to_string(s) + ".cpp",
                              static_cast<std::uint32_t>(10 + d)});
        hs.push_back(bom::SourceLocation{
            "src/some/deep/path/translation_unit_" + std::to_string(s) + ".cpp",
            static_cast<std::uint32_t>(10 + d)});
      }
      bom_report.entries.push_back(
          flexmalloc::ReportEntry{cs, s % 2 == 0 ? "dram" : "pmem", 0});
      hr_report.entries.push_back(
          flexmalloc::ReportEntry{hs, s % 2 == 0 ? "dram" : "pmem", 0});
      probes.push_back(cs);
    }
  }
};

void BM_BomMatching(benchmark::State& state) {
  MatchFixture fx(static_cast<int>(state.range(0)));
  auto matcher = flexmalloc::CallStackMatcher::create(fx.bom_report, nullptr);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher->match(fx.probes[i++ % fx.probes.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BomMatching)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_HumanReadableMatching(benchmark::State& state) {
  MatchFixture fx(static_cast<int>(state.range(0)));
  auto matcher = flexmalloc::CallStackMatcher::create(fx.hr_report, &fx.symbols);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher->match(fx.probes[i++ % fx.probes.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HumanReadableMatching)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ReportParsingBom(benchmark::State& state) {
  MatchFixture fx(8);
  advisor::Placement placement;
  placement.fallback_tier = "pmem";
  for (const auto& e : fx.bom_report.entries) {
    advisor::PlacementDecision d;
    d.callstack = std::get<bom::CallStack>(e.stack);
    d.tier = e.tier;
    placement.decisions.push_back(d);
  }
  const auto text =
      advisor::report_to_string(placement, advisor::ReportFormat::kBom, fx.modules);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flexmalloc::parse_report(*text, fx.modules));
  }
}
BENCHMARK(BM_ReportParsingBom);

void print_table1() {
  bench::print_header("bench_bom_matching (part 1.5)",
                      "Table I (the two supported call-stack formats, same site)");
  const runtime::Workload w = apps::make_lulesh();
  const auto& site = w.sites.front();
  const auto hr = w.symbols->translate(site.stack);
  std::printf("site: %s\n", site.label.c_str());
  std::printf("  BOM format:            %s @ dram\n",
              bom::format_bom(site.stack, *w.modules).c_str());
  if (hr) {
    std::printf("  human-readable format: %s @ dram\n", bom::format_human(*hr).c_str());
  }
  std::printf("(BOM needs no debug info and survives ASLR; matching is integer "
              "comparison instead of symbolization + string comparison)\n");
}

void print_viii_d() {
  bench::print_header("bench_bom_matching (part 2)",
                      "§VIII-D (OpenFOAM: BOM vs human-readable call stacks)");
  const auto sys = *memsim::paper_system(6);
  const runtime::Workload w = apps::make_openfoam();

  const auto bom_run = bench::run_config(w, sys, "bom", 11 * bench::kGiB, 0.0,
                                         /*bw_aware=*/true, advisor::ReportFormat::kBom);
  const auto hr_run =
      bench::run_config(w, sys, "hr", 11 * bench::kGiB, 0.0,
                        /*bw_aware=*/true, advisor::ReportFormat::kHumanReadable);
  std::printf("%-34s %8s   %s\n", "configuration", "speedup", "paper");
  std::printf("%-34s %8.2f   1.061\n", "bandwidth-aware, BOM stacks", bom_run.speedup);
  std::printf("%-34s %8.2f   0.66\n", "bandwidth-aware, human-readable", hr_run.speedup);
  std::printf("(the HR loss is dominated by per-rank debug info shrinking the DRAM budget; "
              "symbolization overhead adds the rest)\n");
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  print_table1();
  print_viii_d();
  return 0;
}
