// Ablations of the design decisions called out in DESIGN.md §5:
//   D2 — store coefficient sweep (CloverLeaf3D),
//   D3 — bandwidth-aware post-pass on/off across all apps,
//   D5 — PEBS sampling-rate sweep (placement robustness),
//   plus the Advisor footprint-accounting mode (max_size vs peak_live,
//   the KNL-era heuristic vs this work's default).

#include <cstdio>

#include "bench_common.hpp"
#include "ecohmem/advisor/knapsack.hpp"

using namespace ecohmem;

namespace {

void ablate_store_coef() {
  std::printf("\n--- D2: store coefficient sweep (CloverLeaf3D, 12 GB) ---\n");
  const auto sys = *memsim::paper_system(6);
  const runtime::Workload w = apps::make_cloverleaf3d();
  std::printf("%10s %8s\n", "C_store", "speedup");
  for (const double c : {0.0, 0.03125, 0.0625, 0.125, 0.25, 0.5}) {
    const auto run = bench::run_config(w, sys, "", 12 * bench::kGiB, c, false);
    std::printf("%10.4f %8.2f\n", c, run.speedup);
  }
}

void ablate_bw_aware() {
  std::printf("\n--- D3: bandwidth-aware post-pass on/off (all apps) ---\n");
  const auto sys = *memsim::paper_system(6);
  std::printf("%-14s %8s %8s %8s\n", "app", "base", "bw-aware", "delta%");
  for (const auto& name : apps::app_names()) {
    const runtime::Workload w = apps::make_app(name);
    const Bytes dram = name == "openfoam" ? 11 * bench::kGiB : 12 * bench::kGiB;
    const auto base = bench::run_config(w, sys, "", dram, 0.0, false);
    const auto bw = bench::run_config(w, sys, "", dram, 0.0, true);
    std::printf("%-14s %8.2f %8.2f %+7.1f\n", name.c_str(), base.speedup, bw.speedup,
                (bw.speedup / base.speedup - 1.0) * 100.0);
  }
}

void ablate_sampling_rate() {
  std::printf("\n--- D5: PEBS sampling rate sweep (MiniFE, 12 GB, Loads) ---\n");
  const auto sys = *memsim::paper_system(6);
  const runtime::Workload w = apps::make_minife();
  std::printf("%10s %8s\n", "rate(Hz)", "speedup");
  for (const double hz : {10.0, 30.0, 100.0, 300.0, 1000.0}) {
    core::WorkflowOptions opt;
    opt.dram_limit = 12 * bench::kGiB;
    opt.sample_rate_hz = hz;
    const auto result = core::run_workflow(w, sys, opt);
    std::printf("%10.0f %8.2f\n", hz, result ? result->speedup() : 0.0);
  }
  std::printf("(expected: stable placement quality once the rate gives each hot site "
              "enough samples — the paper profiles at 100 Hz)\n");
}

void ablate_footprint_mode() {
  std::printf("\n--- footprint accounting: max_size (KNL-era) vs peak_live (default) ---\n");
  const auto sys = *memsim::paper_system(6);
  std::printf("%-14s %10s %10s %12s\n", "app", "max_size", "peak_live", "oom(max_size)");
  for (const std::string name : {"lulesh", "openfoam", "cloverleaf3d"}) {
    const runtime::Workload w = apps::make_app(name);
    const Bytes dram = name == "openfoam" ? 11 * bench::kGiB : 12 * bench::kGiB;

    double speedups[2] = {0.0, 0.0};
    std::uint64_t ooms = 0;
    // run_workflow always uses peak_live; emulate max_size by running the
    // advisor manually. Profile once via the workflow (its analysis is
    // reused), then place with each mode.
    core::WorkflowOptions opt;
    opt.dram_limit = dram;
    const auto base = core::run_workflow(w, sys, opt);
    if (!base) continue;
    speedups[1] = base->speedup();

    advisor::AdvisorConfig cfg = advisor::AdvisorConfig::dram_pmem(
        dram, 0.0, sys.tier(sys.fallback_index()).capacity());
    cfg.footprint_mode = advisor::FootprintMode::kMaxSize;
    const auto placement = advisor::place_by_density(base->analysis.sites, cfg);
    if (placement) {
      const auto run = core::run_with_placement(w, sys, *placement, dram);
      if (run) {
        speedups[0] = run->speedup_over(base->baseline_metrics);
        ooms = run->oom_redirects;
      }
    }
    std::printf("%-14s %10.2f %10.2f %12llu\n", name.c_str(), speedups[0], speedups[1],
                static_cast<unsigned long long>(ooms));
  }
  std::printf("(max_size under-accounts multi-instance sites; OOM redirects show the "
              "fallback machinery absorbing the overflow — the paper's LAMMPS/OpenFOAM "
              "DRAM-limit friction)\n");
}

void ablate_exact_knapsack() {
  std::printf("\n--- greedy density relaxation vs exact 0/1 DP knapsack ---\n");
  const auto sys = *memsim::paper_system(6);
  std::printf("%-14s %10s %10s\n", "app", "greedy", "exact-DP");
  for (const std::string name : {"minife", "hpcg", "cloverleaf3d", "openfoam"}) {
    const runtime::Workload w = apps::make_app(name);
    const Bytes dram = name == "openfoam" ? 11 * bench::kGiB : 12 * bench::kGiB;

    core::WorkflowOptions opt;
    opt.dram_limit = dram;
    const auto base = core::run_workflow(w, sys, opt);
    if (!base) continue;

    advisor::AdvisorConfig cfg = advisor::AdvisorConfig::dram_pmem(
        dram, 0.0, sys.tier(sys.fallback_index()).capacity());
    const auto dp_placement = advisor::place_exact_dp(base->analysis.sites, cfg);
    double dp_speedup = 0.0;
    if (dp_placement) {
      const auto run = core::run_with_placement(w, sys, *dp_placement, dram);
      if (run) dp_speedup = run->speedup_over(base->baseline_metrics);
    }
    std::printf("%-14s %10.2f %10.2f\n", name.c_str(), base->speedup(), dp_speedup);
  }
  std::printf("(the paper's greedy relaxation is near-optimal on these site\n"
              " populations; DP mainly repacks ties)\n");
}

}  // namespace

int main() {
  bench::print_header("bench_ablations", "DESIGN.md §5 ablation studies (D2/D3/D5 + footprint)");
  ablate_store_coef();
  ablate_bw_aware();
  ablate_sampling_rate();
  ablate_footprint_mode();
  ablate_exact_knapsack();
  return 0;
}
