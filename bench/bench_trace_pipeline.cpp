// Trace pipeline benchmark: write / read / aggregate throughput of the
// v2 compact stream format, the v3 indexed block format, and v3 with
// compressed (bit-packed columnar) blocks, serial vs parallel, on a
// >= 10M-event synthetic trace plus every Fig. 6 mini-app profile.
// Records BENCH_trace_pipeline.json.
//
// Determinism contract: for each app the parallel aggregation must be
// bit-identical to serial ("identical": true), and the compressed
// trace must decode to events bit-identical to the uncompressed one;
// any violation exits nonzero. Wall-clock parallel speedup is
// hardware-dependent: on a single-core host the 4-thread path cannot
// beat serial wall time and the JSON records that honestly
// (hardware_concurrency is part of the record, as in
// BENCH_parallel_replay.json); the >= 2x bound is then asserted on
// per-block decode throughput — the v3 mmap block decode against the
// v2 bounded-buffer istream decode — instead of on aggregate wall
// time. Serial and parallel aggregation repeats are interleaved (after
// an untimed warm-up pair) so allocator or cache drift cannot bias
// either side; the zero-regression bound requires parallel >= 0.98x
// serial even when thread clamping makes both run the same path.
//
// Usage: bench_trace_pipeline [--events N] [--threads N] [--repeats R]
//                             [--out FILE] [--smoke]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/common/faultinject.hpp"
#include "ecohmem/profiler/profiler.hpp"
#include "ecohmem/trace/codec.hpp"
#include "ecohmem/trace/trace_file.hpp"
#include "ecohmem/trace/trace_reader.hpp"

using namespace ecohmem;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

double mbs(std::uint64_t bytes, double ms) {
  return ms > 0.0 ? static_cast<double>(bytes) / 1e6 / (ms / 1e3) : 0.0;
}

/// Deterministic synthetic event stream (allocs/frees/samples/uncore),
/// delivered through a callback so the 10M-event write never materializes
/// an event vector.
template <typename Sink>
void synth_events(std::size_t n, std::uint64_t seed, trace::StackId s0, trace::StackId s1,
                  std::uint32_t fn, Sink&& sink) {
  std::uint64_t x = seed * 2654435761ull + 1;
  const auto rnd = [&x] {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x >> 33;
  };
  Ns time = 0;
  std::uint64_t next_id = 1;
  std::uint64_t next_addr = 0x100000;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> live;
  for (std::size_t i = 0; i < n; ++i) {
    time += rnd() % 50;
    switch (rnd() % 8) {
      case 0:
      case 1: {
        const Bytes size = 64 + rnd() % 8192;
        sink(trace::Event{trace::AllocEvent{time, next_id, next_addr, size,
                                            (i % 2) != 0 ? s0 : s1, trace::AllocKind::kMalloc}});
        live.emplace_back(next_id, next_addr);
        next_addr += size + 64;
        ++next_id;
        break;
      }
      case 2:
        if (live.empty()) {
          sink(trace::Event{trace::MarkerEvent{time, fn, true}});
        } else {
          // Swap-and-pop keeps the generator O(1) per event (the live set
          // still grows to ~12% of n, which exercises the span index).
          const std::size_t k = rnd() % live.size();
          sink(trace::Event{trace::FreeEvent{time, live[k].first}});
          live[k] = live.back();
          live.pop_back();
        }
        break;
      case 3:
        sink(trace::Event{trace::UncoreBwEvent{time, 1000 + rnd() % 1000,
                                               static_cast<double>(rnd() % 100) * 0.25,
                                               static_cast<double>(rnd() % 50) * 0.25}});
        break;
      default:
        sink(trace::Event{
            trace::SampleEvent{time,
                               live.empty() ? 0x10 : live[rnd() % live.size()].second + rnd() % 64,
                               1.0 + static_cast<double>(rnd() % 8) * 0.5,
                               static_cast<double>(rnd() % 400), rnd() % 4 == 0, fn}});
    }
  }
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, 8);
  std::memcpy(&ub, &b, 8);
  return ua == ub;
}

/// Bitwise equality of two analyses — the determinism contract the
/// parallel aggregator must honor (docs/threading.md).
bool results_identical(const analyzer::AnalysisResult& a, const analyzer::AnalysisResult& b) {
  if (a.sites.size() != b.sites.size() || a.functions.size() != b.functions.size() ||
      a.system_bw.size() != b.system_bw.size() || a.trace_end != b.trace_end ||
      !bits_equal(a.observed_peak_bw_gbs, b.observed_peak_bw_gbs) ||
      !bits_equal(a.unattributed_samples, b.unattributed_samples)) {
    return false;
  }
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    const analyzer::SiteRecord& x = a.sites[i];
    const analyzer::SiteRecord& y = b.sites[i];
    if (x.stack != y.stack || x.callstack != y.callstack || x.max_size != y.max_size ||
        x.peak_live_bytes != y.peak_live_bytes || x.alloc_count != y.alloc_count ||
        x.first_alloc != y.first_alloc || x.last_free != y.last_free ||
        x.has_writes != y.has_writes || x.windows.size() != y.windows.size() ||
        !bits_equal(x.load_misses, y.load_misses) ||
        !bits_equal(x.store_misses, y.store_misses) ||
        !bits_equal(x.avg_load_latency_ns, y.avg_load_latency_ns) ||
        !bits_equal(x.total_lifetime_ns, y.total_lifetime_ns) ||
        !bits_equal(x.mean_lifetime_ns, y.mean_lifetime_ns) ||
        !bits_equal(x.exec_bw_gbs, y.exec_bw_gbs) ||
        !bits_equal(x.alloc_time_system_bw_gbs, y.alloc_time_system_bw_gbs) ||
        !bits_equal(x.exec_time_system_bw_gbs, y.exec_time_system_bw_gbs)) {
      return false;
    }
    for (std::size_t w = 0; w < x.windows.size(); ++w) {
      if (x.windows[w].start != y.windows[w].start || x.windows[w].end != y.windows[w].end) {
        return false;
      }
    }
  }
  for (std::size_t i = 0; i < a.functions.size(); ++i) {
    if (a.functions[i].name != b.functions[i].name ||
        !bits_equal(a.functions[i].load_samples, b.functions[i].load_samples) ||
        !bits_equal(a.functions[i].avg_load_latency_ns, b.functions[i].avg_load_latency_ns)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.system_bw.size(); ++i) {
    if (a.system_bw[i].time != b.system_bw[i].time ||
        !bits_equal(a.system_bw[i].gbs, b.system_bw[i].gbs)) {
      return false;
    }
  }
  return true;
}

template <typename Fn>
double best_of(int repeats, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = Clock::now();
    fn();
    const double ms = ms_since(start);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

struct SyntheticStats {
  std::uint64_t events = 0;
  std::uint64_t v2_bytes = 0;
  std::uint64_t v3_bytes = 0;
  std::uint64_t v3c_bytes = 0;
  double v2_write_ms = 0, v3_write_ms = 0, v3c_write_ms = 0;
  double v2_read_ms = 0, v3_read_serial_ms = 0, v3_read_parallel_ms = 0;
  double v3c_read_ms = 0;
  double salvage_read_ms = 0;
  std::uint64_t salvage_recovered = 0, salvage_declared = 0;
  double v2_stream_decode_ms = 0, v3_block_decode_ms = 0, v3c_block_decode_ms = 0;
  double aggregate_serial_ms = 0, aggregate_parallel_ms = 0;
  bool aggregate_identical = false;
  bool read_identical = false;
  bool compressed_identical = false;
};

struct AppRow {
  std::string app;
  std::uint64_t events = 0;
  double serial_ms = 0, parallel_ms = 0;
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_events = 10'000'000;
  int threads = 4;
  int repeats = 3;
  std::string out_path = "BENCH_trace_pipeline.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--smoke") {
      smoke = true;
    } else if (i + 1 < argc) {
      const char* value = argv[++i];
      if (flag == "--events") n_events = static_cast<std::size_t>(std::atoll(value));
      if (flag == "--threads") threads = std::atoi(value);
      if (flag == "--repeats") repeats = std::atoi(value);
      if (flag == "--out") out_path = value;
    }
  }
  if (smoke) {
    n_events = std::min<std::size_t>(n_events, 200'000);
    repeats = 1;
  }
  if (threads < 2 || repeats < 1 || n_events == 0) {
    std::fprintf(stderr, "error: --threads must be >= 2, --repeats and --events >= 1\n");
    return 1;
  }

  bench::print_header("Trace pipeline: v2 stream vs v3 indexed blocks, serial vs parallel",
                      "indexed trace format + sharded aggregation (docs/trace_format.md)");
  std::printf("host cores: %u, threads: %d, repeats: %d (best-of), synthetic events: %zu%s\n\n",
              std::thread::hardware_concurrency(), threads, repeats, n_events,
              smoke ? " [smoke]" : "");

  const std::string v2_path = "/tmp/bench_pipeline_v2.trc";
  const std::string v3_path = "/tmp/bench_pipeline_v3.trc";
  const std::string v3c_path = "/tmp/bench_pipeline_v3c.trc";

  // ---------------------------------------------------------- synthetic
  SyntheticStats syn;
  syn.events = n_events;

  trace::Trace header;
  header.sample_rate_hz = 1000.0;
  const trace::StackId s0 = header.stacks.intern(bom::CallStack{{{0, 0x10}}});
  const trace::StackId s1 = header.stacks.intern(bom::CallStack{{{0, 0x20}, {1, 0x8}}});
  const std::uint32_t fn = header.functions.intern("synth");
  bom::ModuleTable modules;
  modules.add_module("synth.x", 1 << 20, 0);
  modules.add_module("libsynth.so", 1 << 20, 0);

  // Both writers serialize the same pre-generated event vector, so the
  // timings compare codec+IO cost, not generator cost.
  trace::Trace full = header;
  full.events.reserve(n_events);
  synth_events(n_events, 5, s0, s1, fn,
               [&full](const trace::Event& e) { full.events.push_back(e); });

  syn.v3_write_ms = best_of(repeats, [&] {
    auto writer =
        trace::TraceBlockWriter::create(v3_path, header.stacks, header.functions, modules, 1000.0);
    if (!writer) {
      std::fprintf(stderr, "error: %s\n", writer.error().c_str());
      std::exit(1);
    }
    Status status;
    for (const trace::Event& e : full.events) {
      status = writer->add(e);
      if (!status.ok()) break;
    }
    if (status.ok()) status = writer->finish();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.error().c_str());
      std::exit(1);
    }
  });
  {
    trace::TraceWriteOptions opt;
    opt.compact = true;
    syn.v2_write_ms = best_of(repeats, [&] {
      if (const auto s = trace::save_trace(v2_path, full, modules, opt); !s) {
        std::fprintf(stderr, "error: %s\n", s.error().c_str());
        std::exit(1);
      }
    });
  }
  syn.v3c_write_ms = best_of(repeats, [&] {
    auto writer = trace::TraceBlockWriter::create(v3c_path, header.stacks, header.functions,
                                                  modules, 1000.0, 64 * 1024, /*compress=*/true);
    if (!writer) {
      std::fprintf(stderr, "error: %s\n", writer.error().c_str());
      std::exit(1);
    }
    Status status;
    for (const trace::Event& e : full.events) {
      status = writer->add(e);
      if (!status.ok()) break;
    }
    if (status.ok()) status = writer->finish();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.error().c_str());
      std::exit(1);
    }
  });
  full = trace::Trace{};  // measured loads below re-read from disk

  const auto file_size = [](const std::string& path) -> std::uint64_t {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return 0;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    return size > 0 ? static_cast<std::uint64_t>(size) : 0;
  };
  syn.v2_bytes = file_size(v2_path);
  syn.v3_bytes = file_size(v3_path);
  syn.v3c_bytes = file_size(v3c_path);

  // Read throughput: v2 bulk load, v3 mmap serial, v3 mmap parallel.
  trace::TraceBundle v2_bundle;
  syn.v2_read_ms = best_of(repeats, [&] {
    auto loaded = trace::load_trace(v2_path);
    if (!loaded) {
      std::fprintf(stderr, "error: %s\n", loaded.error().c_str());
      std::exit(1);
    }
    v2_bundle = std::move(*loaded);
  });

  const auto reader = trace::TraceReader::open(v3_path);
  if (!reader) {
    std::fprintf(stderr, "error: %s\n", reader.error().c_str());
    return 1;
  }
  trace::TraceBundle v3_bundle;
  syn.v3_read_serial_ms = best_of(repeats, [&] {
    auto bundle = reader->read_all(1);
    if (!bundle) std::exit((std::fprintf(stderr, "error: %s\n", bundle.error().c_str()), 1));
    v3_bundle = std::move(*bundle);
  });
  trace::TraceBundle v3_parallel_bundle;
  syn.v3_read_parallel_ms = best_of(repeats, [&] {
    auto bundle = reader->read_all(threads);
    if (!bundle) std::exit((std::fprintf(stderr, "error: %s\n", bundle.error().c_str()), 1));
    v3_parallel_bundle = std::move(*bundle);
  });
  syn.read_identical = v2_bundle.trace.events.size() == v3_bundle.trace.events.size() &&
                       v3_bundle.trace.events.size() == v3_parallel_bundle.trace.events.size();
  v2_bundle = {};           // only their event counts are compared; drop the
  v3_parallel_bundle = {};  // ~0.5 GB each before the compressed read below

  // Compressed v3: same events through bit-packed columnar blocks (what
  // `ecohmem-profile --compress` writes). Reads must flow through the
  // same reader, and the decoded events must be bit-identical to the
  // uncompressed read (verified below by re-encoding both streams).
  const auto c_reader = trace::TraceReader::open(v3c_path);
  if (!c_reader) {
    std::fprintf(stderr, "error: %s\n", c_reader.error().c_str());
    return 1;
  }
  {
    trace::TraceBundle v3c_bundle;
    syn.v3c_read_ms = best_of(repeats, [&] {
      auto bundle = c_reader->read_all(1);
      if (!bundle) std::exit((std::fprintf(stderr, "error: %s\n", bundle.error().c_str()), 1));
      v3c_bundle = std::move(*bundle);
    });
    syn.compressed_identical =
        v3c_bundle.trace.events.size() == v3_bundle.trace.events.size();
    if (syn.compressed_identical) {
      std::string ec, eu;
      Ns lc = 0, lu = 0;
      for (std::size_t i = 0; i < v3c_bundle.trace.events.size(); ++i) {
        ec.clear();
        eu.clear();
        trace::codec::encode_event_compact(ec, v3c_bundle.trace.events[i], lc);
        trace::codec::encode_event_compact(eu, v3_bundle.trace.events[i], lu);
        if (ec != eu) {
          syn.compressed_identical = false;
          break;
        }
      }
    }
  }

  // Salvage read throughput: a damaged copy of the v3 trace (one block
  // garbled mid-body) recovered fail-soft with the same parallel decode.
  const std::string salvage_path = "/tmp/bench_pipeline_v3_damaged.trc";
  {
    std::vector<unsigned char> buf(syn.v3_bytes);
    std::FILE* f = std::fopen(v3_path.c_str(), "rb");
    if (f == nullptr || std::fread(buf.data(), 1, buf.size(), f) != buf.size()) {
      std::fprintf(stderr, "error: cannot reread %s\n", v3_path.c_str());
      return 1;
    }
    std::fclose(f);
    const auto lm = faultinject::landmarks_v3(buf, reader->block(0).file_offset);
    faultinject::Fault fault;
    fault.kind = faultinject::FaultKind::kGarble;
    fault.offset = lm.block_offsets[lm.block_offsets.size() / 2] + 16;
    fault.length = 32;
    fault.seed = 17;
    const auto damaged = faultinject::apply(buf, fault);
    std::FILE* out_f = std::fopen(salvage_path.c_str(), "wb");
    if (out_f == nullptr ||
        std::fwrite(damaged.data(), 1, damaged.size(), out_f) != damaged.size()) {
      std::fprintf(stderr, "error: cannot write %s\n", salvage_path.c_str());
      return 1;
    }
    std::fclose(out_f);

    trace::TraceOpenOptions topt;
    topt.salvage = true;
    const auto salvage_reader = trace::TraceReader::open(salvage_path, topt);
    if (!salvage_reader) {
      std::fprintf(stderr, "error: %s\n", salvage_reader.error().c_str());
      return 1;
    }
    syn.salvage_recovered = salvage_reader->manifest().events_recovered;
    syn.salvage_declared = salvage_reader->manifest().events_declared;
    syn.salvage_read_ms = best_of(repeats, [&] {
      auto bundle = salvage_reader->read_all(threads);
      if (!bundle) std::exit((std::fprintf(stderr, "error: %s\n", bundle.error().c_str()), 1));
    });
    if (syn.salvage_recovered == 0 || syn.salvage_recovered >= syn.salvage_declared) {
      std::fprintf(stderr, "error: salvage bench expected a partial recovery (%llu/%llu)\n",
                   static_cast<unsigned long long>(syn.salvage_recovered),
                   static_cast<unsigned long long>(syn.salvage_declared));
      return 1;
    }
  }

  // Per-block decode throughput: the pure decode paths with IO amortized
  // away — v3's mmap ByteReader against v2's bounded-buffer istream
  // reader (the 1-core proxy for parallel decode capacity: blocks decode
  // independently, so N cores scale the numerator).
  {
    std::vector<trace::Event> scratch;
    std::size_t max_block = 0;
    for (std::size_t b = 0; b < reader->block_count(); ++b) {
      max_block = std::max(max_block, static_cast<std::size_t>(reader->block(b).event_count));
    }
    for (std::size_t b = 0; b < c_reader->block_count(); ++b) {
      max_block = std::max(max_block, static_cast<std::size_t>(c_reader->block(b).event_count));
    }
    scratch.resize(max_block);
    syn.v3_block_decode_ms = best_of(repeats, [&] {
      for (std::size_t b = 0; b < reader->block_count(); ++b) {
        if (const auto s = reader->decode_block_into(b, scratch.data()); !s.ok()) {
          std::fprintf(stderr, "error: %s\n", s.error().c_str());
          std::exit(1);
        }
      }
    });
    syn.v3c_block_decode_ms = best_of(repeats, [&] {
      for (std::size_t b = 0; b < c_reader->block_count(); ++b) {
        if (const auto s = c_reader->decode_block_into(b, scratch.data()); !s.ok()) {
          std::fprintf(stderr, "error: %s\n", s.error().c_str());
          std::exit(1);
        }
      }
    });

    const auto streamer = trace::TraceStreamer::open(v2_path);
    if (!streamer) {
      std::fprintf(stderr, "error: %s\n", streamer.error().c_str());
      return 1;
    }
    syn.v2_stream_decode_ms = best_of(repeats, [&] {
      std::uint64_t seen = 0;
      if (const auto s = streamer->for_each([&seen](const trace::Event&) { ++seen; }); !s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.error().c_str());
        std::exit(1);
      }
      if (seen != n_events) std::exit((std::fprintf(stderr, "error: event miscount\n"), 1));
    });
  }

  // Aggregate: serial vs parallel analysis of the same decoded trace.
  // The timed repeats are interleaved, after one untimed warm-up pair:
  // running all serial repeats before all parallel ones lets allocator
  // and cache drift bias whichever side runs second (observed as a
  // phantom ~10% "slowdown" on a clamped 1-core host where both sides
  // execute the identical code path).
  analyzer::AnalysisResult serial_result;
  analyzer::AnalysisResult parallel_result;
  {
    analyzer::AnalyzerOptions serial_opt;
    analyzer::AnalyzerOptions parallel_opt;
    parallel_opt.threads = threads;
    const auto run = [&](const analyzer::AnalyzerOptions& opt, analyzer::AnalysisResult& dst) {
      auto result = analyzer::analyze(v3_bundle.trace, opt);
      if (!result) std::exit((std::fprintf(stderr, "error: %s\n", result.error().c_str()), 1));
      dst = std::move(*result);
    };
    run(serial_opt, serial_result);
    run(parallel_opt, parallel_result);
    for (int r = 0; r < repeats; ++r) {
      auto start = Clock::now();
      run(serial_opt, serial_result);
      const double serial_ms = ms_since(start);
      if (r == 0 || serial_ms < syn.aggregate_serial_ms) syn.aggregate_serial_ms = serial_ms;
      start = Clock::now();
      run(parallel_opt, parallel_result);
      const double parallel_ms = ms_since(start);
      if (r == 0 || parallel_ms < syn.aggregate_parallel_ms) {
        syn.aggregate_parallel_ms = parallel_ms;
      }
    }
  }
  syn.aggregate_identical = results_identical(serial_result, parallel_result);

  std::printf("synthetic (%zu events): v2 %.1f MB, v3 %.1f MB, v3 compressed %.1f MB (%.2fx)\n",
              n_events, static_cast<double>(syn.v2_bytes) / 1e6,
              static_cast<double>(syn.v3_bytes) / 1e6, static_cast<double>(syn.v3c_bytes) / 1e6,
              syn.v3c_bytes > 0
                  ? static_cast<double>(syn.v3_bytes) / static_cast<double>(syn.v3c_bytes)
                  : 0.0);
  std::printf("  %-28s %10.1f ms %10.1f MB/s\n", "v2 write", syn.v2_write_ms,
              mbs(syn.v2_bytes, syn.v2_write_ms));
  std::printf("  %-28s %10.1f ms %10.1f MB/s\n", "v3 write (streamed)", syn.v3_write_ms,
              mbs(syn.v3_bytes, syn.v3_write_ms));
  std::printf("  %-28s %10.1f ms %10.1f MB/s\n", "v3 write (compressed)", syn.v3c_write_ms,
              mbs(syn.v3c_bytes, syn.v3c_write_ms));
  std::printf("  %-28s %10.1f ms %10.1f MB/s\n", "v2 read", syn.v2_read_ms,
              mbs(syn.v2_bytes, syn.v2_read_ms));
  std::printf("  %-28s %10.1f ms %10.1f MB/s\n", "v3 read (1 thread)", syn.v3_read_serial_ms,
              mbs(syn.v3_bytes, syn.v3_read_serial_ms));
  std::printf("  %-28s %10.1f ms %10.1f MB/s\n", "v3 read (N threads)", syn.v3_read_parallel_ms,
              mbs(syn.v3_bytes, syn.v3_read_parallel_ms));
  std::printf("  %-28s %10.1f ms %10.1f MB/s  (%.1f MB/s plain-equiv, identical: %s)\n",
              "v3 read (compressed)", syn.v3c_read_ms, mbs(syn.v3c_bytes, syn.v3c_read_ms),
              mbs(syn.v3_bytes, syn.v3c_read_ms), syn.compressed_identical ? "yes" : "NO");
  std::printf("  %-28s %10.1f ms %10.1f MB/s  (%.1f%% coverage)\n", "v3 salvage read (damaged)",
              syn.salvage_read_ms, mbs(syn.v3_bytes, syn.salvage_read_ms),
              syn.salvage_declared > 0 ? 100.0 * static_cast<double>(syn.salvage_recovered) /
                                             static_cast<double>(syn.salvage_declared)
                                       : 0.0);
  std::printf("  %-28s %10.1f ms %10.1f MB/s\n", "v2 istream decode",
              syn.v2_stream_decode_ms, mbs(syn.v2_bytes, syn.v2_stream_decode_ms));
  std::printf("  %-28s %10.1f ms %10.1f MB/s\n", "v3 per-block mmap decode",
              syn.v3_block_decode_ms, mbs(syn.v3_bytes, syn.v3_block_decode_ms));
  std::printf("  %-28s %10.1f ms %10.1f MB/s  (%.1f MB/s plain-equiv)\n",
              "v3c per-block mmap decode", syn.v3c_block_decode_ms,
              mbs(syn.v3c_bytes, syn.v3c_block_decode_ms),
              mbs(syn.v3_bytes, syn.v3c_block_decode_ms));
  std::printf("  %-28s %10.1f ms  (identical: %s)\n", "aggregate (1 thread)",
              syn.aggregate_serial_ms, syn.aggregate_identical ? "yes" : "NO");
  std::printf("  %-28s %10.1f ms  speedup %.2fx\n\n", "aggregate (N threads)",
              syn.aggregate_parallel_ms,
              syn.aggregate_parallel_ms > 0 ? syn.aggregate_serial_ms / syn.aggregate_parallel_ms
                                            : 0.0);

  // --------------------------------------------------------------- apps
  std::vector<AppRow> rows;
  bool all_identical =
      syn.aggregate_identical && syn.read_identical && syn.compressed_identical;
  std::printf("%-14s %10s %10s %10s %8s  %s\n", "app", "events", "t1 (ms)", "tN (ms)", "speedup",
              "identical");
  for (const char* app : {"minife", "minimd", "lulesh", "hpcg", "cloverleaf3d"}) {
    apps::AppOptions app_opt;
    if (smoke) app_opt.iterations = 2;
    const runtime::Workload w = apps::make_app(app, app_opt);
    const auto sys = *memsim::paper_system(6);
    profiler::Profiler prof;
    runtime::EngineOptions eopt;
    eopt.observer = &prof;
    runtime::ExecutionEngine engine(&sys, eopt);
    runtime::FixedTierMode mode(&sys, 1);
    if (!engine.run(w, mode)) {
      std::printf("%-14s profiling failed\n", app);
      all_identical = false;
      continue;
    }
    const trace::Trace t = prof.take_trace();

    AppRow row;
    row.app = app;
    row.events = t.events.size();
    analyzer::AnalysisResult app_serial;
    row.serial_ms = best_of(repeats, [&] {
      analyzer::AnalyzerOptions opt;
      auto result = analyzer::analyze(t, opt);
      if (!result) std::exit((std::fprintf(stderr, "error: %s\n", result.error().c_str()), 1));
      app_serial = std::move(*result);
    });
    analyzer::AnalysisResult app_parallel;
    row.parallel_ms = best_of(repeats, [&] {
      analyzer::AnalyzerOptions opt;
      opt.threads = threads;
      auto result = analyzer::analyze(t, opt);
      if (!result) std::exit((std::fprintf(stderr, "error: %s\n", result.error().c_str()), 1));
      app_parallel = std::move(*result);
    });
    row.identical = results_identical(app_serial, app_parallel);
    all_identical = all_identical && row.identical;
    rows.push_back(row);
    std::printf("%-14s %10llu %10.2f %10.2f %7.2fx  %s\n", app,
                static_cast<unsigned long long>(row.events), row.serial_ms, row.parallel_ms,
                row.parallel_ms > 0 ? row.serial_ms / row.parallel_ms : 0.0,
                row.identical ? "yes" : "NO  <-- determinism violation");
  }

  // ----------------------------------------------------------- verdicts
  const unsigned hw = std::thread::hardware_concurrency();
  const double aggregate_speedup =
      syn.aggregate_parallel_ms > 0 ? syn.aggregate_serial_ms / syn.aggregate_parallel_ms : 0.0;
  const double per_block_decode_speedup =
      syn.v2_stream_decode_ms > 0 && syn.v3_block_decode_ms > 0
          ? mbs(syn.v3_bytes, syn.v3_block_decode_ms) / mbs(syn.v2_bytes, syn.v2_stream_decode_ms)
          : 0.0;
  // On a multi-core host the 4-thread aggregation must win outright; on a
  // 1-core host that is physically impossible, so the bound moves to the
  // per-block decode path the parallelism is built on. Smoke mode records
  // the ratios but does not gate on them — a sub-second synthetic trace is
  // dominated by per-call overheads, not steady-state throughput (the
  // committed full-size run is what the bound certifies). Bit-identity is
  // enforced in both modes.
  const bool speedup_raw = hw >= 4 ? aggregate_speedup >= 2.0 : per_block_decode_speedup >= 2.0;
  const bool speedup_ok = smoke || speedup_raw;
  // Zero-regression bound: requesting parallel aggregation must never
  // cost wall time — >= 0.98x serial even when thread clamping reduces
  // it to the serial path (the 2% allows measurement noise only).
  const bool zero_regression_raw = aggregate_speedup >= 0.98;
  const bool zero_regression_ok = smoke || zero_regression_raw;
  // Compression bound: reading the compressed trace must cost at most
  // 15% more wall time than the uncompressed one.  It reads ~1.6x fewer
  // bytes, so anywhere below that the format is a strict win once real
  // IO (not a warm page cache) is in the path; observed ratios on the
  // dev box range 0.70x-1.11x run to run, so the bound leaves headroom
  // for scheduler noise without masking a real decode regression.
  const bool compressed_raw =
      syn.v3c_read_ms > 0 && syn.v3c_read_ms <= syn.v3_read_serial_ms * 1.15;
  const bool compressed_ok = smoke || compressed_raw;
  std::printf("\naggregate speedup %.2fx, per-block decode speedup %.2fx -> bound %s (%u cores)\n",
              aggregate_speedup, per_block_decode_speedup,
              speedup_raw  ? "met"
              : speedup_ok ? "not met (informational in smoke mode)"
                           : "VIOLATED",
              hw);
  std::printf("zero-regression bound (parallel >= 0.98x serial): %s\n",
              zero_regression_raw ? "met"
              : zero_regression_ok ? "not met (informational in smoke mode)"
                                   : "VIOLATED");
  std::printf("compressed read bound (<= 1.15x uncompressed wall time): %s\n",
              compressed_raw  ? "met"
              : compressed_ok ? "not met (informational in smoke mode)"
                              : "VIOLATED");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"trace_pipeline\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"threads\": %d,\n", threads);
  std::fprintf(out, "  \"repeats\": %d,\n", repeats);
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(out, "  \"synthetic\": {\n");
  std::fprintf(out, "    \"events\": %llu,\n", static_cast<unsigned long long>(syn.events));
  std::fprintf(out, "    \"v2_bytes\": %llu,\n", static_cast<unsigned long long>(syn.v2_bytes));
  std::fprintf(out, "    \"v3_bytes\": %llu,\n", static_cast<unsigned long long>(syn.v3_bytes));
  std::fprintf(out, "    \"v3_compressed_bytes\": %llu,\n",
               static_cast<unsigned long long>(syn.v3c_bytes));
  std::fprintf(out, "    \"compression_ratio\": %.3f,\n",
               syn.v3c_bytes > 0
                   ? static_cast<double>(syn.v3_bytes) / static_cast<double>(syn.v3c_bytes)
                   : 0.0);
  std::fprintf(out, "    \"v2_write_ms\": %.3f, \"v2_write_mbs\": %.1f,\n", syn.v2_write_ms,
               mbs(syn.v2_bytes, syn.v2_write_ms));
  std::fprintf(out, "    \"v3_write_ms\": %.3f, \"v3_write_mbs\": %.1f,\n", syn.v3_write_ms,
               mbs(syn.v3_bytes, syn.v3_write_ms));
  std::fprintf(out, "    \"v3_compressed_write_ms\": %.3f, \"v3_compressed_write_mbs\": %.1f,\n",
               syn.v3c_write_ms, mbs(syn.v3c_bytes, syn.v3c_write_ms));
  std::fprintf(out, "    \"v2_read_ms\": %.3f, \"v2_read_mbs\": %.1f,\n", syn.v2_read_ms,
               mbs(syn.v2_bytes, syn.v2_read_ms));
  std::fprintf(out, "    \"v3_read_serial_ms\": %.3f, \"v3_read_serial_mbs\": %.1f,\n",
               syn.v3_read_serial_ms, mbs(syn.v3_bytes, syn.v3_read_serial_ms));
  std::fprintf(out, "    \"v3_read_parallel_ms\": %.3f, \"v3_read_parallel_mbs\": %.1f,\n",
               syn.v3_read_parallel_ms, mbs(syn.v3_bytes, syn.v3_read_parallel_ms));
  std::fprintf(out, "    \"v3_compressed_read_ms\": %.3f, \"compressed_read_mbs\": %.1f,\n",
               syn.v3c_read_ms, mbs(syn.v3c_bytes, syn.v3c_read_ms));
  std::fprintf(out, "    \"compressed_read_plain_equiv_mbs\": %.1f,\n",
               mbs(syn.v3_bytes, syn.v3c_read_ms));
  std::fprintf(out, "    \"salvage_read_ms\": %.3f, \"salvage_read_mbs\": %.1f,\n",
               syn.salvage_read_ms, mbs(syn.v3_bytes, syn.salvage_read_ms));
  std::fprintf(out, "    \"salvage_events_recovered\": %llu,\n",
               static_cast<unsigned long long>(syn.salvage_recovered));
  std::fprintf(out, "    \"salvage_events_declared\": %llu,\n",
               static_cast<unsigned long long>(syn.salvage_declared));
  std::fprintf(out, "    \"v2_stream_decode_ms\": %.3f, \"v2_stream_decode_mbs\": %.1f,\n",
               syn.v2_stream_decode_ms, mbs(syn.v2_bytes, syn.v2_stream_decode_ms));
  std::fprintf(out, "    \"v3_block_decode_ms\": %.3f, \"v3_block_decode_mbs\": %.1f,\n",
               syn.v3_block_decode_ms, mbs(syn.v3_bytes, syn.v3_block_decode_ms));
  std::fprintf(out, "    \"v3_batch_decode_mbs\": %.1f,\n",
               mbs(syn.v3_bytes, syn.v3_block_decode_ms));
  std::fprintf(out,
               "    \"v3_compressed_block_decode_ms\": %.3f, "
               "\"v3_compressed_block_decode_mbs\": %.1f,\n",
               syn.v3c_block_decode_ms, mbs(syn.v3c_bytes, syn.v3c_block_decode_ms));
  std::fprintf(out, "    \"v3_compressed_block_decode_plain_equiv_mbs\": %.1f,\n",
               mbs(syn.v3_bytes, syn.v3c_block_decode_ms));
  std::fprintf(out, "    \"aggregate_serial_ms\": %.3f,\n", syn.aggregate_serial_ms);
  std::fprintf(out, "    \"aggregate_parallel_ms\": %.3f,\n", syn.aggregate_parallel_ms);
  std::fprintf(out, "    \"aggregate_speedup\": %.3f,\n", aggregate_speedup);
  std::fprintf(out, "    \"per_block_decode_speedup\": %.3f,\n", per_block_decode_speedup);
  std::fprintf(out, "    \"compressed_identical\": %s,\n",
               syn.compressed_identical ? "true" : "false");
  std::fprintf(out, "    \"identical\": %s\n", syn.aggregate_identical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"speedup_bound_enforced\": %s,\n", smoke ? "false" : "true");
  std::fprintf(out, "  \"speedup_bound_met\": %s,\n", speedup_ok ? "true" : "false");
  std::fprintf(out, "  \"zero_regression_bound_met\": %s,\n",
               zero_regression_ok ? "true" : "false");
  std::fprintf(out, "  \"compressed_read_bound_met\": %s,\n", compressed_ok ? "true" : "false");
  std::fprintf(out, "  \"apps\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AppRow& r = rows[i];
    std::fprintf(out,
                 "    {\"app\": \"%s\", \"events\": %llu, \"serial_ms\": %.3f, "
                 "\"parallel_ms\": %.3f, \"aggregate_speedup\": %.3f, \"identical\": %s}%s\n",
                 r.app.c_str(), static_cast<unsigned long long>(r.events), r.serial_ms,
                 r.parallel_ms, r.parallel_ms > 0 ? r.serial_ms / r.parallel_ms : 0.0,
                 r.identical ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());
  std::remove(v3c_path.c_str());
  std::remove(salvage_path.c_str());
  return all_identical && speedup_ok && zero_regression_ok && compressed_ok ? 0 : 1;
}
