// Table VI: "Memory-related profiling of the memory mode executions" —
// memory-bound pipeline slots and DRAM cache hit ratio per mini-app
// (the paper collected these with VTune).
//
// Expected shape: MiniFE and HPCG combine high memory-boundedness with
// the lowest hit ratios (most headroom for ecoHMEM); CloverLeaf3D is the
// most memory bound but caches better; MiniMD is only ~40% memory bound.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace ecohmem;

int main() {
  bench::print_header("bench_table6_memmode_profile",
                      "Table VI (memory-mode VTune-style statistics)");

  const auto sys = *memsim::paper_system(6);
  std::printf("%-14s %22s %18s   %s\n", "", "MemoryBoundSlots(%)", "DramCacheHit(%)",
              "paper: bound / hit");
  struct PaperRow {
    const char* name;
    double bound;
    double hit;
  };
  const std::vector<PaperRow> rows = {{"minife", 90.2, 39.9},
                                      {"minimd", 41.5, 61.5},
                                      {"lulesh", 65.5, 61.7},
                                      {"hpcg", 80.5, 54.4},
                                      {"cloverleaf3d", 93.5, 59.2}};
  for (const auto& row : rows) {
    const auto metrics = core::run_memory_mode(apps::make_app(row.name), sys);
    if (!metrics) {
      std::printf("%-14s failed: %s\n", row.name, metrics.error().c_str());
      continue;
    }
    std::printf("%-14s %22.1f %18.1f   %5.1f / %4.1f\n", row.name,
                metrics->memory_bound_fraction() * 100.0, metrics->dram_cache_hit_ratio * 100.0,
                row.bound, row.hit);
  }
  return 0;
}
