#pragma once

/// Shared helpers for the reproduction benchmarks (one binary per paper
/// table/figure; see DESIGN.md §4). Each binary prints the rows/series of
/// its table or figure; EXPERIMENTS.md records paper-vs-measured.

#include <cstdio>
#include <string>

#include "ecohmem/apps/apps.hpp"
#include "ecohmem/core/ecohmem.hpp"

namespace ecohmem::bench {

inline constexpr Bytes kGiB = 1024ull * 1024 * 1024;

/// C_store used by every "Loads+stores" configuration: the store channel
/// samples 8-byte store instructions, a line carries 8 of them.
inline constexpr double kStoreCoef = 0.125;

struct NamedRun {
  std::string label;
  double speedup = 0.0;
  bool ok = false;
  std::string error;
};

/// Runs the full workflow and reports speedup over the memory-mode
/// baseline embedded in the result.
inline NamedRun run_config(const runtime::Workload& w, const memsim::MemorySystem& sys,
                           std::string label, Bytes dram_limit, double store_coef,
                           bool bw_aware,
                           advisor::ReportFormat format = advisor::ReportFormat::kBom) {
  core::WorkflowOptions opt;
  opt.dram_limit = dram_limit;
  opt.store_coef = store_coef;
  opt.bandwidth_aware = bw_aware;
  opt.format = format;
  NamedRun run;
  run.label = std::move(label);
  const auto result = core::run_workflow(w, sys, opt);
  if (!result) {
    run.error = result.error();
    return run;
  }
  run.speedup = result->speedup();
  run.ok = true;
  return run;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

}  // namespace ecohmem::bench
