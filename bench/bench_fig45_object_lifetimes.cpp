// Figs. 4 & 5 + Tables II & III: lifetime and bandwidth of the objects in
// the high-bandwidth region (PMem temporaries) and the low-bandwidth
// region (DRAM persistent arrays) of LULESH, plus the bandwidth-region
// membership (B_low/B_mid/B_high at allocation vs execution) and the
// allocation-count/lifetime correlation that motivates Table IV's
// classification criteria.
//
// Expected shape: the PMem temporaries live for a small fraction of a
// phase, are allocated hundreds of times in total, and each consumes
// orders of magnitude more bandwidth than the DRAM residents, which live
// for essentially the whole run with ~1 allocation (paper: PMem objects
// ~18 s / ~93 MB/s; DRAM objects ~23 min / ~1 MB/s).

#include <cstdio>

#include "bench_common.hpp"
#include "ecohmem/analyzer/object_record.hpp"

using namespace ecohmem;

namespace {

const char* tf(bool b) { return b ? "T" : "F"; }

void region_flags(double bw, double peak, bool out[3]) {
  const auto region = analyzer::classify_region(bw, peak);
  out[0] = region == analyzer::BandwidthRegion::kLow;
  out[1] = region == analyzer::BandwidthRegion::kMid;
  out[2] = region == analyzer::BandwidthRegion::kHigh;
}

}  // namespace

int main() {
  bench::print_header(
      "bench_fig45_object_lifetimes",
      "Figs. 4/5 + Tables II/III (LULESH object lifetimes, bandwidth, regions)");

  const auto sys = *memsim::paper_system(6);
  const runtime::Workload w = apps::make_lulesh();
  core::WorkflowOptions opt;
  opt.dram_limit = 12 * bench::kGiB;
  const auto result = core::run_workflow(w, sys, opt);
  if (!result) {
    std::printf("workflow failed: %s\n", result.error().c_str());
    return 1;
  }
  const double peak = result->analysis.observed_peak_bw_gbs;
  const double run_s = static_cast<double>(result->analysis.trace_end) * 1e-9;
  std::printf("run length %.1f s, observed peak bandwidth %.2f GB/s\n", run_s, peak);

  auto label_of = [&w](const analyzer::SiteRecord& s) {
    for (const auto& site : w.sites) {
      if (site.stack == s.callstack) return site.label;
    }
    return std::string("?");
  };

  for (const bool pmem_panel : {true, false}) {
    std::printf("\n--- Fig. %d: objects in %s ---\n", pmem_panel ? 4 : 5,
                pmem_panel ? "PMem (high-bandwidth region)" : "DRAM (low-bandwidth region)");
    std::printf("%-34s %12s %14s %10s\n", "site", "lifetime(s)", "object-BW(MB/s)", "allocs");
    for (const auto& s : result->analysis.sites) {
      const bool in_pmem = result->placement.tier_of(s.stack) == "pmem";
      if (in_pmem != pmem_panel) continue;
      if (s.load_misses + s.store_misses < 1.0) continue;
      std::printf("%-34s %12.2f %14.2f %10llu\n", label_of(s).c_str(),
                  s.mean_lifetime_ns * 1e-9, s.exec_bw_gbs * 1000.0,
                  static_cast<unsigned long long>(s.alloc_count));
    }
  }

  std::printf("\n--- Table II: bandwidth-region membership (alloc vs execution) ---\n");
  std::printf("%-34s | alloc: %5s %5s %5s | exec: %5s %5s %5s\n", "site", "B_low", "B_mid",
              "B_hi", "B_low", "B_mid", "B_hi");
  for (const auto& s : result->analysis.sites) {
    if (s.load_misses + s.store_misses < 1.0) continue;
    bool a[3];
    bool e[3];
    region_flags(s.alloc_time_system_bw_gbs, peak, a);
    region_flags(s.exec_time_system_bw_gbs, peak, e);
    std::printf("%-34s |        %5s %5s %5s |       %5s %5s %5s\n", label_of(s).c_str(),
                tf(a[0]), tf(a[1]), tf(a[2]), tf(e[0]), tf(e[1]), tf(e[2]));
  }

  std::printf("\n--- Table III: allocations per object and lifetime ---\n");
  std::printf("%-34s %10s %14s\n", "site group", "allocs", "mean life(s)");
  for (const auto& s : result->analysis.sites) {
    if (s.load_misses + s.store_misses < 1.0) continue;
    std::printf("%-34s %10llu %14.2f\n", label_of(s).c_str(),
                static_cast<unsigned long long>(s.alloc_count), s.mean_lifetime_ns * 1e-9);
  }
  std::printf("\n(expected: single-allocation objects live ~the whole run and cross regions; "
              "many-allocation objects live briefly inside their allocation region)\n");
  return 0;
}
