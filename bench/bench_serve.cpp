// Serving-path benchmark: wire-protocol codec throughput and loopback
// daemon ingest/query rates for ecohmem-serve, with the identity gate
// the daemon must honor — the report queried over the socket is
// byte-identical to the offline ecohmem-advisor pipeline on the same
// events. Records BENCH_serve.json; exits nonzero if identity fails.
//
// Usage: bench_serve [--events N] [--block-events N] [--repeats R]
//                    [--out FILE] [--smoke]

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ecohmem/advisor/advisor_config.hpp"
#include "ecohmem/advisor/knapsack.hpp"
#include "ecohmem/advisor/report.hpp"
#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/serve/client.hpp"
#include "ecohmem/serve/protocol.hpp"
#include "ecohmem/serve/server.hpp"
#include "ecohmem/trace/codec.hpp"

using namespace ecohmem;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

double mbs(std::uint64_t bytes, double ms) {
  return ms > 0.0 ? static_cast<double>(bytes) / 1e6 / (ms / 1e3) : 0.0;
}

double events_per_s(std::uint64_t events, double ms) {
  return ms > 0.0 ? static_cast<double>(events) / (ms / 1e3) : 0.0;
}

/// Deterministic synthetic stream: allocations with interleaved frees
/// and access samples over two call stacks — enough shape to exercise
/// the analyzer store while the wire cost dominates.
std::vector<trace::Event> synth_events(std::size_t n, trace::StackId s0, trace::StackId s1,
                                       std::uint32_t fn) {
  std::vector<trace::Event> events;
  events.reserve(n);
  std::uint64_t x = 0x2545F4914F6CDD1Dull;
  const auto rnd = [&x] {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x >> 33;
  };
  Ns time = 0;
  std::uint64_t next_id = 1;
  std::uint64_t next_addr = 0x100000;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> live;
  for (std::size_t i = 0; i < n; ++i) {
    time += 10 + rnd() % 40;
    switch (rnd() % 8) {
      case 0:
      case 1: {
        const Bytes size = 64 + rnd() % 4096;
        events.emplace_back(trace::AllocEvent{time, next_id, next_addr, size,
                                              (i % 2) != 0 ? s0 : s1,
                                              trace::AllocKind::kMalloc});
        live.emplace_back(next_id, next_addr);
        next_addr += size + 64;
        ++next_id;
        break;
      }
      case 2:
        if (live.empty()) {
          events.emplace_back(trace::MarkerEvent{time, fn, true});
        } else {
          const std::size_t k = rnd() % live.size();
          events.emplace_back(trace::FreeEvent{time, live[k].first});
          live[k] = live.back();
          live.pop_back();
        }
        break;
      default:
        events.emplace_back(trace::SampleEvent{
            time, live.empty() ? 0x10 : live[rnd() % live.size()].second + rnd() % 64,
            1.0 + static_cast<double>(rnd() % 8) * 0.5, static_cast<double>(rnd() % 400),
            rnd() % 4 == 0, fn});
    }
  }
  return events;
}

template <typename Fn>
double best_of(int repeats, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = Clock::now();
    fn();
    const double ms = ms_since(start);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_events = 2'000'000;
  std::size_t block_events = 4096;
  int repeats = 3;
  std::string out_path = "BENCH_serve.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--smoke") {
      smoke = true;
    } else if (i + 1 < argc) {
      const char* value = argv[++i];
      if (flag == "--events") n_events = static_cast<std::size_t>(std::atoll(value));
      if (flag == "--block-events") block_events = static_cast<std::size_t>(std::atoll(value));
      if (flag == "--repeats") repeats = std::atoi(value);
      if (flag == "--out") out_path = value;
    }
  }
  if (smoke) {
    n_events = std::min<std::size_t>(n_events, 100'000);
    repeats = 1;
  }
  if (n_events == 0 || block_events == 0 || repeats < 1) {
    std::fprintf(stderr, "error: --events, --block-events and --repeats must be >= 1\n");
    return 1;
  }

  bench::print_header("Serving path: wire codec throughput + loopback daemon ingest/query",
                      "ecohmem-serve placement-as-a-service (docs/serving.md)");
  std::printf("host cores: %u, repeats: %d (best-of), events: %zu, block: %zu%s\n\n",
              std::thread::hardware_concurrency(), repeats, n_events, block_events,
              smoke ? " [smoke]" : "");

  trace::Trace t;
  t.sample_rate_hz = 1000.0;
  const trace::StackId s0 = t.stacks.intern(bom::CallStack{{{0, 0x10}}});
  const trace::StackId s1 = t.stacks.intern(bom::CallStack{{{0, 0x20}, {1, 0x8}}});
  const std::uint32_t fn = t.functions.intern("synth");
  bom::ModuleTable modules;
  modules.add_module("synth.x", 1 << 20, 0);
  modules.add_module("libsynth.so", 1 << 20, 0);
  t.events = synth_events(n_events, s0, s1, fn);

  // ------------------------------------------ wire codec, no sockets
  // Encode the whole stream into INGEST_BLOCK frames, then parse and
  // decode every frame back; both directions are the per-connection
  // hot path of the daemon.
  std::string wire;
  const double encode_ms = best_of(repeats, [&] {
    wire.clear();
    std::size_t seq = 0;
    for (std::size_t off = 0; off < t.events.size(); off += block_events) {
      const std::size_t count = std::min(block_events, t.events.size() - off);
      serve::IngestBlock msg;
      msg.block_seq = seq++;
      msg.event_count = count;
      Ns last_time = 0;
      for (std::size_t i = 0; i < count; ++i) {
        trace::codec::encode_event_compact(msg.block, t.events[off + i], last_time);
      }
      std::string payload;
      serve::encode_ingest_block(payload, msg);
      serve::append_frame(wire, serve::FrameType::kIngestBlock, payload);
    }
  });

  std::uint64_t decoded_events = 0;
  const double decode_ms = best_of(repeats, [&] {
    decoded_events = 0;
    std::size_t offset = 0;
    while (offset < wire.size()) {
      std::size_t consumed = 0;
      const auto frame = serve::parse_frame(
          reinterpret_cast<const unsigned char*>(wire.data()) + offset, wire.size() - offset,
          &consumed, serve::kDefaultMaxFrameBytes);
      if (!frame) {
        std::fprintf(stderr, "error: %s\n", frame.error().c_str());
        std::exit(1);
      }
      const auto msg = serve::decode_ingest_block(frame->payload);
      if (!msg) {
        std::fprintf(stderr, "error: %s\n", msg.error().c_str());
        std::exit(1);
      }
      trace::codec::ByteReader r(
          reinterpret_cast<const unsigned char*>(msg->block.data()), msg->block.size(), 0);
      Ns last_time = 0;
      for (std::uint64_t i = 0; i < msg->event_count; ++i) {
        trace::Event event;
        if (const auto status =
                trace::codec::decode_event_compact(r, 2, last_time, event);
            !status.ok()) {
          std::fprintf(stderr, "error: %s\n", status.error().c_str());
          std::exit(1);
        }
        ++decoded_events;
      }
      offset += consumed;
    }
  });
  if (decoded_events != t.events.size()) {
    std::fprintf(stderr, "error: codec round trip lost events (%llu != %zu)\n",
                 static_cast<unsigned long long>(decoded_events), t.events.size());
    return 1;
  }

  // ------------------------------------------ loopback daemon
  const std::string socket_path =
      "/tmp/bench_serve_" + std::to_string(::getpid()) + ".sock";
  serve::ServerOptions options;
  options.socket_path = socket_path;
  auto server = serve::Server::create(std::move(options));
  if (!server) {
    std::fprintf(stderr, "error: %s\n", server.error().c_str());
    return 1;
  }
  std::thread daemon([&server] {
    if (const auto status = (*server)->run(); !status.ok()) {
      std::fprintf(stderr, "error: server run: %s\n", status.error().c_str());
      std::exit(1);
    }
  });

  auto client = serve::Client::connect(socket_path);
  if (!client) {
    std::fprintf(stderr, "error: %s\n", client.error().c_str());
    return 1;
  }
  if (const auto status =
          client->hello_create(t.stacks, t.functions, modules, t.sample_rate_hz);
      !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.error().c_str());
    return 1;
  }

  const auto ingest_start = Clock::now();
  if (const auto status = client->ingest_events(t.events, block_events); !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.error().c_str());
    return 1;
  }
  const double ingest_ms = ms_since(ingest_start);

  const auto config = advisor::AdvisorConfig::dram_pmem(bench::kGiB, bench::kStoreCoef);
  Expected<serve::Report> served = unexpected("query never ran");
  const double query_ms = best_of(repeats, [&] {
    served = client->query(config);
    if (!served) {
      std::fprintf(stderr, "error: %s\n", served.error().c_str());
      std::exit(1);
    }
  });
  if (const auto status = client->bye(); !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.error().c_str());
    return 1;
  }
  (*server)->request_stop();
  daemon.join();

  // ------------------------------------------ identity gate
  const auto analysis = analyzer::analyze(t);
  if (!analysis) {
    std::fprintf(stderr, "error: %s\n", analysis.error().c_str());
    return 1;
  }
  auto placement = advisor::place_by_density(analysis->sites, config);
  if (!placement) {
    std::fprintf(stderr, "error: %s\n", placement.error().c_str());
    return 1;
  }
  const auto offline =
      advisor::report_to_string(*placement, advisor::ReportFormat::kBom, modules);
  if (!offline) {
    std::fprintf(stderr, "error: %s\n", offline.error().c_str());
    return 1;
  }
  const bool identical = served->text == *offline && served->events_analyzed == n_events;

  const double encode_rate = mbs(wire.size(), encode_ms);
  const double decode_rate = mbs(wire.size(), decode_ms);
  const double ingest_rate = events_per_s(n_events, ingest_ms);
  std::printf("wire bytes          : %.1f MB (%zu frames of <= %zu events)\n",
              static_cast<double>(wire.size()) / 1e6,
              (t.events.size() + block_events - 1) / block_events, block_events);
  std::printf("frame encode        : %8.1f MB/s\n", encode_rate);
  std::printf("frame decode        : %8.1f MB/s\n", decode_rate);
  std::printf("loopback ingest     : %8.0f events/s (%.1f ms total)\n", ingest_rate, ingest_ms);
  std::printf("query latency       : %8.2f ms (epoch %llu, %llu events)\n", query_ms,
              static_cast<unsigned long long>(served->epoch),
              static_cast<unsigned long long>(served->events_analyzed));
  std::printf("identity            : %s\n", identical ? "served == offline" : "MISMATCH");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"serve\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"events\": %zu,\n"
               "  \"block_events\": %zu,\n"
               "  \"wire_bytes\": %zu,\n"
               "  \"frame_encode_mbs\": %.1f,\n"
               "  \"frame_decode_mbs\": %.1f,\n"
               "  \"ingest_events_per_s\": %.0f,\n"
               "  \"query_ms\": %.3f,\n"
               "  \"identical\": %s\n"
               "}\n",
               std::thread::hardware_concurrency(), n_events, block_events, wire.size(),
               encode_rate, decode_rate, ingest_rate, query_ms, identical ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr, "error: served report is not byte-identical to the offline advisor\n");
    return 1;
  }
  return 0;
}
