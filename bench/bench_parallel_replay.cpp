// Parallel replay benchmark: replays the Fig. 6 mini-app workloads
// app-direct through FlexMalloc with 1 and N worker threads, verifies
// that the placement-relevant results are identical (the determinism
// contract of docs/threading.md), and records the measured wall-clock
// numbers in BENCH_parallel_replay.json.
//
// Wall-clock speedup is hardware-dependent: on a single-core host the
// parallel path cannot beat the serial one and the JSON records that
// honestly (hardware_concurrency is part of the record).
//
// Usage: bench_parallel_replay [--threads N] [--repeats R] [--out FILE]

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

using namespace ecohmem;

namespace {

struct TimedRun {
  runtime::RunMetrics metrics;
  double best_wall_ms = 0.0;
};

Expected<TimedRun> timed_replay(const runtime::Workload& w, const memsim::MemorySystem& sys,
                                const advisor::Placement& placement, int threads, int repeats) {
  runtime::EngineOptions engine_options;
  engine_options.replay_threads = threads;
  TimedRun out;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    auto metrics = core::run_with_placement(w, sys, placement, 12 * bench::kGiB,
                                            advisor::ReportFormat::kBom, engine_options);
    const auto end = std::chrono::steady_clock::now();
    if (!metrics) return unexpected(metrics.error());
    const double wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
    if (r == 0 || wall_ms < out.best_wall_ms) out.best_wall_ms = wall_ms;
    out.metrics = std::move(*metrics);
  }
  return out;
}

bool traffic_identical(const runtime::RunMetrics& a, const runtime::RunMetrics& b) {
  if (a.allocations != b.allocations || a.frees != b.frees) return false;
  if (a.oom_redirects != b.oom_redirects || a.total_ns != b.total_ns) return false;
  if (a.tier_traffic.size() != b.tier_traffic.size()) return false;
  for (std::size_t k = 0; k < a.tier_traffic.size(); ++k) {
    if (a.tier_traffic[k].read_bytes != b.tier_traffic[k].read_bytes) return false;
    if (a.tier_traffic[k].write_bytes != b.tier_traffic[k].write_bytes) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  int repeats = 3;
  std::string out_path = "BENCH_parallel_replay.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--threads") threads = std::atoi(argv[i + 1]);
    if (flag == "--repeats") repeats = std::atoi(argv[i + 1]);
    if (flag == "--out") out_path = argv[i + 1];
  }
  if (threads < 2 || repeats < 1) {
    std::fprintf(stderr, "error: --threads must be >= 2 and --repeats >= 1\n");
    return 1;
  }

  bench::print_header("Parallel workload replay: 1 thread vs N threads",
                      "thread-safe FlexMalloc + sharded replay (docs/threading.md)");
  std::printf("host cores: %u, replay threads: %d, repeats: %d (best-of)\n\n",
              std::thread::hardware_concurrency(), threads, repeats);
  std::printf("%-14s %10s %10s %8s  %s\n", "app", "t1 (ms)", "tN (ms)", "speedup", "identical");

  const auto sys = *memsim::paper_system(6);
  struct Row {
    std::string app;
    double t1_ms = 0.0;
    double tn_ms = 0.0;
    bool identical = false;
    std::uint64_t allocations = 0;
  };
  std::vector<Row> rows;
  bool all_identical = true;

  for (const char* app : {"minife", "minimd", "lulesh", "hpcg", "cloverleaf3d"}) {
    const runtime::Workload w = apps::make_app(app);

    core::WorkflowOptions opt;
    opt.dram_limit = 12 * bench::kGiB;
    const auto workflow = core::run_workflow(w, sys, opt);
    if (!workflow) {
      std::printf("%-14s workflow failed: %s\n", app, workflow.error().c_str());
      all_identical = false;
      continue;
    }

    const auto serial = timed_replay(w, sys, workflow->placement, 1, repeats);
    const auto parallel = timed_replay(w, sys, workflow->placement, threads, repeats);
    if (!serial || !parallel) {
      std::printf("%-14s replay failed: %s\n", app,
                  (!serial ? serial.error() : parallel.error()).c_str());
      all_identical = false;
      continue;
    }

    Row row;
    row.app = app;
    row.t1_ms = serial->best_wall_ms;
    row.tn_ms = parallel->best_wall_ms;
    row.identical = traffic_identical(serial->metrics, parallel->metrics);
    row.allocations = serial->metrics.allocations;
    all_identical = all_identical && row.identical;
    rows.push_back(row);

    std::printf("%-14s %10.2f %10.2f %7.2fx  %s\n", app, row.t1_ms, row.tn_ms,
                row.tn_ms > 0.0 ? row.t1_ms / row.tn_ms : 0.0,
                row.identical ? "yes" : "NO  <-- determinism violation");
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"parallel_replay\",\n");
  std::fprintf(out, "  \"replay_threads\": %d,\n", threads);
  std::fprintf(out, "  \"repeats\": %d,\n", repeats);
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(out, "  \"apps\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"app\": \"%s\", \"serial_ms\": %.3f, \"parallel_ms\": %.3f, "
                 "\"wall_clock_speedup\": %.3f, \"allocations\": %llu, "
                 "\"results_identical\": %s}%s\n",
                 r.app.c_str(), r.t1_ms, r.tn_ms, r.tn_ms > 0.0 ? r.t1_ms / r.tn_ms : 0.0,
                 static_cast<unsigned long long>(r.allocations),
                 r.identical ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  return all_identical ? 0 : 1;
}
