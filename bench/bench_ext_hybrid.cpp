// Extension study: the paper's stated future work (§III) — combining the
// proactive Advisor placement with reactive kernel page migration.
//
// For each application: memory mode (baseline 1.0), pure reactive
// (kernel tiering), pure proactive (ecoHMEM bandwidth-aware), and the
// hybrid (ecoHMEM initial placement + a reactive migration window).
// Expected shape: hybrid >= proactive on workloads whose runtime hotness
// drifts from the profile, and never pays the tiering baseline's
// metadata-tax collapse because the Advisor placement already uses the
// devdax path.

#include <cstdio>

#include "bench_common.hpp"
#include "ecohmem/baselines/hybrid_mode.hpp"
#include "ecohmem/baselines/kernel_tiering.hpp"
#include "ecohmem/flexmalloc/flexmalloc.hpp"

using namespace ecohmem;

namespace {

void run_app(const std::string& name) {
  const auto sys = *memsim::paper_system(6);
  const runtime::Workload w = apps::make_app(name);
  const Bytes dram = name == "openfoam" ? 11 * bench::kGiB : 12 * bench::kGiB;

  const auto baseline = core::run_memory_mode(w, sys);
  if (!baseline) return;

  // Pure reactive.
  double reactive = 0.0;
  {
    baselines::KernelTieringMode tiering(&sys, 0, sys.fallback_index());
    runtime::ExecutionEngine engine(&sys, {});
    const auto run = engine.run(w, tiering);
    if (run) reactive = run->speedup_over(*baseline);
  }

  // Pure proactive (bandwidth-aware ecoHMEM).
  core::WorkflowOptions opt;
  opt.dram_limit = dram;
  opt.bandwidth_aware = true;
  const auto proactive = core::run_workflow(w, sys, opt);
  if (!proactive) return;

  // Hybrid: same report, plus a 15% reactive window.
  double hybrid = 0.0;
  double migrated_gb = 0.0;
  {
    const auto parsed = flexmalloc::parse_report(proactive->report_text, *w.modules);
    if (parsed) {
      auto fm = flexmalloc::FlexMalloc::create(
          {{"dram", dram}, {"pmem", sys.tier(sys.fallback_index()).capacity()}}, *parsed,
          w.symbols.get());
      if (fm) {
        baselines::HybridMode mode(&sys, &*fm, 0, sys.fallback_index());
        runtime::ExecutionEngine engine(&sys, {});
        const auto run = engine.run(w, mode);
        if (run) {
          hybrid = run->speedup_over(*baseline);
          migrated_gb = mode.migrated_bytes() / 1e9;
        }
      }
    }
  }

  std::printf("%-14s %9.2f %10.2f %8.2f   (%.1f GB migrated)\n", name.c_str(), reactive,
              proactive->speedup(), hybrid, migrated_gb);
}

}  // namespace

int main() {
  bench::print_header("bench_ext_hybrid",
                      "extension: §III future work — proactive + reactive hybrid");
  std::printf("%-14s %9s %10s %8s\n", "app", "reactive", "proactive", "hybrid");
  for (const auto& name : apps::app_names()) run_app(name);
  std::printf("\n(speedups over memory mode; 'reactive' is the tiering kernel with its\n"
              " metadata tax, 'proactive' is bandwidth-aware ecoHMEM, 'hybrid' layers a\n"
              " 15%% reactive DRAM window on the proactive placement)\n");
  return 0;
}
