// Fig. 3: "Bandwidth consumption as objects are allocated for LULESH" —
// the PMem bandwidth timeline of one recurring execution phase under the
// access-density placement, annotated with the allocations happening in
// the phase.
//
// Expected shape: low bandwidth through the nodal stretch, a ramp to the
// phase peak as the element streams and freshly allocated temporaries
// hit PMem, then decay to the end of the phase; the large temporary
// allocations cluster at the start of the high-bandwidth region.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace ecohmem;

int main() {
  bench::print_header("bench_fig3_lulesh_phase",
                      "Fig. 3 (LULESH phase bandwidth + allocations, density placement)");

  const auto sys = *memsim::paper_system(6);
  const runtime::Workload w = apps::make_lulesh();
  core::WorkflowOptions opt;
  opt.dram_limit = 12 * bench::kGiB;
  const auto result = core::run_workflow(w, sys, opt);
  if (!result) {
    std::printf("workflow failed: %s\n", result.error().c_str());
    return 1;
  }

  // One phase = 1/20th of the run (the model's 20 recurring phases);
  // print the second phase to skip warm-up.
  const auto& pmem_bw = result->production_metrics.tier_bw[sys.fallback_index()];
  if (pmem_bw.empty()) {
    std::printf("no bandwidth data\n");
    return 1;
  }
  const Ns total = static_cast<Ns>(result->production_metrics.total_ns);
  const Ns phase = total / 20;
  const Ns begin = phase;
  const Ns end = 2 * phase;

  std::printf("PMem bandwidth over one phase (40 buckets):\n");
  std::printf("%10s %9s  %s\n", "t(s)", "GB/s", "profile");
  const Ns bucket = (end - begin) / 40;
  for (int i = 0; i < 40; ++i) {
    const Ns t0 = begin + static_cast<Ns>(i) * bucket;
    double sum = 0.0;
    int n = 0;
    for (const auto& p : pmem_bw) {
      if (p.time >= t0 && p.time < t0 + bucket) {
        sum += p.gbs;
        ++n;
      }
    }
    const double gbs = n > 0 ? sum / n : 0.0;
    std::printf("%10.2f %9.2f  ", static_cast<double>(t0) * 1e-9, gbs);
    const int bars = std::min(60, static_cast<int>(gbs * 2.0));
    for (int b = 0; b < bars; ++b) std::printf("#");
    std::printf("\n");
  }

  // Allocation annotations: the per-phase sites (alloc_count > 2).
  std::printf("\nallocations recurring each phase (solid bars of Fig. 3):\n");
  std::printf("%-34s %10s %8s %14s\n", "site", "size(MB)", "allocs", "alloc-BW(GB/s)");
  for (const auto& s : result->analysis.sites) {
    if (s.alloc_count <= 2) continue;
    std::string label = "?";
    for (const auto& site : w.sites) {
      if (site.stack == s.callstack) label = site.label;
    }
    std::printf("%-34s %10.1f %8llu %14.2f\n", label.c_str(),
                static_cast<double>(s.max_size) / 1e6,
                static_cast<unsigned long long>(s.alloc_count), s.alloc_time_system_bw_gbs);
  }
  return 0;
}
