// Projection study: the paper evaluates first-generation Optane PMem and
// notes (§II) that "the recently-released second generation provides
// around 40% additional performance". This benchmark re-runs the Fig. 6
// and Table VIII headline rows on a modeled PMem 200 node.
//
// Expected shape: every memory-mode baseline improves (its PMem share is
// cheaper), so ecoHMEM's *relative* speedups shrink — the better the
// slow tier, the less placement matters — while absolute runtimes drop
// across the board. OpenFOAM's base-algorithm failure softens but does
// not disappear (write bandwidth is still the bottleneck).

#include <cstdio>

#include "bench_common.hpp"

using namespace ecohmem;

namespace {

void run_row(const std::string& name, const memsim::MemorySystem& gen1,
             const memsim::MemorySystem& gen2) {
  const runtime::Workload w = apps::make_app(name);
  const Bytes dram = name == "openfoam" ? 11 * bench::kGiB : 12 * bench::kGiB;
  const bool bw_aware = name == "openfoam" || name == "lulesh";

  const auto b1 = core::run_memory_mode(w, gen1);
  const auto b2 = core::run_memory_mode(w, gen2);
  const auto r1 = bench::run_config(w, gen1, "", dram, 0.0, bw_aware);
  const auto r2 = bench::run_config(w, gen2, "", dram, 0.0, bw_aware);
  if (!b1 || !b2) return;
  std::printf("%-14s %10.1f %10.1f %12.2f %12.2f\n", name.c_str(),
              static_cast<double>(b1->total_ns) * 1e-9,
              static_cast<double>(b2->total_ns) * 1e-9, r1.speedup, r2.speedup);
}

}  // namespace

int main() {
  bench::print_header("bench_ext_pmem200",
                      "extension: §II projection to 2nd-gen Optane (+40% bandwidth)");

  const auto gen1 = *memsim::paper_system(6);
  const auto gen2 = *memsim::MemorySystem::create(
      {memsim::ddr4_dram_spec(), memsim::optane_pmem200_spec(6)});

  std::printf("%-14s %10s %10s %12s %12s\n", "app", "mm-gen1(s)", "mm-gen2(s)", "eco-gen1",
              "eco-gen2");
  for (const auto& name : apps::app_names()) run_row(name, gen1, gen2);
  std::printf("\n(eco-* are speedups over the same-generation memory-mode baseline;\n"
              " faster PMem lifts the baseline, so relative wins shrink while every\n"
              " absolute runtime improves)\n");
  return 0;
}
