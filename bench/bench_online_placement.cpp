// Online placement benchmark: static (frozen advisor placement) vs the
// online migration policy vs the kernel-tiering baseline, on the
// phase-shifting synthetic workload and the Fig. 6 mini-apps.
//
// Acceptance (docs/online.md, checked here and by ci.sh):
//   - on phase-shift the online policy must beat the frozen static
//     placement even after paying every migration's bandwidth cost;
//   - on the steady-state mini-apps it must never regress the static
//     run by more than the configured hysteresis margin.
// The measured numbers land in BENCH_online_placement.json; a violated
// acceptance bound makes the binary exit nonzero.
//
// Usage: bench_online_placement [--out FILE]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ecohmem/apps/synthetic.hpp"
#include "ecohmem/baselines/kernel_tiering.hpp"
#include "ecohmem/online/policy_config.hpp"

using namespace ecohmem;

namespace {

struct Row {
  std::string app;
  bool steady = false;      // steady-state app -> hysteresis bound applies
  double static_s = 0.0;    // frozen placement, no migrations
  double online_s = 0.0;    // same placement + online policy
  double tiering_s = 0.0;   // kernel-tiering baseline (context)
  std::uint64_t migrations = 0;
  std::uint64_t cancelled = 0;
  double migrated_mb = 0.0;
  double migration_ms = 0.0;
  bool pass = false;
};

double seconds(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

Expected<Row> run_app(const std::string& name, const runtime::Workload& w,
                      const memsim::MemorySystem& sys,
                      const online::OnlinePolicyConfig& policy, bool steady) {
  core::WorkflowOptions opt;
  opt.dram_limit = 12 * bench::kGiB;
  const auto workflow = core::run_workflow(w, sys, opt);
  if (!workflow) return unexpected(workflow.error());

  runtime::EngineOptions engine_options;
  engine_options.online_policy = &policy;
  const auto online = core::run_with_placement(w, sys, workflow->placement, opt.dram_limit,
                                               advisor::ReportFormat::kBom, engine_options);
  if (!online) return unexpected(online.error());

  baselines::KernelTieringMode tiering(&sys, 0, sys.fallback_index());
  runtime::ExecutionEngine engine(&sys, {});
  const auto tiering_run = engine.run(w, tiering);
  if (!tiering_run) return unexpected(tiering_run.error());

  Row row;
  row.app = name;
  row.steady = steady;
  row.static_s = seconds(workflow->production_metrics.total_ns);
  row.online_s = seconds(online->total_ns);
  row.tiering_s = seconds(tiering_run->total_ns);
  row.migrations = online->migrations;
  row.cancelled = online->migrations_cancelled;
  row.migrated_mb = static_cast<double>(online->migrated_bytes) / (1 << 20);
  row.migration_ms = online->migration_ns * 1e-6;
  row.pass = steady ? row.online_s <= row.static_s * (1.0 + policy.hysteresis)
                    : row.online_s < row.static_s;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_online_placement.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  bench::print_header("Online placement: static vs online policy vs kernel tiering",
                      "online migration subsystem (docs/online.md)");

  const online::OnlinePolicyConfig policy;  // defaults == configs/online_policy.ini
  const auto sys = *memsim::paper_system(6);

  struct AppSpec {
    const char* name;
    bool steady;
  };
  const std::vector<AppSpec> specs = {
      {"phase-shift", false}, {"minife", true},       {"minimd", true},
      {"lulesh", true},       {"hpcg", true},         {"cloverleaf3d", true},
  };

  std::printf("%-14s %10s %10s %10s %6s %9s  %s\n", "app", "static(s)", "online(s)",
              "tiering(s)", "moves", "moved(MB)", "bound");
  std::vector<Row> rows;
  bool all_pass = true;
  for (const auto& spec : specs) {
    const runtime::Workload w = apps::make_app(spec.name);
    const auto row = run_app(spec.name, w, sys, policy, spec.steady);
    if (!row) {
      std::printf("%-14s failed: %s\n", spec.name, row.error().c_str());
      all_pass = false;
      continue;
    }
    rows.push_back(*row);
    std::printf("%-14s %10.3f %10.3f %10.3f %6llu %9.1f  %s\n", row->app.c_str(),
                row->static_s, row->online_s, row->tiering_s,
                static_cast<unsigned long long>(row->migrations), row->migrated_mb,
                row->pass ? (row->steady ? "within hysteresis" : "beats static")
                          : "VIOLATED");
    all_pass = all_pass && row->pass;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"online_placement\",\n");
  std::fprintf(out, "  \"hysteresis\": %.6g,\n", policy.hysteresis);
  std::fprintf(out, "  \"all_pass\": %s,\n", all_pass ? "true" : "false");
  std::fprintf(out, "  \"apps\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"app\": \"%s\", \"steady\": %s, \"static_s\": %.6f, "
                 "\"online_s\": %.6f, \"kernel_tiering_s\": %.6f, "
                 "\"migrations\": %llu, \"migrations_cancelled\": %llu, "
                 "\"migrated_mb\": %.1f, \"migration_ms\": %.3f, \"pass\": %s}%s\n",
                 r.app.c_str(), r.steady ? "true" : "false", r.static_s, r.online_s,
                 r.tiering_s, static_cast<unsigned long long>(r.migrations),
                 static_cast<unsigned long long>(r.cancelled), r.migrated_mb,
                 r.migration_ms, r.pass ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!all_pass) {
    std::fprintf(stderr, "error: online placement acceptance bound violated\n");
    return 1;
  }
  return 0;
}
