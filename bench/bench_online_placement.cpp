// Online placement benchmark: static (frozen advisor placement) vs the
// online migration policy (pure and guidance-seeded) vs the
// kernel-tiering baseline, on the phase-shifting synthetic workload and
// the Fig. 6 mini-apps.
//
// Acceptance (docs/online.md, checked here and by ci.sh):
//   - on phase-shift the online policy must beat the frozen static
//     placement even after paying every migration's bandwidth cost;
//   - on the steady-state mini-apps it must never regress the static
//     run by more than the configured hysteresis margin;
//   - seeding the policy from the advisor report (--from-report) must
//     never make it slower than starting cold;
//   - phase-shift must exercise page-granular partial moves (the huge
//     arrays migrate in chunks, not as monolithic copies);
//   - parallel replay (--threads 4) must reproduce the serial online
//     run bit-identically (counters, stall times, migration events).
// The measured numbers land in BENCH_online_placement.json; a violated
// acceptance bound makes the binary exit nonzero.
//
// Usage: bench_online_placement [--out FILE]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ecohmem/apps/synthetic.hpp"
#include "ecohmem/baselines/kernel_tiering.hpp"
#include "ecohmem/online/policy_config.hpp"
#include "ecohmem/runtime/guidance.hpp"

using namespace ecohmem;

namespace {

struct Row {
  std::string app;
  bool steady = false;      // steady-state app -> hysteresis bound applies
  double static_s = 0.0;    // frozen placement, no migrations
  double online_s = 0.0;    // same placement + online policy
  double seeded_s = 0.0;    // online policy seeded from the advisor report
  double tiering_s = 0.0;   // kernel-tiering baseline (context)
  std::uint64_t migrations = 0;
  std::uint64_t partial = 0;
  std::uint64_t cancelled = 0;
  double migrated_mb = 0.0;
  double migration_ms = 0.0;
  bool parallel_identical = false;  // --threads 4 reproduces serial exactly
  bool pass = false;
};

double seconds(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

/// Bit-exact equality of everything an online run reports — the
/// determinism contract docs/threading.md makes for parallel replay.
bool metrics_identical(const runtime::RunMetrics& a, const runtime::RunMetrics& b) {
  if (a.total_ns != b.total_ns || a.load_stall_ns != b.load_stall_ns ||
      a.store_stall_ns != b.store_stall_ns) {
    return false;
  }
  if (a.migrations_scheduled != b.migrations_scheduled || a.migrations != b.migrations ||
      a.migrations_partial != b.migrations_partial ||
      a.migrations_cancelled != b.migrations_cancelled ||
      a.migrated_bytes != b.migrated_bytes || a.migration_ns != b.migration_ns ||
      a.migration_events != b.migration_events) {
    return false;
  }
  if (a.tier_traffic.size() != b.tier_traffic.size()) return false;
  for (std::size_t i = 0; i < a.tier_traffic.size(); ++i) {
    if (a.tier_traffic[i].read_bytes != b.tier_traffic[i].read_bytes ||
        a.tier_traffic[i].write_bytes != b.tier_traffic[i].write_bytes) {
      return false;
    }
  }
  return true;
}

Expected<Row> run_app(const std::string& name, const runtime::Workload& w,
                      const memsim::MemorySystem& sys,
                      const online::OnlinePolicyConfig& policy, bool steady) {
  core::WorkflowOptions opt;
  opt.dram_limit = 12 * bench::kGiB;
  const auto workflow = core::run_workflow(w, sys, opt);
  if (!workflow) return unexpected(workflow.error());

  runtime::EngineOptions engine_options;
  engine_options.online_policy = &policy;
  const auto online = core::run_with_placement(w, sys, workflow->placement, opt.dram_limit,
                                               advisor::ReportFormat::kBom, engine_options);
  if (!online) return unexpected(online.error());

  // The same run seeded from the advisor report, exactly as
  // `ecohmem-run --online P --from-report R` would set it up.
  const auto report = flexmalloc::parse_report(workflow->report_text, *w.modules);
  if (!report) return unexpected(report.error());
  const auto guidance = runtime::GuidanceSeed::build(w, *report);
  if (!guidance) return unexpected(guidance.error());
  runtime::EngineOptions seeded_options = engine_options;
  seeded_options.guidance = &*guidance;
  const auto seeded = core::run_with_placement(w, sys, workflow->placement, opt.dram_limit,
                                               advisor::ReportFormat::kBom, seeded_options);
  if (!seeded) return unexpected(seeded.error());

  // Parallel replay of the identical online run; the sharded sampler
  // keeps it bit-identical at any thread count.
  runtime::EngineOptions parallel_options = engine_options;
  parallel_options.replay_threads = 4;
  const auto parallel = core::run_with_placement(w, sys, workflow->placement, opt.dram_limit,
                                                 advisor::ReportFormat::kBom, parallel_options);
  if (!parallel) return unexpected(parallel.error());

  baselines::KernelTieringMode tiering(&sys, 0, sys.fallback_index());
  runtime::ExecutionEngine engine(&sys, {});
  const auto tiering_run = engine.run(w, tiering);
  if (!tiering_run) return unexpected(tiering_run.error());

  Row row;
  row.app = name;
  row.steady = steady;
  row.static_s = seconds(workflow->production_metrics.total_ns);
  row.online_s = seconds(online->total_ns);
  row.seeded_s = seconds(seeded->total_ns);
  row.tiering_s = seconds(tiering_run->total_ns);
  row.migrations = online->migrations;
  row.partial = online->migrations_partial;
  row.cancelled = online->migrations_cancelled;
  row.migrated_mb = static_cast<double>(online->migrated_bytes) / (1 << 20);
  row.migration_ms = online->migration_ns * 1e-6;
  row.parallel_identical = metrics_identical(*online, *parallel);
  const bool online_ok = steady ? row.online_s <= row.static_s * (1.0 + policy.hysteresis)
                                : row.online_s < row.static_s;
  // Seeding must never make the policy slower than starting cold
  // (tiny tolerance: seeding may legally reorder same-cost moves).
  const bool seeded_ok = row.seeded_s <= row.online_s * 1.0001;
  // Phase-shift's hot arrays are over the huge-object threshold, so the
  // win must come through page-granular partial moves.
  const bool partial_ok = steady || row.partial > 0;
  row.pass = online_ok && seeded_ok && partial_ok && row.parallel_identical;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_online_placement.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  bench::print_header("Online placement: static vs online policy vs kernel tiering",
                      "online migration subsystem (docs/online.md)");

  const online::OnlinePolicyConfig policy;  // defaults == configs/online_policy.ini
  const auto sys = *memsim::paper_system(6);

  struct AppSpec {
    const char* name;
    bool steady;
  };
  const std::vector<AppSpec> specs = {
      {"phase-shift", false}, {"minife", true},       {"minimd", true},
      {"lulesh", true},       {"hpcg", true},         {"cloverleaf3d", true},
  };

  std::printf("%-14s %10s %10s %10s %10s %6s %8s %9s %4s  %s\n", "app", "static(s)",
              "online(s)", "seeded(s)", "tiering(s)", "moves", "partial", "moved(MB)",
              "par", "bound");
  std::vector<Row> rows;
  bool all_pass = true;
  bool parallel_identical = true;
  for (const auto& spec : specs) {
    const runtime::Workload w = apps::make_app(spec.name);
    const auto row = run_app(spec.name, w, sys, policy, spec.steady);
    if (!row) {
      std::printf("%-14s failed: %s\n", spec.name, row.error().c_str());
      all_pass = false;
      continue;
    }
    rows.push_back(*row);
    std::printf("%-14s %10.3f %10.3f %10.3f %10.3f %6llu %8llu %9.1f %4s  %s\n",
                row->app.c_str(), row->static_s, row->online_s, row->seeded_s,
                row->tiering_s, static_cast<unsigned long long>(row->migrations),
                static_cast<unsigned long long>(row->partial), row->migrated_mb,
                row->parallel_identical ? "ok" : "DIFF",
                row->pass ? (row->steady ? "within hysteresis" : "beats static")
                          : "VIOLATED");
    all_pass = all_pass && row->pass;
    parallel_identical = parallel_identical && row->parallel_identical;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"online_placement\",\n");
  std::fprintf(out, "  \"hysteresis\": %.6g,\n", policy.hysteresis);
  std::fprintf(out, "  \"all_pass\": %s,\n", all_pass ? "true" : "false");
  std::fprintf(out, "  \"parallel_identical\": %s,\n", parallel_identical ? "true" : "false");
  std::fprintf(out, "  \"apps\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"app\": \"%s\", \"steady\": %s, \"static_s\": %.6f, "
                 "\"online_s\": %.6f, \"seeded_s\": %.6f, \"kernel_tiering_s\": %.6f, "
                 "\"migrations\": %llu, \"migrations_partial\": %llu, "
                 "\"migrations_cancelled\": %llu, "
                 "\"migrated_mb\": %.1f, \"migration_ms\": %.3f, "
                 "\"parallel_identical\": %s, \"pass\": %s}%s\n",
                 r.app.c_str(), r.steady ? "true" : "false", r.static_s, r.online_s,
                 r.seeded_s, r.tiering_s, static_cast<unsigned long long>(r.migrations),
                 static_cast<unsigned long long>(r.partial),
                 static_cast<unsigned long long>(r.cancelled), r.migrated_mb,
                 r.migration_ms, r.parallel_identical ? "true" : "false",
                 r.pass ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!all_pass) {
    std::fprintf(stderr, "error: online placement acceptance bound violated\n");
    return 1;
  }
  return 0;
}
