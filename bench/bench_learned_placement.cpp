// Learned placement benchmark: the trained ranking policy vs the greedy
// density knapsack, replayed through memsim (docs/learned.md).
//
// Trains the pairwise ranker on memsim-labelled perturbations of the
// five Fig. 6 mini-apps plus the adversarial large-hot synthetic, then
// compares end-to-end production runtimes under both policies at the
// same 12 GB DRAM budget.
//
// Acceptance (checked here and by ci.sh):
//   - on every Fig. 6 app the learned policy must match or beat greedy
//     (total_ns within the 0.1% tie tolerance);
//   - on large-hot — where greedy's density-per-byte ranking demotes the
//     hottest object — the learned policy must be strictly better.
// The measured numbers land in BENCH_learned_placement.json; a violated
// bound makes the binary exit nonzero.
//
// Usage: bench_learned_placement [--out FILE]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ecohmem/learn/corpus.hpp"
#include "ecohmem/learn/model.hpp"
#include "ecohmem/learn/policy.hpp"

using namespace ecohmem;

namespace {

/// Fig. 6 apps may not regress beyond this relative total_ns tolerance
/// (covers float noise when both policies pick the same DRAM set).
constexpr double kTieTolerance = 1e-3;

struct Row {
  std::string app;
  bool adversarial = false;
  double greedy_s = 0.0;
  double learned_s = 0.0;
  double speedup = 0.0;  ///< greedy_ns / learned_ns
  bool pass = false;
};

double seconds(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

/// The same per-tier config run_workflow synthesizes internally.
advisor::AdvisorConfig make_config(const memsim::MemorySystem& sys, Bytes dram_limit,
                                   double store_coef) {
  advisor::AdvisorConfig config;
  for (std::size_t i = 0; i < sys.tier_count(); ++i) {
    advisor::TierPolicy policy;
    policy.name = sys.tier(i).name();
    policy.limit = i == 0 ? dram_limit : sys.tier(i).capacity();
    policy.load_coef = 1.0;
    policy.store_coef = store_coef;
    policy.order = static_cast<int>(i);
    policy.fallback = i == sys.fallback_index();
    config.tiers.push_back(std::move(policy));
  }
  return config;
}

Expected<Row> run_app(const std::string& name, const memsim::MemorySystem& sys,
                      const learn::Model& model, Bytes dram_limit, double store_coef,
                      bool adversarial) {
  const runtime::Workload w = apps::make_app(name);

  core::WorkflowOptions opt;
  opt.dram_limit = dram_limit;
  opt.store_coef = store_coef;
  const auto workflow = core::run_workflow(w, sys, opt);
  if (!workflow) return unexpected(workflow.error());

  const auto config = make_config(sys, dram_limit, store_coef);
  const auto learned = learn::place_by_ranker(workflow->analysis, config, model);
  if (!learned) return unexpected(learned.error());
  const auto learned_run = core::run_with_placement(w, sys, *learned, dram_limit);
  if (!learned_run) return unexpected(learned_run.error());

  Row row;
  row.app = name;
  row.adversarial = adversarial;
  row.greedy_s = seconds(workflow->production_metrics.total_ns);
  row.learned_s = seconds(learned_run->total_ns);
  row.speedup = row.learned_s > 0.0 ? row.greedy_s / row.learned_s : 0.0;
  row.pass = adversarial ? row.learned_s < row.greedy_s
                         : row.learned_s <= row.greedy_s * (1.0 + kTieTolerance);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_learned_placement.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  bench::print_header("Learned placement: trained ranker vs greedy density knapsack",
                      "learning-to-rank advisor subsystem (docs/learned.md)");

  const auto sys = *memsim::paper_system(6);
  const Bytes dram_limit = 12 * bench::kGiB;

  const std::vector<std::string> corpus_apps = {"minife", "minimd",       "lulesh",
                                                "hpcg",   "cloverleaf3d", "large-hot"};
  learn::CorpusOptions copt;
  copt.dram_limit = dram_limit;
  copt.store_coef = bench::kStoreCoef;
  std::printf("building training corpus (%zu apps)...\n", corpus_apps.size());
  const auto corpus = learn::build_corpus(corpus_apps, sys, copt);
  if (!corpus) {
    std::fprintf(stderr, "error: %s\n", corpus->pairs.empty() ? corpus.error().c_str()
                                                              : corpus.error().c_str());
    return 1;
  }

  learn::Model model;
  model.corpus = corpus->apps;
  const auto stats = learn::train_pairwise(model, corpus->pairs);
  if (!stats) {
    std::fprintf(stderr, "error: %s\n", stats.error().c_str());
    return 1;
  }
  std::printf("trained on %zu pairs (%zu memsim probes), pair accuracy %.1f%%\n\n",
              stats->pairs, corpus->sim_runs, stats->pair_accuracy * 100.0);

  struct AppSpec {
    const char* name;
    bool adversarial;
  };
  const std::vector<AppSpec> specs = {
      {"minife", false}, {"minimd", false},       {"lulesh", false},
      {"hpcg", false},   {"cloverleaf3d", false}, {"large-hot", true},
  };

  std::printf("%-14s %10s %10s %9s  %s\n", "app", "greedy(s)", "learned(s)", "speedup",
              "bound");
  std::vector<Row> rows;
  bool all_pass = true;
  for (const auto& spec : specs) {
    const auto row = run_app(spec.name, sys, model, dram_limit, bench::kStoreCoef,
                             spec.adversarial);
    if (!row) {
      std::printf("%-14s failed: %s\n", spec.name, row.error().c_str());
      all_pass = false;
      continue;
    }
    rows.push_back(*row);
    std::printf("%-14s %10.3f %10.3f %8.3fx  %s\n", row->app.c_str(), row->greedy_s,
                row->learned_s, row->speedup,
                row->pass ? (row->adversarial ? "strictly beats greedy" : "no worse")
                          : "VIOLATED");
    all_pass = all_pass && row->pass;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"learned_placement\",\n");
  std::fprintf(out, "  \"tie_tolerance\": %.6g,\n", kTieTolerance);
  std::fprintf(out, "  \"training_pairs\": %zu,\n", stats->pairs);
  std::fprintf(out, "  \"memsim_probes\": %zu,\n", corpus->sim_runs);
  std::fprintf(out, "  \"pair_accuracy\": %.4f,\n", stats->pair_accuracy);
  std::fprintf(out, "  \"model_hash\": \"%s\",\n", learn::model_content_hash(model).c_str());
  std::fprintf(out, "  \"all_pass\": %s,\n", all_pass ? "true" : "false");
  std::fprintf(out, "  \"apps\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"app\": \"%s\", \"adversarial\": %s, \"greedy_s\": %.6f, "
                 "\"learned_s\": %.6f, \"speedup_vs_greedy\": %.4f, \"pass\": %s}%s\n",
                 r.app.c_str(), r.adversarial ? "true" : "false", r.greedy_s, r.learned_s,
                 r.speedup, r.pass ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!all_pass) {
    std::fprintf(stderr, "error: learned placement acceptance bound violated\n");
    return 1;
  }
  return 0;
}
