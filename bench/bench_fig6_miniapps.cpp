// Fig. 6: "Performance using different profiling metrics and limits on
// DRAM usage in HMem Advisor, for two PMem-DRAM memory ratios."
//
// Five mini-applications x {Loads, Loads+stores} x DRAM limits
// {4, 8, 12 GB} x {PMem-6, PMem-2}, plus the kernel-level page-migration
// and ProfDP (best of four variants) comparison points, all as speedup
// over the memory-mode baseline of the same memory configuration.
//
// Expected shape (paper): all five beat memory mode at 12 GB on PMem-6;
// MiniFE ~2.2x and HPCG ~1.7x even at reduced DRAM; CloverLeaf3D gains a
// further ~9%/~19% (8/12 GB) from the store channel and loses ~10% at
// 4 GB; MiniMD/LULESH small wins; PMem-2 lowers everything; kernel
// tiering sits between memory mode and ecoHMEM for MiniFE/HPCG; ProfDP
// is comparable to ecoHMEM.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "ecohmem/baselines/kernel_tiering.hpp"
#include "ecohmem/baselines/profdp.hpp"

using namespace ecohmem;

namespace {

void run_app(const std::string& name, int pmem_dimms) {
  const auto sys = *memsim::paper_system(pmem_dimms);
  const runtime::Workload w = apps::make_app(name);

  const auto baseline = core::run_memory_mode(w, sys);
  if (!baseline) {
    std::printf("%-14s baseline failed: %s\n", name.c_str(), baseline.error().c_str());
    return;
  }

  std::printf("%-14s", name.c_str());
  for (const double store_coef : {0.0, bench::kStoreCoef}) {
    for (const Bytes dram : {4 * bench::kGiB, 8 * bench::kGiB, 12 * bench::kGiB}) {
      const auto run = bench::run_config(
          w, sys, "", dram, store_coef, /*bw_aware=*/false);
      if (run.ok) {
        std::printf(" %5.2f", run.speedup);
      } else {
        std::printf("   ERR");
      }
    }
  }

  // Kernel-level page migration (tiering-0.71 model).
  {
    baselines::KernelTieringMode tiering(&sys, 0, sys.fallback_index());
    runtime::ExecutionEngine engine(&sys, {});
    const auto run = engine.run(w, tiering);
    std::printf("  %5.2f", run ? run->speedup_over(*baseline) : 0.0);
  }

  // ProfDP: four variants, report the best (as the paper does).
  {
    baselines::ProfDPOptions popt;
    popt.dram_limit = 12 * bench::kGiB;
    const auto variants = baselines::profdp_placements(w, sys, {}, popt);
    double best = 0.0;
    std::string best_name = "n/a";
    if (variants) {
      for (const auto& v : *variants) {
        const auto run = core::run_with_placement(w, sys, v.placement, popt.dram_limit);
        if (run && run->speedup_over(*baseline) > best) {
          best = run->speedup_over(*baseline);
          best_name = v.name;
        }
      }
    }
    std::printf("  %5.2f (%s)\n", best, best_name.c_str());
  }
}

}  // namespace

int main() {
  bench::print_header("bench_fig6_miniapps",
                      "Fig. 6 (mini-app speedups over memory mode, all configurations)");
  const std::vector<std::string> apps = {"minife", "minimd", "lulesh", "hpcg", "cloverleaf3d"};

  for (const int dimms : {6, 2}) {
    std::printf("\n--- PMem-%d ---\n", dimms);
    std::printf("%-14s %s %s  %s  %s\n", "", "L:4G   8G   12G ", "LS:4G  8G   12G ", "tier ",
                "profdp-best");
    for (const auto& app : apps) run_app(app, dimms);
  }
  return 0;
}
