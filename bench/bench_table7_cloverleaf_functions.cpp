// Table VII: "Function breakdown of relative average IPC and load access
// latency of CloverLeaf3D with respect to memory mode."
//
// For every CloverLeaf3D kernel, IPC and average load latency of the
// FlexMalloc (Loads+stores, 12 GB) run as a percentage of the
// memory-mode value. Expected shape: functions whose objects land in
// DRAM show latency < 100% and IPC > 100%; functions whose objects stay
// in PMem show the opposite (the paper's first vs third row groups).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace ecohmem;

int main() {
  bench::print_header("bench_table7_cloverleaf_functions",
                      "Table VII (CloverLeaf3D per-function IPC / latency vs memory mode)");

  const auto sys = *memsim::paper_system(6);
  const runtime::Workload w = apps::make_cloverleaf3d();

  const auto baseline = core::run_memory_mode(w, sys);
  core::WorkflowOptions opt;
  opt.dram_limit = 12 * bench::kGiB;
  opt.store_coef = bench::kStoreCoef;
  const auto eco = core::run_workflow(w, sys, opt);
  if (!baseline || !eco) {
    std::printf("run failed\n");
    return 1;
  }

  struct Row {
    std::string function;
    double ipc_pct;
    double lat_pct;
  };
  std::vector<Row> rows;
  for (const auto& base_fn : baseline->functions) {
    const auto* eco_fn = eco->production_metrics.find_function(base_fn.function);
    if (eco_fn == nullptr || base_fn.ipc() <= 0.0 || base_fn.avg_load_latency_ns() <= 0.0) {
      continue;
    }
    rows.push_back(Row{base_fn.function, eco_fn->ipc() / base_fn.ipc() * 100.0,
                       eco_fn->avg_load_latency_ns() / base_fn.avg_load_latency_ns() * 100.0});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.ipc_pct > b.ipc_pct; });

  std::printf("%-32s %10s %12s\n", "Function", "IPC(%)", "Latency(%)");
  for (const auto& r : rows) {
    std::printf("%-32s %10.1f %12.1f\n", r.function.c_str(), r.ipc_pct, r.lat_pct);
  }
  std::printf("\n(expected: inverse correlation — improved functions pair IPC>100%% with "
              "latency<100%%, penalized ones the opposite)\n");
  return 0;
}
