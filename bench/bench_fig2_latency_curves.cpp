// Fig. 2: "Bandwidth vs. latency with read-only (R) and read-write (1R1W)
// memory traffic for DDR4 DRAM and Intel PMem using MLC."
//
// The MLC role is played by sweeping an offered load through the tier
// latency models. Expected shape: flat-ish latencies at low bandwidth, a
// widening DRAM/PMem gap as bandwidth grows, PMem diverging first
// (~2x at 22 GB/s read-only), and 1R1W hitting PMem's write ceiling far
// earlier than DRAM's.

#include <cstdio>

#include "bench_common.hpp"
#include "ecohmem/memsim/tier.hpp"

using namespace ecohmem;

int main() {
  bench::print_header("bench_fig2_latency_curves", "Fig. 2 (MLC latency-vs-bandwidth curves)");

  const memsim::MemoryTier dram(memsim::ddr4_dram_spec());
  const memsim::MemoryTier pmem6(memsim::optane_pmem_spec(6));

  std::printf("%8s %12s %12s %14s %14s\n", "GB/s", "DRAM R(ns)", "PMem R(ns)", "DRAM 1R1W(ns)",
              "PMem 1R1W(ns)");
  for (double gbs = 2.0; gbs <= 26.0; gbs += 2.0) {
    // 1R1W: half the offered bytes are writes.
    const double r = dram.read_latency_at(gbs, 0.0);
    const double p = pmem6.read_latency_at(gbs, 0.0);
    const double r_rw = dram.read_latency_at(gbs / 2.0, gbs / 2.0);
    const double p_rw = pmem6.read_latency_at(gbs / 2.0, gbs / 2.0);
    std::printf("%8.1f %12.1f %12.1f %14.1f %14.1f\n", gbs, r, p, r_rw, p_rw);
  }

  std::printf("\ncalibration anchors (paper: DRAM 90/117 ns, PMem 185/239 ns at 22 GB/s):\n");
  std::printf("  DRAM idle %.1f ns, at 22 GB/s %.1f ns\n", dram.read_latency_ns(0.0),
              dram.read_latency_at(22.0, 0.0));
  std::printf("  PMem idle %.1f ns, at 22 GB/s %.1f ns (%.2fx DRAM)\n",
              pmem6.read_latency_ns(0.0), pmem6.read_latency_at(22.0, 0.0),
              pmem6.read_latency_at(22.0, 0.0) / dram.read_latency_at(22.0, 0.0));
  return 0;
}
