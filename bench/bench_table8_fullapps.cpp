// Table VIII: "Speedup of OpenFOAM and LAMMPS w.r.t. memory mode" —
// the production applications, main algorithm vs bandwidth-aware
// algorithm (§VIII-C).
//
// Expected shape: OpenFOAM's main algorithm *fails* (~0.5x, a 2x
// slowdown) and the bandwidth-aware algorithm recovers a ~6% win;
// LAMMPS sits a few percent below memory mode under both algorithms
// (slowdown < 4%). DRAM limits follow the paper: OpenFOAM 11 GB;
// LAMMPS 14 GB (main) / 16 GB (bandwidth-aware, which is less
// aggressive in filling DRAM).

#include <cstdio>

#include "bench_common.hpp"

using namespace ecohmem;

int main() {
  bench::print_header("bench_table8_fullapps",
                      "Table VIII (OpenFOAM / LAMMPS, main vs bandwidth-aware)");

  const auto sys = *memsim::paper_system(6);

  std::printf("%-10s %-22s %8s   %s\n", "app", "algorithm", "speedup", "paper");

  {
    const runtime::Workload w = apps::make_openfoam();
    const auto main_run =
        bench::run_config(w, sys, "main", 11 * bench::kGiB, 0.0, false);
    const auto bw_run =
        bench::run_config(w, sys, "bw-aware", 11 * bench::kGiB, 0.0, true);
    std::printf("%-10s %-22s %8.2f   0.50 (2x slowdown)\n", "openfoam", "main (11GB)",
                main_run.speedup);
    std::printf("%-10s %-22s %8.2f   1.061\n", "openfoam", "bandwidth-aware (11GB)",
                bw_run.speedup);
  }
  {
    const runtime::Workload w = apps::make_lammps();
    const auto main_run =
        bench::run_config(w, sys, "main", 14 * bench::kGiB, 0.0, false);
    const auto bw_run =
        bench::run_config(w, sys, "bw-aware", 16 * bench::kGiB, 0.0, true);
    std::printf("%-10s %-22s %8.2f   ~0.96-0.99\n", "lammps", "main (14GB)", main_run.speedup);
    std::printf("%-10s %-22s %8.2f   ~0.96-0.99\n", "lammps", "bandwidth-aware (16GB)",
                bw_run.speedup);
  }

  // LULESH rides along (§VIII-C: bandwidth-aware lifts it from 7% to 19%).
  {
    const runtime::Workload w = apps::make_lulesh();
    const auto main_run = bench::run_config(w, sys, "main", 12 * bench::kGiB, 0.0, false);
    const auto bw_run = bench::run_config(w, sys, "bw", 12 * bench::kGiB, 0.0, true);
    std::printf("%-10s %-22s %8.2f   1.07\n", "lulesh", "main (12GB)", main_run.speedup);
    std::printf("%-10s %-22s %8.2f   1.19\n", "lulesh", "bandwidth-aware (12GB)",
                bw_run.speedup);
  }
  return 0;
}
