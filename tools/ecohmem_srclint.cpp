// ecohmem-srclint — source-level determinism and concurrency-contract
// lint (the ecohmem::check source rules; see docs/linting.md).
//
// ecohmem-lint checks the pipeline's *artifacts*; this tool checks the
// *source tree* that produces them: banned nondeterministic random
// sources, wall-clock reads in pipeline code, unordered-container
// iteration in serialization paths, and raw std::mutex where the ranked
// lockdep wrappers are required.
//
// Usage:
//   ecohmem-srclint [--root <dir>] [--json] [--quiet]
//                   [--disable id1,id2] [--list-rules] [--max-per-rule N]
//
// Exit status: 0 = clean, 1 = findings, 2 = usage error (including
// unknown rule ids in --disable).

#include <cstdio>
#include <iostream>

#include "cli_common.hpp"
#include "ecohmem/check/srclint.hpp"
#include "ecohmem/common/strings.hpp"

using namespace ecohmem;

namespace {

int list_rules() {
  for (const auto& rule : check::srclint_rules()) {
    std::printf("%-22s %s\n", std::string(rule.id).c_str(), std::string(rule.description).c_str());
  }
  return 0;
}

/// Strict pass over argv, mirroring ecohmem-lint: a linter holds its own
/// command line to the same standard as the code it checks.
bool validate_usage(int argc, char** argv) {
  static constexpr std::string_view kValueFlags[] = {"root", "disable", "max-per-rule"};
  static constexpr std::string_view kBoolFlags[] = {"json", "list-rules", "quiet", "help"};
  const auto is_one_of = [](std::string_view name, const auto& set) {
    for (const auto& f : set) {
      if (f == name) return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      std::fprintf(stderr, "error: unexpected argument '%s' (flags only; see --help)\n", argv[i]);
      return false;
    }
    const auto name = arg.substr(2);
    if (is_one_of(name, kBoolFlags)) continue;
    if (is_one_of(name, kValueFlags)) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --%s requires a value\n", std::string(name).c_str());
        return false;
      }
      ++i;
      continue;
    }
    std::fprintf(stderr, "error: unknown option '--%s' (see --help)\n", std::string(name).c_str());
    return false;
  }
  return true;
}

/// Unknown ids in --disable are a usage error, not a silent no-op: a
/// typo like --disable det-rnd must not re-enable the rule in CI.
bool validate_disable_ids(const std::vector<std::string>& ids) {
  bool ok = true;
  for (const auto& id : ids) {
    if (check::is_srclint_rule(id)) continue;
    std::fprintf(stderr, "error: --disable: unknown rule id '%s'\n", id.c_str());
    ok = false;
  }
  if (!ok) {
    std::fprintf(stderr, "valid rule ids:");
    for (const auto& rule : check::srclint_rules()) {
      std::fprintf(stderr, " %s", std::string(rule.id).c_str());
    }
    std::fprintf(stderr, "\n");
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (!validate_usage(argc, argv)) return 2;
  const cli::Args args(argc, argv, {"json", "list-rules", "quiet", "help"});
  if (args.has("help")) {
    std::printf(
        "usage: ecohmem-srclint [--root <dir>] [--json] [--quiet]\n"
        "                       [--disable id1,id2] [--list-rules] [--max-per-rule N]\n"
        "Scans <root>/src and <root>/tools (default root: .) for determinism-\n"
        "and concurrency-contract violations. Suppress one finding with a\n"
        "'// srclint-ok: <rule-id> (reason)' comment on or above the line.\n"
        "exit: 0 clean, 1 findings, 2 usage error\n");
    return 0;
  }
  if (args.has("list-rules")) return list_rules();

  check::SrclintOptions options;
  if (args.has("disable")) {
    options.disabled_rules = strings::split(args.get("disable"), ',');
    if (!validate_disable_ids(options.disabled_rules)) return 2;
  }
  if (args.has("max-per-rule")) {
    const auto n = args.get_int_in_range("max-per-rule", 64, 0, 1'000'000);
    if (!n) {
      std::fprintf(stderr, "error: %s\n", n.error().c_str());
      return 2;
    }
    options.max_per_rule = static_cast<std::size_t>(*n);
  }

  const std::string root = args.has("root") ? args.get("root") : ".";
  const auto result = check::srclint_scan_tree(root, options);
  if (!result) {
    std::fprintf(stderr, "error: %s\n", result.error().c_str());
    return 2;
  }

  if (args.has("json")) {
    check::write_json(std::cout, result->diagnostics);
  } else {
    check::write_text(std::cout, result->diagnostics);
    if (!args.has("quiet")) {
      std::printf("%zu files scanned, %zu rules run, %zu skipped: %zu findings\n",
                  result->files_scanned, result->rules_run.size(), result->rules_skipped.size(),
                  result->diagnostics.size());
    }
  }
  return result->ok() ? 0 : 1;
}
