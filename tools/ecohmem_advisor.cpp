// ecohmem-advisor — the HMem Advisor stage as a command-line tool
// (the Paramedir + Advisor boxes of Fig. 1).
//
// Reads a trace file written by ecohmem-profile, aggregates it, runs the
// density knapsack (optionally followed by the bandwidth-aware pass of
// §VII) and writes the FlexMalloc placement report.
//
// Usage:
//   ecohmem-advisor --trace <trace.trc> --out <report.txt>
//                   [--config <advisor.ini>] [--dram-limit 12GB]
//                   [--store-coef 0.125] [--bandwidth-aware]
//                   [--peak-pmem-bw GBS]
//                   [--policy greedy|learned] [--model <model.ehm>]
//
// Without --config, a two-tier dram/pmem config is synthesized from
// --dram-limit and --store-coef. The report is written in BOM format
// (the trace carries no symbol tables, so the human-readable format is
// not available from this tool).

#include <cstdio>

#include "cli_common.hpp"
#include "ecohmem/advisor/bandwidth_aware.hpp"
#include "ecohmem/advisor/knapsack.hpp"
#include "ecohmem/advisor/report.hpp"
#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/analyzer/site_report.hpp"
#include "ecohmem/learn/model.hpp"
#include "ecohmem/learn/policy.hpp"
#include "ecohmem/trace/trace_reader.hpp"

using namespace ecohmem;

int main(int argc, char** argv) {
  const cli::Args args(argc, argv, {"bandwidth-aware", "dump-sites", "salvage", "help"});
  if (args.has("help") || !args.has("trace") || !args.has("out")) {
    std::printf(
        "usage: ecohmem-advisor --trace <trace.trc> --out <report.txt>\n"
        "                       [--config <advisor.ini>] [--dram-limit 12GB]\n"
        "                       [--store-coef 0.125] [--bandwidth-aware]\n"
        "                       [--peak-pmem-bw GBS] [--dump-sites] [--csv <file>]\n"
        "                       [--threads N] [--salvage] [--min-coverage F]\n"
        "                       [--policy greedy|learned] [--model <model.ehm>]\n"
        "  --threads N decodes v3 trace blocks and aggregates samples on N\n"
        "  workers; the analysis is bit-identical to --threads 1.\n"
        "  --salvage recovers what it can from a corrupt/truncated trace and\n"
        "  fails only when coverage drops below --min-coverage (default 0.9).\n"
        "  --policy learned ranks sites with a trained model (ecohmem-train)\n"
        "  instead of the greedy density heuristic; the report gains a\n"
        "  '# model = <hash>' header stamp (docs/learned.md).\n");
    return args.has("help") ? 0 : 1;
  }

  const std::string policy = args.get("policy", "greedy");
  if (policy != "greedy" && policy != "learned") {
    return cli::fail_usage("--policy must be 'greedy' or 'learned', got '" + policy + "'");
  }
  if (policy == "learned" && !args.has("model")) {
    return cli::fail_usage("--policy learned requires --model <model.ehm>");
  }
  if (policy != "learned" && args.has("model")) {
    return cli::fail_usage("--model is only meaningful with --policy learned");
  }
  // An unusable --model value (missing, truncated or corrupt file) is a
  // usage error like any other invalid flag value: exit 2, with the
  // loader's offset-bearing message (docs/cli.md).
  learn::Model model;
  if (policy == "learned") {
    auto loaded = learn::load_model(args.get("model"));
    if (!loaded) return cli::fail_usage("--model " + args.get("model") + ": " + loaded.error());
    model = std::move(*loaded);
  }

  const auto threads = args.get_int_in_range("threads", 1, 1, 256);
  if (!threads) return cli::fail(threads.error());
  const double min_coverage = args.get_double("min-coverage", 0.9);
  if (min_coverage < 0.0 || min_coverage > 1.0) {
    return cli::fail("--min-coverage must be in [0, 1]");
  }

  // The trace is mmapped and decoded block-wise (in parallel for v3
  // traces when --threads > 1); v1/v2 traces take the same path through
  // a single virtual block. With --salvage a damaged trace is read
  // fail-soft and the analysis is stamped with its coverage.
  trace::TraceOpenOptions topt;
  topt.salvage = args.has("salvage");
  auto reader = trace::TraceReader::open(args.get("trace"), topt);
  if (!reader) return cli::fail_load(args.get("trace"), reader.error());
  const auto bundle = reader->read_all(static_cast<int>(*threads));
  if (!bundle) return cli::fail_load(args.get("trace"), bundle.error());

  if (reader->manifest().salvaged) {
    std::printf("%s\n", reader->manifest().summary().c_str());
    if (reader->manifest().coverage() < min_coverage) {
      return cli::fail("salvage coverage " +
                       std::to_string(reader->manifest().coverage() * 100.0) +
                       "% of " + args.get("trace") + " is below --min-coverage " +
                       std::to_string(min_coverage * 100.0) + "%");
    }
  }

  analyzer::AnalyzerOptions aopt;
  aopt.threads = static_cast<int>(*threads);
  aopt.coverage = bundle->coverage;
  const auto analysis = analyzer::analyze(bundle->trace, aopt);
  if (!analysis) return cli::fail(analysis.error());

  if (args.has("dump-sites")) {
    std::printf("%s", analyzer::site_table_to_string(*analysis, bundle->modules).c_str());
  }
  if (args.has("csv")) {
    if (const auto s = analyzer::save_site_csv(args.get("csv"), *analysis, bundle->modules);
        !s) {
      return cli::fail(s.error());
    }
  }

  advisor::AdvisorConfig config;
  if (args.has("config")) {
    const auto file = Config::load(args.get("config"));
    if (!file) return cli::fail(file.error());
    auto parsed = advisor::AdvisorConfig::from_config(*file);
    if (!parsed) return cli::fail(parsed.error());
    config = std::move(*parsed);
  } else {
    config = advisor::AdvisorConfig::dram_pmem(args.get_bytes("dram-limit", 12ull << 30),
                                               args.get_double("store-coef", 0.0));
  }

  auto placement = policy == "learned"
                       ? learn::place_by_ranker(*analysis, config, model)
                       : advisor::place_by_density(analysis->sites, config);
  if (!placement) return cli::fail(placement.error());
  if (policy == "learned") placement->model_stamp = learn::model_content_hash(model);

  std::size_t swaps = 0;
  std::size_t streaming = 0;
  if (args.has("bandwidth-aware")) {
    advisor::BandwidthAwareOptions bw;
    bw.peak_pmem_bw_gbs =
        args.get_double("peak-pmem-bw", analysis->observed_peak_bw_gbs);
    bw.dram_tier = config.tiers.front().name;
    bw.pmem_tier = config.fallback_tier().name;
    auto refined = advisor::place_bandwidth_aware(analysis->sites, *placement, config, bw);
    if (!refined) return cli::fail(refined.error());
    swaps = refined->swaps;
    streaming = refined->streaming_moved;
    *placement = std::move(refined->placement);
  }

  if (const auto s = advisor::save_report(args.get("out"), *placement,
                                          advisor::ReportFormat::kBom, bundle->modules);
      !s) {
    return cli::fail(s.error());
  }

  std::printf("analyzed %zu sites (%zu events); %s placement written to %s\n",
              analysis->sites.size(), bundle->trace.events.size(), policy.c_str(),
              args.get("out").c_str());
  if (policy == "learned") {
    std::printf("  model %s (%zu corpus apps)\n", placement->model_stamp.c_str(),
                model.corpus.size());
  }
  for (const auto& tier : config.tiers) {
    std::printf("  %-8s %10llu MB charged (limit %llu MB)\n", tier.name.c_str(),
                static_cast<unsigned long long>(placement->footprint_in(tier.name) >> 20),
                static_cast<unsigned long long>(tier.limit >> 20));
  }
  if (args.has("bandwidth-aware")) {
    std::printf("  bandwidth-aware: %zu swaps, %zu Streaming-D moves (observed peak %.2f GB/s)\n",
                swaps, streaming, analysis->observed_peak_bw_gbs);
  }
  return 0;
}
