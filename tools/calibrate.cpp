// Developer tool: prints the calibration summary of every application
// model against the paper's published targets (Table VI and Fig. 6 /
// Table VIII). Used while tuning the workload models; kept in the repo so
// model changes can be re-validated quickly.

#include <cstdio>
#include <string>
#include <vector>

#include "ecohmem/apps/apps.hpp"
#include "ecohmem/baselines/kernel_tiering.hpp"
#include "ecohmem/baselines/profdp.hpp"
#include "ecohmem/core/ecohmem.hpp"

using namespace ecohmem;

namespace {

constexpr Bytes GiB = 1024ull * 1024 * 1024;

void report_app(const std::string& name) {
  const runtime::Workload w = apps::make_app(name);
  auto system = memsim::paper_system(6);
  if (!system) {
    std::printf("%s: system error: %s\n", name.c_str(), system->tier_count() ? "?" : "init");
    return;
  }

  auto baseline = core::run_memory_mode(w, *system);
  if (!baseline) {
    std::printf("%-14s memory-mode FAILED: %s\n", name.c_str(), baseline.error().c_str());
    return;
  }
  std::printf("%-14s memmode: %7.1fs  membound=%4.1f%%  hit=%4.1f%%  heap=%5.1fGiB\n",
              name.c_str(), static_cast<double>(baseline->total_ns) * 1e-9,
              baseline->memory_bound_fraction() * 100.0, baseline->dram_cache_hit_ratio * 100.0,
              static_cast<double>(w.heap_high_water) / static_cast<double>(GiB));

  struct Cfg {
    const char* label;
    Bytes dram;
    double store_coef;
    bool bw_aware;
  };
  // Loads+stores uses C_store = 0.125 (stores are sampled as 8-byte
  // instructions; a line carries 8 of them).
  const std::vector<Cfg> cfgs = {
      {"L 12G", 12 * GiB, 0.0, false},   {"L 8G", 8 * GiB, 0.0, false},
      {"L 4G", 4 * GiB, 0.0, false},     {"LS 12G", 12 * GiB, 0.125, false},
      {"LS 8G", 8 * GiB, 0.125, false},  {"LS 4G", 4 * GiB, 0.125, false},
      {"BW 12G", 12 * GiB, 0.0, true},   {"BWS 12G", 12 * GiB, 0.125, true},
  };
  std::printf("  %-14s", "");
  for (const auto& cfg : cfgs) {
    core::WorkflowOptions opt;
    opt.dram_limit = cfg.dram;
    opt.store_coef = cfg.store_coef;
    opt.bandwidth_aware = cfg.bw_aware;
    auto result = core::run_workflow(w, *system, opt);
    if (!result) {
      std::printf(" %s=ERR(%s)", cfg.label, result.error().c_str());
      continue;
    }
    std::printf(" %s=%.2f", cfg.label, result->speedup());
    if (result->production_metrics.oom_redirects > 0) {
      std::printf("(oom:%llu)",
                  static_cast<unsigned long long>(result->production_metrics.oom_redirects));
    }
  }
  std::printf("\n");
}

void dump_sites(const std::string& name, double store_coef, bool bw_aware) {
  const runtime::Workload w = apps::make_app(name);
  auto system = memsim::paper_system(6);
  core::WorkflowOptions opt;
  opt.dram_limit = name == "openfoam" ? 11 * GiB : 12 * GiB;
  opt.store_coef = store_coef;
  opt.bandwidth_aware = bw_aware;
  auto result = core::run_workflow(w, *system, opt);
  if (!result) {
    std::printf("workflow failed: %s\n", result.error().c_str());
    return;
  }
  std::printf("%s: speedup=%.3f  observed_peak=%.2f GB/s  swaps=%zu streamD=%zu\n", name.c_str(),
              result->speedup(), result->analysis.observed_peak_bw_gbs,
              result->bandwidth_aware ? result->bandwidth_aware->swaps : 0,
              result->bandwidth_aware ? result->bandwidth_aware->streaming_moved : 0);
  std::printf("%-34s %6s %9s %8s %8s %7s %7s %7s %6s %5s\n", "site", "allocs", "size",
              "loadM", "storeM", "dens", "allocBW", "execBW", "tier", "cat");
  for (const auto& s : result->analysis.sites) {
    const std::string& tier = result->placement.tier_of(s.stack);
    std::string cat = "-";
    if (result->bandwidth_aware) {
      for (const auto& c : result->bandwidth_aware->categories) {
        if (c.stack == s.stack) cat = advisor::to_string(c.category);
      }
    }
    std::string label = "?";
    for (const auto& site : w.sites) {
      if (site.stack == s.callstack) label = site.label;
    }
    std::printf("%-34s %6llu %9.2fG %7.1fM %7.1fM %7.3f %7.2f %7.2f %6s %5s\n", label.c_str(),
                static_cast<unsigned long long>(s.alloc_count),
                static_cast<double>(std::max(s.peak_live_bytes, s.max_size)) / 1e9,
                s.load_misses / 1e6, s.store_misses / 1e6, s.density(1.0, store_coef),
                s.alloc_time_system_bw_gbs, s.exec_time_system_bw_gbs, tier.c_str(),
                cat.c_str());
  }
}

void dump_kernels(const std::string& name) {
  const runtime::Workload w = apps::make_app(name);
  auto system = memsim::paper_system(6);
  const Bytes dram = name == "openfoam" ? 11 * GiB : 12 * GiB;

  auto memmode = core::run_memory_mode(w, *system);
  core::WorkflowOptions base_opt;
  base_opt.dram_limit = dram;
  auto base = core::run_workflow(w, *system, base_opt);
  core::WorkflowOptions bw_opt = base_opt;
  bw_opt.bandwidth_aware = true;
  auto bw = core::run_workflow(w, *system, bw_opt);
  if (!memmode || !base || !bw) {
    std::printf("run failed\n");
    return;
  }
  std::printf("%s kernels (seconds): memmode | base | bw-aware\n", name.c_str());
  for (const auto& f : memmode->functions) {
    const auto* fb = base->production_metrics.find_function(f.function);
    const auto* fw = bw->production_metrics.find_function(f.function);
    std::printf("  %-32s %8.1f %8.1f %8.1f   lat %5.0f %5.0f %5.0f\n", f.function.c_str(),
                cycles_to_ns(f.cycles) * 1e-9,
                fb != nullptr ? cycles_to_ns(fb->cycles) * 1e-9 : 0.0,
                fw != nullptr ? cycles_to_ns(fw->cycles) * 1e-9 : 0.0,
                f.avg_load_latency_ns(),
                fb != nullptr ? fb->avg_load_latency_ns() : 0.0,
                fw != nullptr ? fw->avg_load_latency_ns() : 0.0);
  }
}

void dump_baselines(const std::string& name) {
  const runtime::Workload w = apps::make_app(name);
  auto system = memsim::paper_system(6);
  auto memmode = core::run_memory_mode(w, *system);
  if (!memmode) {
    std::printf("memmode failed\n");
    return;
  }

  // Kernel tiering.
  baselines::KernelTieringMode tiering(&*system, 0, system->fallback_index());
  runtime::ExecutionEngine engine(&*system, {});
  auto tier_metrics = engine.run(w, tiering);

  // ProfDP best-of-4.
  baselines::ProfDPOptions popt;
  popt.dram_limit = 12 * GiB;
  auto variants = baselines::profdp_placements(w, *system, {}, popt);

  std::printf("%-14s tiering=%.2f (usable dram %.1f GiB, migrated %.0f GB)\n", name.c_str(),
              tier_metrics ? tier_metrics->speedup_over(*memmode) : 0.0,
              static_cast<double>(tiering.usable_dram()) / static_cast<double>(GiB),
              tiering.migrated_bytes() / 1e9);
  if (!variants) {
    std::printf("  profdp failed: %s\n", variants.error().c_str());
    return;
  }
  for (const auto& v : *variants) {
    auto run = core::run_with_placement(w, *system, v.placement, 12 * GiB);
    std::printf("  profdp %-14s %.2f\n", v.name.c_str(),
                run ? run->speedup_over(*memmode) : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  bool verbose = false;
  double store_coef = 0.125;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-v") {
      verbose = true;
    } else if (arg == "-k") {
      verbose = false;
      store_coef = -1.0;  // sentinel: kernel dump
    } else if (arg == "-b") {
      verbose = false;
      store_coef = -2.0;  // sentinel: baselines dump
    } else {
      names.emplace_back(arg);
    }
  }
  if (names.empty()) names = apps::app_names();
  for (const auto& name : names) {
    if (verbose) {
      dump_sites(name, store_coef, /*bw_aware=*/true);
    } else if (store_coef == -2.0) {
      dump_baselines(name);
    } else if (store_coef < 0.0) {
      dump_kernels(name);
    } else {
      report_app(name);
    }
  }
  return 0;
}
