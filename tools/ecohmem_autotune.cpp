// ecohmem-autotune — parallel search over Advisor configurations for an
// application model; prints the whole grid and the winner.
//
// Usage:
//   ecohmem-autotune --app <name> [--iterations N] [--parallelism P]

#include <cstdio>

#include "cli_common.hpp"
#include "ecohmem/apps/apps.hpp"
#include "ecohmem/core/autotune.hpp"

using namespace ecohmem;

int main(int argc, char** argv) {
  const cli::Args args(argc, argv, {"help"});
  if (args.has("help") || !args.has("app")) {
    std::printf("usage: ecohmem-autotune --app <name> [--iterations N] [--parallelism P]\n");
    return args.has("help") ? 0 : 1;
  }

  const auto iterations = args.get_int_in_range("iterations", 0, 0, 1'000'000);
  if (!iterations) return cli::fail(iterations.error());
  const auto parallelism = args.get_int_in_range("parallelism", 0, 0, 1024);
  if (!parallelism) return cli::fail(parallelism.error());

  apps::AppOptions app_opt;
  app_opt.iterations = static_cast<int>(*iterations);
  runtime::Workload workload;
  try {
    workload = apps::make_app(args.get("app"), app_opt);
  } catch (const std::exception& e) {
    return cli::fail(e.what());
  }
  const auto system = memsim::paper_system(6);
  if (!system) return cli::fail(system.error());

  const auto result =
      core::autotune(workload, *system, {}, static_cast<unsigned>(*parallelism));
  if (!result) return cli::fail(result.error());

  std::printf("%12s %10s %10s %10s\n", "dram", "C_store", "bw-aware", "speedup");
  for (const auto& c : result->all) {
    std::printf("%10lluGB %10.3f %10s %10.2f%s\n",
                static_cast<unsigned long long>(c.options.dram_limit >> 30),
                c.options.store_coef, c.options.bandwidth_aware ? "yes" : "no", c.speedup,
                c.ok ? "" : (" ERR " + c.error).c_str());
  }
  std::printf("\nbest: %llu GB, C_store=%.3f, bandwidth-aware=%s -> %.2fx over memory mode\n",
              static_cast<unsigned long long>(result->best.options.dram_limit >> 30),
              result->best.options.store_coef,
              result->best.options.bandwidth_aware ? "yes" : "no", result->best.speedup);
  return 0;
}
