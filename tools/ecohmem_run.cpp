// ecohmem-run — the production stage: runs an application model
// app-direct through FlexMalloc honoring a placement report, and
// compares against the memory-mode baseline.
//
// Usage:
//   ecohmem-run --app <name> --report <report.txt>
//               [--iterations N] [--dram-capacity 12GB] [--pmem-dimms 6]
//               [--threads N] [--online <policy.ini>]
//               [--from-report <report.txt>] [--migration-log <out.csv>]
//
// The report's BOM call stacks are matched against the application's
// module table (the "same optimized binary" requirement of §IV); the
// module layout is re-randomized ASLR-style to demonstrate that BOM
// matching is base-independent.
//
// --threads N > 1 replays the allocation stream on N worker threads
// (docs/threading.md); placement decisions, tier byte totals, OOM
// redirects and the simulated clock are identical to --threads 1 — with
// and without --online (the online state is sharded on object id, see
// docs/online.md). Batches that could exhaust a tier mid-flight (where
// OOM redirection would become order-dependent) are detected by a
// capacity guard and replayed in program order instead of fanning out.

#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>

#include "cli_common.hpp"
#include "ecohmem/apps/apps.hpp"
#include "ecohmem/core/ecohmem.hpp"
#include "ecohmem/flexmalloc/flexmalloc.hpp"
#include "ecohmem/online/policy_config.hpp"
#include "ecohmem/runtime/guidance.hpp"

using namespace ecohmem;

namespace {

/// Writes the run's migration events as CSV — one row per applied move,
/// a trailing `# summary` comment with the counter identities — the
/// artifact `ecohmem-lint --migration-log` validates (docs/linting.md).
bool write_migration_log(const std::string& path, const runtime::RunMetrics& metrics) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  std::fprintf(out, "at_ns,object,from_tier,to_tier,bytes,offset,partial\n");
  for (const auto& e : metrics.migration_events) {
    std::fprintf(out, "%lld,%zu,%zu,%zu,%llu,%llu,%d\n", static_cast<long long>(e.at),
                 e.object, e.from_tier, e.to_tier, static_cast<unsigned long long>(e.bytes),
                 static_cast<unsigned long long>(e.offset), e.partial ? 1 : 0);
  }
  std::fprintf(out, "# summary scheduled=%llu applied=%llu partial=%llu cancelled=%llu "
               "migrated_bytes=%llu\n",
               static_cast<unsigned long long>(metrics.migrations_scheduled),
               static_cast<unsigned long long>(metrics.migrations),
               static_cast<unsigned long long>(metrics.migrations_partial),
               static_cast<unsigned long long>(metrics.migrations_cancelled),
               static_cast<unsigned long long>(metrics.migrated_bytes));
  return std::fclose(out) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const cli::Args args(argc, argv, {"help"});
  if (args.has("help") || !args.has("app") || !args.has("report")) {
    std::printf(
        "usage: ecohmem-run --app <name> --report <report.txt>\n"
        "                   [--iterations N] [--dram-capacity 12GB] [--pmem-dimms 6]\n"
        "                   [--threads N] [--online <policy.ini>]\n"
        "                   [--from-report <report.txt>] [--migration-log <out.csv>]\n"
        "\n"
        "  --threads N        replay the allocation stream on N worker threads\n"
        "                     (1..256, default 1; results are thread-count independent —\n"
        "                     batches that could exhaust a tier replay in program order,\n"
        "                     and the online policy's state is sharded on object id)\n"
        "  --online F         enable the online placement policy from INI file F\n"
        "                     (docs/online.md; works at any --threads count)\n"
        "  --from-report R    seed the online policy from Advisor report R: objects at\n"
        "                     fast-guided sites start with mature hotness, stranded ones\n"
        "                     are promoted at the first evaluation (requires --online)\n"
        "  --migration-log F  write applied migrations as CSV to F (one row per move,\n"
        "                     trailing '# summary' line; lintable artifact)\n");
    return args.has("help") ? 0 : 1;
  }

  const auto iterations = args.get_int_in_range("iterations", 0, 0, 1'000'000);
  if (!iterations) return cli::fail(iterations.error());
  const auto pmem_dimms = args.get_int_in_range("pmem-dimms", 6, 1, 64);
  if (!pmem_dimms) return cli::fail(pmem_dimms.error());
  const auto threads = args.get_int_in_range("threads", 1, 1, 256);
  if (!threads) return cli::fail(threads.error());

  // Flag-combination rules (docs/cli.md): bad combinations are usage
  // errors (exit 2) with a one-line reason, uniformly.
  if (args.has("from-report") && !args.has("online")) {
    return cli::fail_usage("--from-report seeds the online policy and requires --online");
  }
  if (args.has("migration-log") && !args.has("online")) {
    return cli::fail_usage("--migration-log records online migrations and requires --online");
  }

  apps::AppOptions app_opt;
  app_opt.iterations = static_cast<int>(*iterations);
  runtime::Workload workload;
  try {
    workload = apps::make_app(args.get("app"), app_opt);
  } catch (const std::exception& e) {
    return cli::fail(e.what());
  }

  // Fresh ASLR bases: the production process is not the profiling one.
  Rng aslr_rng(0xA51);
  workload.modules->assign_bases(/*aslr=*/true, aslr_rng);

  const auto system = memsim::paper_system(static_cast<int>(*pmem_dimms));
  if (!system) return cli::fail(system.error());

  const auto report = flexmalloc::load_report(args.get("report"), *workload.modules);
  if (!report) return cli::fail_load(args.get("report"), report.error());

  auto fm_heaps = std::vector<flexmalloc::HeapSpec>{
      {"dram", args.get_bytes("dram-capacity", 12ull << 30)},
      {"pmem", system->tier(system->fallback_index()).capacity()}};
  // The match cache pays off when many threads hammer the same hot call
  // stacks; it changes overhead accounting but never placement. Enabled
  // at every thread count so the configuration is thread-independent.
  flexmalloc::MatcherOptions matcher_options;
  matcher_options.match_cache = true;
  auto fm = flexmalloc::FlexMalloc::create(std::move(fm_heaps), *report,
                                           workload.symbols.get(), matcher_options);
  if (!fm) return cli::fail(fm.error());

  runtime::AppDirectMode mode(&*system, &*fm);
  runtime::EngineOptions engine_options;
  engine_options.replay_threads = static_cast<int>(*threads);

  std::optional<online::OnlinePolicyConfig> online_policy;
  if (args.has("online")) {
    auto policy = online::OnlinePolicyConfig::load(args.get("online"));
    if (!policy) return cli::fail(policy.error());
    online_policy = *policy;
    engine_options.online_policy = &*online_policy;
  }

  std::optional<runtime::GuidanceSeed> guidance;
  if (args.has("from-report")) {
    const auto seed_report = flexmalloc::load_report(args.get("from-report"), *workload.modules);
    if (!seed_report) return cli::fail_load(args.get("from-report"), seed_report.error());
    auto seed = runtime::GuidanceSeed::build(workload, *seed_report);
    if (!seed) return cli::fail(seed.error());
    guidance = std::move(*seed);
    engine_options.guidance = &*guidance;
  }

  runtime::ExecutionEngine engine(&*system, engine_options);

  // Real elapsed time of the simulator itself — reported to the user,
  // never fed into simulated timestamps or serialized artifacts.
  const auto wall_start = std::chrono::steady_clock::now();  // srclint-ok: det-wallclock
  const auto production = engine.run(workload, mode);
  const auto wall_end = std::chrono::steady_clock::now();  // srclint-ok: det-wallclock
  if (!production) return cli::fail(production.error());

  const auto baseline = core::run_memory_mode(workload, *system);
  if (!baseline) return cli::fail(baseline.error());

  if (args.has("migration-log") &&
      !write_migration_log(args.get("migration-log"), *production)) {
    return cli::fail("could not write migration log: " + args.get("migration-log"));
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();

  std::printf("%s app-direct via FlexMalloc:\n", workload.name.c_str());
  std::printf("  production : %8.3f s\n", static_cast<double>(production->total_ns) * 1e-9);
  std::printf("  memory mode: %8.3f s\n", static_cast<double>(baseline->total_ns) * 1e-9);
  std::printf("  speedup    : %8.2fx\n", production->speedup_over(*baseline));
  std::printf("  replay     : %lld thread(s), %.1f ms wall clock (host has %u cores)\n",
              *threads, wall_ms, std::thread::hardware_concurrency());
  std::printf("  matching   : %llu lookups, %llu hits, %llu OOM redirects\n",
              static_cast<unsigned long long>(fm->matcher().lookups()),
              static_cast<unsigned long long>(fm->matcher().hits()),
              static_cast<unsigned long long>(fm->oom_redirects()));
  for (const auto& s : fm->stats()) {
    std::printf("  tier %-6s %8llu allocations, high water %llu MB\n", s.tier.c_str(),
                static_cast<unsigned long long>(s.allocations),
                static_cast<unsigned long long>(s.high_water >> 20));
  }
  if (online_policy) {
    std::printf("  online     : %llu migrations (%llu partial, %llu cancelled), %llu MB moved, "
                "%.1f ms migration time\n",
                static_cast<unsigned long long>(production->migrations),
                static_cast<unsigned long long>(production->migrations_partial),
                static_cast<unsigned long long>(production->migrations_cancelled),
                static_cast<unsigned long long>(production->migrated_bytes >> 20),
                production->migration_ns * 1e-6);
  }
  if (guidance) {
    std::printf("  guidance   : %zu of %zu sites matched from %s\n", guidance->matched_sites,
                workload.sites.size(), args.get("from-report").c_str());
  }
  return 0;
}
