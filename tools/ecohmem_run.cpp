// ecohmem-run — the production stage: runs an application model
// app-direct through FlexMalloc honoring a placement report, and
// compares against the memory-mode baseline.
//
// Usage:
//   ecohmem-run --app <name> --report <report.txt>
//               [--iterations N] [--dram-capacity 12GB] [--pmem-dimms 6]
//
// The report's BOM call stacks are matched against the application's
// module table (the "same optimized binary" requirement of §IV); the
// module layout is re-randomized ASLR-style to demonstrate that BOM
// matching is base-independent.

#include <cstdio>

#include "cli_common.hpp"
#include "ecohmem/apps/apps.hpp"
#include "ecohmem/core/ecohmem.hpp"
#include "ecohmem/flexmalloc/flexmalloc.hpp"

using namespace ecohmem;

int main(int argc, char** argv) {
  const cli::Args args(argc, argv, {"help"});
  if (args.has("help") || !args.has("app") || !args.has("report")) {
    std::printf(
        "usage: ecohmem-run --app <name> --report <report.txt>\n"
        "                   [--iterations N] [--dram-capacity 12GB] [--pmem-dimms 6]\n");
    return args.has("help") ? 0 : 1;
  }

  apps::AppOptions app_opt;
  app_opt.iterations = static_cast<int>(args.get_double("iterations", 0.0));
  runtime::Workload workload;
  try {
    workload = apps::make_app(args.get("app"), app_opt);
  } catch (const std::exception& e) {
    return cli::fail(e.what());
  }

  // Fresh ASLR bases: the production process is not the profiling one.
  Rng aslr_rng(0xA51);
  workload.modules->assign_bases(/*aslr=*/true, aslr_rng);

  const auto system = memsim::paper_system(
      static_cast<int>(args.get_double("pmem-dimms", 6.0)));
  if (!system) return cli::fail(system.error());

  const auto report = flexmalloc::load_report(args.get("report"), *workload.modules);
  if (!report) return cli::fail(report.error());

  auto fm_heaps = std::vector<flexmalloc::HeapSpec>{
      {"dram", args.get_bytes("dram-capacity", 12ull << 30)},
      {"pmem", system->tier(system->fallback_index()).capacity()}};
  auto fm = flexmalloc::FlexMalloc::create(std::move(fm_heaps), *report,
                                           workload.symbols.get());
  if (!fm) return cli::fail(fm.error());

  runtime::AppDirectMode mode(&*system, &*fm);
  runtime::ExecutionEngine engine(&*system, {});
  const auto production = engine.run(workload, mode);
  if (!production) return cli::fail(production.error());

  const auto baseline = core::run_memory_mode(workload, *system);
  if (!baseline) return cli::fail(baseline.error());

  std::printf("%s app-direct via FlexMalloc:\n", workload.name.c_str());
  std::printf("  production : %8.3f s\n", static_cast<double>(production->total_ns) * 1e-9);
  std::printf("  memory mode: %8.3f s\n", static_cast<double>(baseline->total_ns) * 1e-9);
  std::printf("  speedup    : %8.2fx\n", production->speedup_over(*baseline));
  std::printf("  matching   : %llu lookups, %llu hits, %llu OOM redirects\n",
              static_cast<unsigned long long>(fm->matcher().lookups()),
              static_cast<unsigned long long>(fm->matcher().hits()),
              static_cast<unsigned long long>(fm->oom_redirects()));
  for (const auto& s : fm->stats()) {
    std::printf("  tier %-6s %8llu allocations, high water %llu MB\n", s.tier.c_str(),
                static_cast<unsigned long long>(s.allocations),
                static_cast<unsigned long long>(s.high_water >> 20));
  }
  return 0;
}
