// ecohmem-timeline — exports bandwidth timelines (the raw series behind
// Figs. 3 and 7) as CSV for plotting.
//
// Two sources:
//   --app <name>     run an application model and export its per-tier
//                    bandwidth series;
//   --trace <file>   stream an existing trace file and export the
//                    reconstructed system bandwidth series. The trace is
//                    never materialized in memory: events are decoded
//                    from a bounded buffer (TraceStreamer), so peak RSS
//                    stays flat however large the trace is.
//
// Usage:
//   ecohmem-timeline --app <name> --out <file.csv>
//                    [--mode memory|base|bw-aware] [--dram-limit 12GB]
//                    [--iterations N]
//   ecohmem-timeline --trace <trace.trc> --out <file.csv> [--bin-ms N]
//
// CSV columns: time_s, tier, gbs

#include <cstdio>
#include <fstream>

#include "cli_common.hpp"
#include "ecohmem/apps/apps.hpp"
#include "ecohmem/core/ecohmem.hpp"
#include "ecohmem/memsim/bandwidth_meter.hpp"
#include "ecohmem/trace/trace_reader.hpp"

using namespace ecohmem;

namespace {

/// The --trace path: reconstruct the system bandwidth timeline exactly
/// as the analyzer's prescan does (uncore readings authoritative, PEBS
/// fallback otherwise), streaming the file twice instead of loading it.
int run_trace_mode(const cli::Args& args) {
  const auto bin_ms = args.get_int_in_range("bin-ms", 10, 1, 60'000);
  if (!bin_ms) return cli::fail(bin_ms.error());

  trace::TraceOpenOptions topt;
  topt.salvage = args.has("salvage");
  auto streamer = trace::TraceStreamer::open(args.get("trace"), topt);
  if (!streamer) return cli::fail_load(args.get("trace"), streamer.error());
  if (streamer->manifest().salvaged) {
    std::printf("%s\n", streamer->manifest().summary().c_str());
  }

  // Pass 1: does the trace carry uncore readings? (Early-exits on the
  // first one in spirit; the streaming API visits all events, which is
  // still O(chunk) memory.)
  bool has_uncore = false;
  if (const auto s = streamer->for_each([&](const trace::Event& e) {
        has_uncore = has_uncore || std::holds_alternative<trace::UncoreBwEvent>(e);
      });
      !s.ok()) {
    return cli::fail_load(args.get("trace"), s.error());
  }

  // Pass 2: fold the traffic into fixed-width bins.
  memsim::BandwidthMeter meter(1, static_cast<Ns>(*bin_ms) * 1'000'000);
  if (const auto s = streamer->for_each([&](const trace::Event& e) {
        if (const auto* u = std::get_if<trace::UncoreBwEvent>(&e)) {
          const Ns t0 = u->time > u->period_ns ? u->time - u->period_ns : 0;
          meter.add(0, t0, u->time,
                    (u->read_gbs + u->write_gbs) * static_cast<double>(u->period_ns));
        } else if (const auto* smp = std::get_if<trace::SampleEvent>(&e)) {
          if (!has_uncore) {
            meter.add(0, smp->time, smp->time + 1,
                      smp->weight * static_cast<double>(kCacheLine));
          }
        }
      });
      !s.ok()) {
    return cli::fail_load(args.get("trace"), s.error());
  }

  std::ofstream out(args.get("out"));
  if (!out) return cli::fail("cannot open " + args.get("out"));
  out << "time_s,tier,gbs\n";
  std::size_t rows = 0;
  for (const auto& p : meter.series(0)) {
    out << static_cast<double>(p.time) * 1e-9 << ",system," << p.gbs << '\n';
    ++rows;
  }
  std::printf("%s: %llu events streamed (v%u, %s source), %zu bins -> %s\n",
              args.get("trace").c_str(),
              static_cast<unsigned long long>(streamer->event_count()), streamer->version(),
              has_uncore ? "uncore" : "pebs", rows, args.get("out").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const cli::Args args(argc, argv, {"salvage", "help"});
  const bool trace_mode = args.has("trace");
  if (args.has("help") || (!trace_mode && !args.has("app")) || !args.has("out")) {
    std::printf(
        "usage: ecohmem-timeline --app <name> --out <file.csv>\n"
        "                        [--mode memory|base|bw-aware] [--dram-limit 12GB]\n"
        "                        [--iterations N]\n"
        "       ecohmem-timeline --trace <trace.trc> --out <file.csv> [--bin-ms N]\n"
        "                        [--salvage]\n"
        "  --salvage streams whatever blocks are recoverable from a damaged\n"
        "  trace (prints the salvage summary) instead of failing outright.\n");
    return args.has("help") ? 0 : 1;
  }
  if (trace_mode) return run_trace_mode(args);

  const auto iterations = args.get_int_in_range("iterations", 0, 0, 1'000'000);
  if (!iterations) return cli::fail(iterations.error());

  apps::AppOptions app_opt;
  app_opt.iterations = static_cast<int>(*iterations);
  runtime::Workload workload;
  try {
    workload = apps::make_app(args.get("app"), app_opt);
  } catch (const std::exception& e) {
    return cli::fail(e.what());
  }
  const auto system = memsim::paper_system(6);
  if (!system) return cli::fail(system.error());

  const std::string mode = args.get("mode", "base");
  runtime::RunMetrics metrics;
  if (mode == "memory") {
    auto run = core::run_memory_mode(workload, *system);
    if (!run) return cli::fail(run.error());
    metrics = std::move(*run);
  } else if (mode == "base" || mode == "bw-aware") {
    core::WorkflowOptions opt;
    opt.dram_limit = args.get_bytes("dram-limit", 12ull << 30);
    opt.bandwidth_aware = mode == "bw-aware";
    auto run = core::run_workflow(workload, *system, opt);
    if (!run) return cli::fail(run.error());
    metrics = std::move(run->production_metrics);
  } else {
    return cli::fail("unknown mode '" + mode + "' (memory|base|bw-aware)");
  }

  std::ofstream out(args.get("out"));
  if (!out) return cli::fail("cannot open " + args.get("out"));
  out << "time_s,tier,gbs\n";
  std::size_t rows = 0;
  for (std::size_t t = 0; t < metrics.tier_bw.size(); ++t) {
    const std::string& tier = system->tier(t).name();
    for (const auto& p : metrics.tier_bw[t]) {
      out << static_cast<double>(p.time) * 1e-9 << ',' << tier << ',' << p.gbs << '\n';
      ++rows;
    }
  }
  std::printf("%s %s run: %.2f s simulated, %zu samples -> %s\n", args.get("app").c_str(),
              mode.c_str(), static_cast<double>(metrics.total_ns) * 1e-9, rows,
              args.get("out").c_str());
  return 0;
}
