// ecohmem-timeline — exports per-tier bandwidth timelines (the raw series
// behind Figs. 3 and 7) as CSV for plotting, for any app under any of
// the supported placement configurations.
//
// Usage:
//   ecohmem-timeline --app <name> --out <file.csv>
//                    [--mode memory|base|bw-aware] [--dram-limit 12GB]
//                    [--iterations N]
//
// CSV columns: time_s, tier, gbs

#include <cstdio>
#include <fstream>

#include "cli_common.hpp"
#include "ecohmem/apps/apps.hpp"
#include "ecohmem/core/ecohmem.hpp"

using namespace ecohmem;

int main(int argc, char** argv) {
  const cli::Args args(argc, argv, {"help"});
  if (args.has("help") || !args.has("app") || !args.has("out")) {
    std::printf(
        "usage: ecohmem-timeline --app <name> --out <file.csv>\n"
        "                        [--mode memory|base|bw-aware] [--dram-limit 12GB]\n"
        "                        [--iterations N]\n");
    return args.has("help") ? 0 : 1;
  }

  const auto iterations = args.get_int_in_range("iterations", 0, 0, 1'000'000);
  if (!iterations) return cli::fail(iterations.error());

  apps::AppOptions app_opt;
  app_opt.iterations = static_cast<int>(*iterations);
  runtime::Workload workload;
  try {
    workload = apps::make_app(args.get("app"), app_opt);
  } catch (const std::exception& e) {
    return cli::fail(e.what());
  }
  const auto system = memsim::paper_system(6);
  if (!system) return cli::fail(system.error());

  const std::string mode = args.get("mode", "base");
  runtime::RunMetrics metrics;
  if (mode == "memory") {
    auto run = core::run_memory_mode(workload, *system);
    if (!run) return cli::fail(run.error());
    metrics = std::move(*run);
  } else if (mode == "base" || mode == "bw-aware") {
    core::WorkflowOptions opt;
    opt.dram_limit = args.get_bytes("dram-limit", 12ull << 30);
    opt.bandwidth_aware = mode == "bw-aware";
    auto run = core::run_workflow(workload, *system, opt);
    if (!run) return cli::fail(run.error());
    metrics = std::move(run->production_metrics);
  } else {
    return cli::fail("unknown mode '" + mode + "' (memory|base|bw-aware)");
  }

  std::ofstream out(args.get("out"));
  if (!out) return cli::fail("cannot open " + args.get("out"));
  out << "time_s,tier,gbs\n";
  std::size_t rows = 0;
  for (std::size_t t = 0; t < metrics.tier_bw.size(); ++t) {
    const std::string& tier = system->tier(t).name();
    for (const auto& p : metrics.tier_bw[t]) {
      out << static_cast<double>(p.time) * 1e-9 << ',' << tier << ',' << p.gbs << '\n';
      ++rows;
    }
  }
  std::printf("%s %s run: %.2f s simulated, %zu samples -> %s\n", args.get("app").c_str(),
              mode.c_str(), static_cast<double>(metrics.total_ns) * 1e-9, rows,
              args.get("out").c_str());
  return 0;
}
