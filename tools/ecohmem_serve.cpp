// ecohmem-serve — the placement-as-a-service daemon and its loopback
// client (docs/serving.md is the wire-protocol spec, docs/cli.md the
// flag reference).
//
// Server mode (--listen) runs the multi-tenant advisor daemon on a
// unix-domain socket until SIGTERM/SIGINT, then drains gracefully.
// Client mode (--connect) opens one session: ingest a recorded trace,
// query a placement report, fetch the per-site CSV, print counters.
//
// Usage:
//   ecohmem-serve --listen <socket> [--max-sessions N] [--queue-blocks N]
//                 [--max-frame-bytes N]
//   ecohmem-serve --connect <socket> (--ingest <trace.trc> | --attach ID)
//                 [--block-events N] [--query <report.txt>]
//                 [--config <advisor.ini>] [--dram-limit 12GB]
//                 [--store-coef 0.125] [--bandwidth-aware]
//                 [--peak-pmem-bw GBS] [--csv <sites.csv>] [--stats]
//                 [--bye-close]
//
// Flag/usage errors exit 2; runtime failures exit 1. A client query
// against a fully ingested trace is byte-identical to
// `ecohmem-advisor --trace ... --out ...` on the same config.

#include <csignal>

#include <cstdio>
#include <fstream>

#include "cli_common.hpp"
#include "ecohmem/serve/client.hpp"
#include "ecohmem/serve/server.hpp"
#include "ecohmem/trace/trace_reader.hpp"

using namespace ecohmem;

namespace {

serve::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();  // async-signal-safe
}

int run_server(const cli::Args& args) {
  const auto max_sessions = args.get_int_in_range("max-sessions", 256, 1, 1 << 20);
  if (!max_sessions) return cli::fail_usage(max_sessions.error());
  const auto queue_blocks = args.get_int_in_range("queue-blocks", 64, 1, 1 << 20);
  if (!queue_blocks) return cli::fail_usage(queue_blocks.error());
  const auto max_frame = args.get_int_in_range("max-frame-bytes",
                                               serve::kDefaultMaxFrameBytes, 64, 1 << 30);
  if (!max_frame) return cli::fail_usage(max_frame.error());

  serve::ServerOptions options;
  options.socket_path = args.get("listen");
  options.max_sessions = static_cast<std::size_t>(*max_sessions);
  options.queue_blocks = static_cast<std::size_t>(*queue_blocks);
  options.max_frame_bytes = static_cast<std::uint32_t>(*max_frame);
  auto server = serve::Server::create(std::move(options));
  if (!server) return cli::fail(server.error());

  g_server = server->get();
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  std::printf("listening on %s\n", (*server)->socket_path().c_str());
  std::fflush(stdout);
  const auto status = (*server)->run();
  g_server = nullptr;
  if (!status.ok()) return cli::fail(status.error());
  std::printf("drained, socket unlinked\n");
  return 0;
}

int write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out || !(out << text) || !out.flush()) {
    return cli::fail("cannot write " + path);
  }
  return 0;
}

int run_client(const cli::Args& args) {
  const auto attach_id = args.get_int_in_range("attach", 0, 1, (1ll << 62));
  if (!attach_id) return cli::fail_usage(attach_id.error());
  const auto block_events = args.get_int_in_range("block-events", 4096, 1, 1 << 24);
  if (!block_events) return cli::fail_usage(block_events.error());
  if (!args.has("attach") && !args.has("ingest")) {
    return cli::fail_usage("client mode needs --ingest <trace> (new session) or --attach ID");
  }

  auto client = serve::Client::connect(args.get("connect"));
  if (!client) return cli::fail(client.error());

  if (args.has("attach")) {
    if (const auto s = client->hello_attach(static_cast<std::uint64_t>(*attach_id)); !s.ok()) {
      return cli::fail(s.error());
    }
  }

  if (args.has("ingest")) {
    auto reader = trace::TraceReader::open(args.get("ingest"));
    if (!reader) return cli::fail_load(args.get("ingest"), reader.error());
    const auto bundle = reader->read_all(1);
    if (!bundle) return cli::fail_load(args.get("ingest"), bundle.error());
    if (!args.has("attach")) {
      const auto s = client->hello_create(bundle->trace.stacks, bundle->trace.functions,
                                          bundle->modules, bundle->trace.sample_rate_hz);
      if (!s.ok()) return cli::fail(s.error());
    }
    const auto s = client->ingest_events(bundle->trace.events,
                                         static_cast<std::size_t>(*block_events));
    if (!s.ok()) return cli::fail(s.error());
  }

  std::printf("session %llu\n", static_cast<unsigned long long>(client->session_id()));

  if (args.has("query")) {
    advisor::AdvisorConfig config;
    if (args.has("config")) {
      const auto file = Config::load(args.get("config"));
      if (!file) return cli::fail(file.error());
      auto parsed = advisor::AdvisorConfig::from_config(*file);
      if (!parsed) return cli::fail(parsed.error());
      config = std::move(*parsed);
    } else {
      config = advisor::AdvisorConfig::dram_pmem(args.get_bytes("dram-limit", 12ull << 30),
                                                 args.get_double("store-coef", 0.0));
    }
    auto report = client->query(config, args.has("bandwidth-aware"),
                                args.get_double("peak-pmem-bw", 0.0));
    if (!report) return cli::fail(report.error());
    if (const int rc = write_text(args.get("query"), report->text); rc != 0) return rc;
    std::printf("report at epoch %llu (%llu events) -> %s\n",
                static_cast<unsigned long long>(report->epoch),
                static_cast<unsigned long long>(report->events_analyzed),
                args.get("query").c_str());
  }

  if (args.has("csv")) {
    auto snap = client->snapshot_csv();
    if (!snap) return cli::fail(snap.error());
    if (const int rc = write_text(args.get("csv"), snap->csv); rc != 0) return rc;
    std::printf("site csv at epoch %llu -> %s\n",
                static_cast<unsigned long long>(snap->epoch), args.get("csv").c_str());
  }

  if (args.has("stats")) {
    auto stats = client->stats();
    if (!stats) return cli::fail(stats.error());
    std::printf("session %llu: epoch %llu, blocks %llu accepted / %llu dropped, "
                "events %llu/%llu, queue %u, clients %u%s%s\n",
                static_cast<unsigned long long>(stats->session_id),
                static_cast<unsigned long long>(stats->epoch),
                static_cast<unsigned long long>(stats->blocks_accepted),
                static_cast<unsigned long long>(stats->blocks_dropped),
                static_cast<unsigned long long>(stats->events_seen),
                static_cast<unsigned long long>(stats->events_declared),
                stats->queue_depth, stats->attached_clients,
                stats->poisoned != 0 ? ", poisoned: " : "",
                stats->poisoned != 0 ? stats->error.c_str() : "");
  }

  if (const auto s = client->bye(args.has("bye-close")); !s.ok()) return cli::fail(s.error());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const cli::Args args(argc, argv, {"bandwidth-aware", "stats", "bye-close", "help"});
  if (args.has("help")) {
    std::printf(
        "usage: ecohmem-serve --listen <socket> [--max-sessions N] [--queue-blocks N]\n"
        "                     [--max-frame-bytes N]\n"
        "       ecohmem-serve --connect <socket> (--ingest <trace.trc> | --attach ID)\n"
        "                     [--block-events N] [--query <report.txt>]\n"
        "                     [--config <advisor.ini>] [--dram-limit 12GB]\n"
        "                     [--store-coef 0.125] [--bandwidth-aware]\n"
        "                     [--peak-pmem-bw GBS] [--csv <sites.csv>] [--stats]\n"
        "                     [--bye-close]\n"
        "  Server mode drains gracefully on SIGTERM/SIGINT. The wire protocol\n"
        "  is specified in docs/serving.md.\n");
    return 0;
  }
  if (args.has("listen") == args.has("connect")) {
    return cli::fail_usage("pass exactly one of --listen <socket> (server) or "
                           "--connect <socket> (client); see --help");
  }
  const std::string mode_flag = args.has("listen") ? "listen" : "connect";
  if (const auto s = cli::validate_socket_path(mode_flag, args.get(mode_flag)); !s.ok()) {
    return cli::fail_usage(s.error());
  }
  return args.has("listen") ? run_server(args) : run_client(args);
}
