// ecohmem-lint — cross-artifact invariant checker for the pipeline's
// offline artifacts (trace, analyzer site CSV, advisor placement report,
// advisor config, online placement policy, migration log).
//
// The artifacts are produced by loosely-coupled stages; nothing in the
// pipeline itself verifies they stayed mutually consistent. This tool
// runs the ecohmem::check rule set over any combination of them and
// reports drift before a production run can silently misplace objects.
//
// Usage:
//   ecohmem-lint [--trace <trace.trc>] [--sites <sites.csv>]
//                [--report <report.txt>] [--config <advisor.ini>]
//                [--online-policy <policy.ini>]
//                [--json] [--disable id1,id2] [--list-rules] [--quiet]
//
// Exit status: 0 = clean (warnings allowed), 1 = error-severity findings,
// 2 = usage error. Rule ids and severities: docs/linting.md.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "cli_common.hpp"
#include "ecohmem/check/lint.hpp"

using namespace ecohmem;

namespace {

int list_rules() {
  const auto registry = check::RuleRegistry::builtin();
  for (const auto& rule : registry.rules()) {
    std::printf("%-28s %s\n", std::string(rule->id()).c_str(),
                std::string(rule->description()).c_str());
  }
  return 0;
}

/// Strict pass over argv: the shared parser tolerates unknown flags and
/// maps a trailing value-flag to "true", but a linter should hold its own
/// command line to the same standard as the artifacts it checks.
bool validate_usage(int argc, char** argv) {
  static constexpr std::string_view kValueFlags[] = {
      "trace", "sites", "report", "config", "online-policy", "model", "migration-log",
      "disable", "min-coverage"};
  static constexpr std::string_view kBoolFlags[] = {"json", "list-rules", "quiet", "help"};
  const auto is_one_of = [](std::string_view name, const auto& set) {
    for (const auto& f : set) {
      if (f == name) return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      std::fprintf(stderr, "error: unexpected argument '%s' (flags only; see --help)\n",
                   argv[i]);
      return false;
    }
    const auto name = arg.substr(2);
    if (is_one_of(name, kBoolFlags)) continue;
    if (is_one_of(name, kValueFlags)) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --%s requires a value\n", std::string(name).c_str());
        return false;
      }
      ++i;
      continue;
    }
    std::fprintf(stderr, "error: unknown option '--%s' (see --help)\n",
                 std::string(name).c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!validate_usage(argc, argv)) return 2;
  const cli::Args args(argc, argv, {"json", "list-rules", "quiet", "help"});
  if (args.has("help")) {
    std::printf(
        "usage: ecohmem-lint [--trace <trace.trc>] [--sites <sites.csv>]\n"
        "                    [--report <report.txt>] [--config <advisor.ini>]\n"
        "                    [--online-policy <policy.ini>] [--model <model.ehm>]\n"
        "                    [--migration-log <log.csv>]\n"
        "                    [--json] [--disable id1,id2] [--list-rules] [--quiet]\n"
        "                    [--min-coverage F]\n"
        "--min-coverage F: minimum fraction of declared events a salvaged\n"
        "trace must recover before trace-salvage-coverage errors (default 0.9).\n"
        "--model: ranking model to verify a learned-policy report's\n"
        "'# model = <hash>' stamp against (advisor-policy-model rule).\n"
        "--migration-log: migration CSV from ecohmem-run --migration-log; the\n"
        "migration-* rules audit its conservation identities and sub-ranges.\n"
        "exit: 0 clean, 1 error findings, 2 usage error\n");
    return 0;
  }
  if (args.has("list-rules")) return list_rules();

  check::LintInputs inputs;
  inputs.trace_path = args.get("trace");
  inputs.sites_path = args.get("sites");
  inputs.report_path = args.get("report");
  inputs.config_path = args.get("config");
  inputs.online_path = args.get("online-policy");
  inputs.model_path = args.get("model");
  inputs.migration_log_path = args.get("migration-log");

  check::CheckOptions options;
  if (args.has("disable")) {
    options.disabled_rules = strings::split(args.get("disable"), ',');
    // Unknown ids are a usage error, not a silent no-op: a typo like
    // --disable report-capcity must not re-enable the rule in CI.
    const auto registry = check::RuleRegistry::builtin();
    bool ok = true;
    for (const auto& id : options.disabled_rules) {
      const bool pseudo = std::find(check::pseudo_rule_ids().begin(),
                                    check::pseudo_rule_ids().end(),
                                    id) != check::pseudo_rule_ids().end();
      if (pseudo || registry.find(id) != nullptr) continue;
      std::fprintf(stderr, "error: --disable: unknown rule id '%s'\n", id.c_str());
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr, "valid rule ids:");
      for (const auto& rule : registry.rules()) {
        std::fprintf(stderr, " %s", std::string(rule->id()).c_str());
      }
      for (const auto id : check::pseudo_rule_ids()) {
        std::fprintf(stderr, " %s", std::string(id).c_str());
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
  }
  if (args.has("min-coverage")) {
    const double v = args.get_double("min-coverage", -1.0);
    if (v < 0.0 || v > 1.0) {
      std::fprintf(stderr, "error: --min-coverage must be a fraction in [0, 1]\n");
      return 2;
    }
    options.min_salvage_coverage = v;
  }

  const auto result = check::lint_files(inputs, options);
  if (!result) {
    std::fprintf(stderr, "error: %s\n", result.error().c_str());
    return 2;
  }

  if (args.has("json")) {
    check::write_json(std::cout, result->diagnostics);
  } else {
    check::write_text(std::cout, result->diagnostics);
    if (!args.has("quiet")) {
      std::printf("%zu rules run, %zu skipped: %zu errors, %zu warnings\n",
                  result->rules_run.size(), result->rules_skipped.size(),
                  check::count_severity(result->diagnostics, check::Severity::kError),
                  check::count_severity(result->diagnostics, check::Severity::kWarning));
    }
  }
  return result->ok() ? 0 : 1;
}
