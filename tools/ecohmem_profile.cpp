// ecohmem-profile — the Extrae stage as a command-line tool.
//
// Runs an application model under the memory-mode baseline with the
// profiler attached and writes the trace file the Advisor stage consumes.
//
// Usage:
//   ecohmem-profile --app <name> --out <trace.trc>
//                   [--iterations N] [--rate HZ] [--seed S]
//                   [--pmem-dimms 6] [--no-stores]
//
// Example:
//   ecohmem-profile --app lulesh --out /tmp/lulesh.trc

#include <cstdio>
#include <limits>

#include "cli_common.hpp"
#include "ecohmem/apps/apps.hpp"
#include "ecohmem/core/ecohmem.hpp"
#include "ecohmem/memsim/dram_cache.hpp"
#include "ecohmem/profiler/profiler.hpp"
#include "ecohmem/trace/trace_file.hpp"

using namespace ecohmem;

int main(int argc, char** argv) {
  const cli::Args args(argc, argv, {"no-stores", "compact", "compress", "help"});
  if (args.has("help") || !args.has("app") || !args.has("out")) {
    std::printf(
        "usage: ecohmem-profile --app <name> --out <trace.trc>\n"
        "                       [--iterations N] [--rate HZ] [--seed S]\n"
        "                       [--pmem-dimms 6] [--no-stores]\n"
        "                       [--format v1|v2|v3] [--compact] [--block-events N]\n"
        "                       [--compress]\n"
        "  --format v3 writes the indexed block format (mmap random access,\n"
        "  parallel decode); --compact is the v2 shorthand kept for\n"
        "  compatibility. --block-events sets the v3 block granularity.\n"
        "  --compress bit-packs each v3 block's columns (v3 only).\n"
        "apps: ");
    for (const auto& a : apps::app_names()) std::printf("%s ", a.c_str());
    std::printf("\n");
    return args.has("help") ? 0 : 1;
  }

  const auto iterations = args.get_int_in_range("iterations", 0, 0, 1'000'000);
  if (!iterations) return cli::fail(iterations.error());
  const auto pmem_dimms = args.get_int_in_range("pmem-dimms", 6, 1, 64);
  if (!pmem_dimms) return cli::fail(pmem_dimms.error());
  const auto seed = args.get_int_in_range("seed", 0x5eed, 0, std::numeric_limits<long long>::max());
  if (!seed) return cli::fail(seed.error());

  apps::AppOptions app_opt;
  app_opt.iterations = static_cast<int>(*iterations);
  runtime::Workload workload;
  try {
    workload = apps::make_app(args.get("app"), app_opt);
  } catch (const std::exception& e) {
    return cli::fail(e.what());
  }

  const auto system = memsim::paper_system(static_cast<int>(*pmem_dimms));
  if (!system) return cli::fail(system.error());

  profiler::ProfilerOptions popt;
  popt.sample_rate_hz = args.get_double("rate", 100.0);
  popt.seed = static_cast<std::uint64_t>(*seed);
  popt.sample_stores = !args.has("no-stores");
  profiler::Profiler prof(popt);

  runtime::EngineOptions eopt;
  eopt.observer = &prof;
  memsim::DramCacheModel cache(system->tier(0).capacity());
  runtime::MemoryModeExec mode(&*system, 0, system->fallback_index(), cache);
  runtime::ExecutionEngine engine(&*system, eopt);
  const auto metrics = engine.run(workload, mode);
  if (!metrics) return cli::fail("profiling run failed: " + metrics.error());

  const auto block_events = args.get_int_in_range("block-events", 64 * 1024, 1, 1 << 30);
  if (!block_events) return cli::fail(block_events.error());

  const trace::Trace t = prof.take_trace();
  trace::TraceWriteOptions wopt;
  const std::string format = args.get("format", args.has("compact") ? "v2" : "v1");
  if (format == "v3") {
    wopt.indexed = true;
    wopt.block_events = static_cast<std::uint64_t>(*block_events);
    wopt.compress = args.has("compress");
  } else if (format == "v2") {
    wopt.compact = true;
  } else if (format != "v1") {
    return cli::fail("unknown --format '" + format + "' (v1|v2|v3)");
  }
  if (args.has("compress") && format != "v3") {
    return cli::fail_usage("--compress requires --format v3 (per-block compression lives in "
                           "the indexed footer; v1/v2 have no block index)");
  }
  if (const auto s = trace::save_trace(args.get("out"), t, *workload.modules, wopt); !s) {
    return cli::fail(s.error());
  }

  std::printf("profiled %s: %.1f s simulated, %zu events, %zu call stacks -> %s\n",
              workload.name.c_str(), static_cast<double>(metrics->total_ns) * 1e-9,
              t.events.size(), t.stacks.size(), args.get("out").c_str());
  std::printf("baseline (memory mode): %.3f s, DRAM cache hit %.1f%%\n",
              static_cast<double>(metrics->total_ns) * 1e-9,
              metrics->dram_cache_hit_ratio * 100.0);
  return 0;
}
