#pragma once

/// Minimal flag parsing shared by the ecohmem-* command-line tools.
/// Flags are `--name value` or `--name` (boolean); positionals are kept
/// in order.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/posix.hpp"
#include "ecohmem/common/strings.hpp"

namespace ecohmem::cli {

class Args {
 public:
  Args(int argc, char** argv, std::vector<std::string> bool_flags = {}) {
    const auto is_bool = [&bool_flags](const std::string& name) {
      for (const auto& b : bool_flags) {
        if (b == name) return true;
      }
      return false;
    };
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const std::string name = arg.substr(2);
        // A value flag never swallows the next `--flag` token: in
        // `--out --stats` the user forgot the value, and silently
        // using "--stats" as it would both corrupt the value and drop
        // the flag. Single-dash values (negative numbers) still work.
        const bool next_is_flag =
            i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) == 0;
        if (is_bool(name) || i + 1 >= argc || next_is_flag) {
          flags_[name] = "true";
        } else {
          flags_[name] = argv[++i];
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& name, std::string def = {}) const {
    const auto it = flags_.find(name);
    return it != flags_.end() ? it->second : def;
  }

  [[nodiscard]] bool has(const std::string& name) const { return flags_.contains(name); }

  [[nodiscard]] double get_double(const std::string& name, double def) const {
    const auto it = flags_.find(name);
    if (it == flags_.end()) return def;
    return strings::parse_double(it->second).value_or(def);
  }

  [[nodiscard]] Bytes get_bytes(const std::string& name, Bytes def) const {
    const auto it = flags_.find(name);
    if (it == flags_.end()) return def;
    return strings::parse_bytes(it->second).value_or(def);
  }

  /// Strictly-validated integer flag: the whole value must parse as a
  /// base-10 integer and land in [lo, hi], otherwise an error naming the
  /// flag is returned (no silent fallback to the default — a mistyped
  /// `--threads x` or out-of-range `--threads 0` should stop the tool,
  /// not be ignored). Absent flags return `def` unvalidated.
  [[nodiscard]] Expected<long long> get_int_in_range(const std::string& name, long long def,
                                                     long long lo, long long hi) const {
    const auto it = flags_.find(name);
    if (it == flags_.end()) return def;
    const std::string& text = it->second;
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE) {
      return unexpected("--" + name + " expects an integer, got '" + text + "'");
    }
    if (value < lo || value > hi) {
      return unexpected("--" + name + " must be in [" + std::to_string(lo) + ", " +
                        std::to_string(hi) + "], got " + text);
    }
    return value;
  }

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

inline int fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Usage-error diagnostic: same `error:` shape as `fail`, but exit
/// code 2 — bad flags are distinguishable from runtime failures
/// (docs/cli.md §conventions).
inline int fail_usage(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 2;
}

/// Validates a unix-domain socket path flag value: present, non-empty
/// and within the platform `sockaddr_un` limit. `flag` names the flag
/// in the diagnostic (without dashes).
[[nodiscard]] inline Status validate_socket_path(const std::string& flag,
                                                 const std::string& path) {
  if (path.empty() || path == "true") {
    return unexpected("--" + flag + " expects a socket path");
  }
  if (path.size() > common::posix::max_socket_path()) {
    return unexpected("--" + flag + " path exceeds " +
                      std::to_string(common::posix::max_socket_path()) + " bytes: " + path);
  }
  return {};
}

/// Load-failure diagnostic: every tool reports a file it could not
/// load the same way — nonzero exit, the path, and the loader's message
/// (which carries the byte offset for codec-level trace errors). Tools
/// must route trace/report/CSV load errors through this so no path or
/// offset is ever dropped.
inline int fail_load(const std::string& path, const std::string& message) {
  // Loaders sometimes embed the path already; avoid printing it twice.
  if (message.find(path) != std::string::npos) return fail(message);
  return fail(path + ": " + message);
}

}  // namespace ecohmem::cli
