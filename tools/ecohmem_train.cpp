// ecohmem-train — offline trainer for the learned placement policy
// (docs/learned.md).
//
// Profiles each corpus app, enumerates placement perturbations, scores
// them with the memory simulator to derive pairwise site preferences,
// trains the linear ranker by deterministic SGD and writes the versioned
// model file that `ecohmem-advisor --policy learned --model` consumes.
//
// Usage:
//   ecohmem-train --apps minife,lulesh,... --out model.ehm
//                 [--config <advisor.ini>] [--dram-limit 12GB]
//                 [--store-coef 0.125] [--epochs 400] [--learning-rate 0.05]
//                 [--l2 1e-4] [--seed N] [--max-solo 16] [--max-swaps 12]
//                 [--iterations N] [--scale F] [--pmem-dimms 6]
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error.

#include <cstdio>

#include "cli_common.hpp"
#include "ecohmem/advisor/advisor_config.hpp"
#include "ecohmem/apps/apps.hpp"
#include "ecohmem/common/config.hpp"
#include "ecohmem/learn/corpus.hpp"
#include "ecohmem/learn/model.hpp"

using namespace ecohmem;

int main(int argc, char** argv) {
  const cli::Args args(argc, argv, {"help"});
  if (args.has("help") || !args.has("apps") || !args.has("out")) {
    std::printf(
        "usage: ecohmem-train --apps <a,b,...> --out <model.ehm>\n"
        "                     [--config <advisor.ini>] [--dram-limit 12GB]\n"
        "                     [--store-coef 0.125] [--epochs 400]\n"
        "                     [--learning-rate 0.05] [--l2 1e-4] [--seed N]\n"
        "                     [--max-solo 16] [--max-swaps 12]\n"
        "                     [--iterations N] [--scale F] [--pmem-dimms 6]\n"
        "  Trains the pairwise ranking model on memsim-labelled placement\n"
        "  perturbations of the named apps (docs/learned.md). With --config\n"
        "  the DRAM budget and store coefficient come from the advisor\n"
        "  config's fastest tier.\n");
    return args.has("help") ? 0 : 2;
  }

  const std::vector<std::string> app_list = strings::split(args.get("apps"), ',');
  const std::vector<std::string> known = apps::app_names();
  if (app_list.empty()) return cli::fail_usage("--apps expects a comma-separated list");
  for (const auto& app : app_list) {
    bool found = false;
    for (const auto& k : known) found = found || k == app;
    if (!found) return cli::fail_usage("--apps names unknown app '" + app + "'");
  }

  const auto epochs = args.get_int_in_range("epochs", 400, 1, 1000000);
  if (!epochs) return cli::fail_usage(epochs.error());
  const auto seed = args.get_int_in_range("seed", 0x5eed, 0, 1ll << 62);
  if (!seed) return cli::fail_usage(seed.error());
  const auto max_solo = args.get_int_in_range("max-solo", 16, 1, 4096);
  if (!max_solo) return cli::fail_usage(max_solo.error());
  const auto max_swaps = args.get_int_in_range("max-swaps", 12, 0, 4096);
  if (!max_swaps) return cli::fail_usage(max_swaps.error());
  const auto iterations = args.get_int_in_range("iterations", 0, 0, 1000000);
  if (!iterations) return cli::fail_usage(iterations.error());
  const auto pmem_dimms = args.get_int_in_range("pmem-dimms", 6, 1, 64);
  if (!pmem_dimms) return cli::fail_usage(pmem_dimms.error());

  learn::CorpusOptions copt;
  copt.dram_limit = args.get_bytes("dram-limit", 12ull << 30);
  copt.store_coef = args.get_double("store-coef", 0.125);
  copt.max_single_sites = static_cast<std::size_t>(*max_solo);
  copt.max_swaps = static_cast<std::size_t>(*max_swaps);
  copt.app_iterations = static_cast<int>(*iterations);
  copt.app_scale = args.get_double("scale", 1.0);
  if (!(copt.app_scale > 0.0)) return cli::fail_usage("--scale must be positive");

  if (args.has("config")) {
    const auto file = Config::load(args.get("config"));
    if (!file) return cli::fail_load(args.get("config"), file.error());
    auto parsed = advisor::AdvisorConfig::from_config(*file);
    if (!parsed) return cli::fail_load(args.get("config"), parsed.error());
    copt.dram_limit = parsed->tiers.front().limit;
    copt.store_coef = parsed->tiers.front().store_coef;
  }

  learn::TrainOptions topt;
  topt.epochs = static_cast<int>(*epochs);
  topt.learning_rate = args.get_double("learning-rate", 0.05);
  topt.l2 = args.get_double("l2", 1e-4);
  topt.seed = static_cast<std::uint64_t>(*seed);

  const auto system = memsim::paper_system(static_cast<int>(*pmem_dimms));
  if (!system) return cli::fail(system.error());

  std::printf("building corpus from %zu app(s)...\n", app_list.size());
  const auto corpus = learn::build_corpus(app_list, *system, copt);
  if (!corpus) return cli::fail(corpus.error());
  for (const auto& app : corpus->per_app) {
    std::printf("  %-14s %4zu sites, %4zu pairs, %4zu memsim runs\n", app.app.c_str(),
                app.sites, app.pairs, app.sim_runs);
  }

  learn::Model model;
  model.corpus = corpus->apps;
  const auto stats = learn::train_pairwise(model, corpus->pairs, topt);
  if (!stats) return cli::fail(stats.error());

  if (const auto s = learn::save_model(model, args.get("out")); !s) {
    return cli::fail(s.error());
  }

  std::printf("trained on %zu pairs (%zu memsim runs): %d epochs, loss %.4f, "
              "pair accuracy %.1f%%\n",
              stats->pairs, corpus->sim_runs, stats->epochs, stats->final_loss,
              stats->pair_accuracy * 100.0);
  const auto& names = learn::feature_names();
  for (std::size_t i = 0; i < learn::kFeatureCount; ++i) {
    std::printf("  w[%-24s] = %+.4f\n", std::string(names[i]).c_str(), model.weights[i]);
  }
  std::printf("model %s (schema %s) written to %s\n",
              learn::model_content_hash(model).c_str(),
              strings::to_hex(model.schema_hash).c_str(), args.get("out").c_str());
  return 0;
}
